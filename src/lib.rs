//! # tcni — A Tightly-Coupled Processor-Network Interface, reproduced
//!
//! A from-scratch Rust reproduction of Henry & Joerg, *A Tightly-Coupled
//! Processor-Network Interface* (ASPLOS 1992): the network-interface
//! architecture itself plus every substrate the paper's evaluation rests on,
//! and the code that regenerates its Table 1 and Figure 12.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] (`tcni-core`) | **the paper's contribution**: interface registers, message queues, SEND/NEXT, reply/forward, `MsgIp` dispatch, boundary conditions, protection |
//! | [`isa`] (`tcni-isa`) | 88100-flavoured RISC ISA, assembler, NI instruction extensions |
//! | [`cpu`] (`tcni-cpu`) | in-order cycle simulator with load-use interlocks and delay slots |
//! | [`net`] (`tcni-net`) | ideal fabric + 2-D mesh with finite buffers and backpressure |
//! | [`sim`] (`tcni-sim`) | multi-node machines under the six §4 models |
//! | [`istruct`] (`tcni-istruct`) | I-structure memory (presence bits, deferred readers) |
//! | [`tam`] (`tcni-tam`) | Threaded Abstract Machine runtime + matmul/gamteb/fib |
//! | [`eval`] (`tcni-eval`) | measured Table 1, Figure 12 expansion, sweeps and ablations |
//! | [`workload`] (`tcni-workload`) | synthetic traffic patterns, open/closed-loop injectors, offered-load/latency sweeps |
//!
//! ## Quickstart
//!
//! ```
//! use tcni::sim::{MachineBuilder, Model};
//!
//! // A 4-node machine with the optimized register-mapped interface.
//! let machine = MachineBuilder::new(4).model(Model::ALL_SIX[0]).build();
//! assert_eq!(machine.node_count(), 4);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries that regenerate the paper's
//! tables and figures.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tcni_core as core;
pub use tcni_cpu as cpu;
pub use tcni_eval as eval;
pub use tcni_isa as isa;
pub use tcni_istruct as istruct;
pub use tcni_net as net;
pub use tcni_sim as sim;
pub use tcni_tam as tam;
pub use tcni_workload as workload;
