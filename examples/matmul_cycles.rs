//! A miniature Figure 12: run a blocked matrix multiply on the TAM runtime,
//! validate the numeric result, and expand the dynamic counts into 88100
//! cycles under all six interface models — with both our measured Table 1
//! and the paper's published one.
//!
//! ```text
//! cargo run --release --example matmul_cycles
//! ```

use tcni::eval::figure12::Figure12;
use tcni::eval::{paper, table1::Table1};
use tcni::tam::programs::matmul;

fn main() {
    let n = 24;
    let out = matmul::run(n, 16).expect("matmul runs");
    assert_eq!(
        out.c,
        matmul::reference(n),
        "product must match the reference"
    );
    println!(
        "{n}×{n} blocked matmul: {} messages, {:.2} floating-point ops per message",
        out.counts.msgs.dispatches(),
        out.counts.flops_per_message()
    );
    println!(
        "(the paper quotes ≈3 FP ops per message for its matrix multiply, and a\n\
         message-instruction frequency under 10% — ours is {:.1}%)\n",
        100.0 * out.counts.message_op_fraction()
    );

    let measured = Table1::measure();
    println!(
        "{}",
        Figure12::from_counts("matmul (measured Table 1)", out.counts, &measured.models)
    );
    println!(
        "{}",
        Figure12::from_counts(
            "matmul (published Table 1)",
            out.counts,
            &paper::published()
        )
    );
}
