//! Remote memory with I-structure semantics: a producer/consumer TAM
//! program where consumers race the producer, so early `PRead`s defer and
//! the producer's `PWrite`s forward values to the waiting readers — the
//! `15 + 6n` deferred path of Table 1, observed live.
//!
//! ```text
//! cargo run --release --example remote_memory
//! ```

use tcni::tam::{FloatOp, IntOp, TamMachine, TamOp, TamProgram};

const N: u32 = 64; // array elements
const CONSUMERS: u32 = 8; // each sums the whole array

fn build() -> TamProgram {
    let mut p = TamProgram::new();

    // producer: arr[i] = float(i), slowly (extra arithmetic per element).
    // slots: 0 SELF, 1 arr, 2 i, 3 val, 4 cmp, 5 scratch
    p.block("producer", 6, |b| {
        let t_loop = b.declare_thread();
        let t_end = b.declare_thread();
        let t_entry = b.thread(vec![
            TamOp::Imm { dst: 2, value: 0 },
            TamOp::Fork { thread: t_loop },
        ]);
        b.define_thread(
            t_loop,
            vec![
                TamOp::Float {
                    op: FloatOp::FromInt,
                    dst: 3,
                    a: 2,
                    b: 2,
                },
                // Busywork: makes the producer slow enough to lose the race.
                TamOp::Int {
                    op: IntOp::Add,
                    dst: 5,
                    a: 5,
                    b: 2,
                },
                TamOp::Int {
                    op: IntOp::Add,
                    dst: 5,
                    a: 5,
                    b: 2,
                },
                TamOp::IStore {
                    arr: 1,
                    idx: 2,
                    val: 3,
                },
                TamOp::IntI {
                    op: IntOp::Add,
                    dst: 2,
                    a: 2,
                    imm: 1,
                },
                TamOp::IntI {
                    op: IntOp::Lt,
                    dst: 4,
                    a: 2,
                    imm: N,
                },
                TamOp::Switch {
                    cond: 4,
                    if_true: t_loop,
                    if_false: t_end,
                },
            ],
        );
        b.define_thread(t_end, vec![TamOp::Mov { dst: 4, src: 4 }]);
        b.inlet(vec![1], t_entry);
    });

    // consumer: sum = Σ arr[i], element at a time (split-phase reads).
    // slots: 0 SELF, 1 arr, 2 parent, 3 i, 4 sum, 5 v, 6 cmp
    p.block("consumer", 7, |b| {
        let t_fetch = b.declare_thread();
        let t_accum = b.declare_thread();
        let t_done = b.declare_thread();
        let t_entry = b.declare_thread();
        let v_in = {
            let inlet_args = b.inlet(vec![1, 2], t_entry);
            assert_eq!(inlet_args.0, 0);
            b.inlet(vec![5], t_accum)
        };
        b.define_thread(
            t_entry,
            vec![
                TamOp::Imm { dst: 3, value: 0 },
                TamOp::Fork { thread: t_fetch },
            ],
        );
        b.define_thread(
            t_fetch,
            vec![TamOp::IFetch {
                arr: 1,
                idx: 3,
                inlet: v_in,
            }],
        );
        b.define_thread(
            t_accum,
            vec![
                TamOp::Float {
                    op: FloatOp::Add,
                    dst: 4,
                    a: 4,
                    b: 5,
                },
                TamOp::IntI {
                    op: IntOp::Add,
                    dst: 3,
                    a: 3,
                    imm: 1,
                },
                TamOp::IntI {
                    op: IntOp::Lt,
                    dst: 6,
                    a: 3,
                    imm: N,
                },
                TamOp::Switch {
                    cond: 6,
                    if_true: t_fetch,
                    if_false: t_done,
                },
            ],
        );
        b.define_thread(
            t_done,
            vec![TamOp::SendArgs {
                fp: 2,
                inlet: tcni::tam::InletId(0),
                args: vec![4],
            }],
        );
    });

    // main: allocate, spawn producer + consumers, await all sums.
    // slots: 0 SELF, 1 arr, 2 child, 3 len, 4 remaining, 5 sum-in, 6 done,
    //        7 b, 8 cmp
    p.block("main", 9, |b| {
        b.init(4, CONSUMERS);
        // Thread 0 is the entry: spawn_main schedules it.
        let t_entry = b.declare_thread();
        let t_got = b.declare_thread();
        let t_fin = b.declare_thread();
        let t_spawn = b.declare_thread();
        let t_end = b.declare_thread();
        let got = b.inlet(vec![5], t_got);
        assert_eq!(got.0, 0);
        b.define_thread(
            t_entry,
            vec![
                TamOp::Imm { dst: 3, value: N },
                TamOp::HAlloc { dst: 1, len: 3 },
                TamOp::Falloc {
                    block: tcni::tam::CodeBlockId(0),
                    dst_fp: 2,
                },
                TamOp::SendArgs {
                    fp: 2,
                    inlet: tcni::tam::InletId(0),
                    args: vec![1],
                },
                TamOp::Imm { dst: 7, value: 0 },
                TamOp::Fork { thread: t_spawn },
            ],
        );
        b.define_thread(
            t_spawn,
            vec![
                TamOp::Falloc {
                    block: tcni::tam::CodeBlockId(1),
                    dst_fp: 2,
                },
                TamOp::SendArgs {
                    fp: 2,
                    inlet: tcni::tam::InletId(0),
                    args: vec![1, 0],
                },
                TamOp::IntI {
                    op: IntOp::Add,
                    dst: 7,
                    a: 7,
                    imm: 1,
                },
                TamOp::IntI {
                    op: IntOp::Lt,
                    dst: 8,
                    a: 7,
                    imm: CONSUMERS,
                },
                TamOp::Switch {
                    cond: 8,
                    if_true: t_spawn,
                    if_false: t_end,
                },
            ],
        );
        b.define_thread(t_end, vec![TamOp::Mov { dst: 8, src: 8 }]);
        b.define_thread(
            t_got,
            vec![TamOp::Join {
                counter: 4,
                thread: t_fin,
            }],
        );
        b.define_thread(t_fin, vec![TamOp::Imm { dst: 6, value: 1 }]);
    });

    p
}

fn main() {
    let program = build();
    let main_id = program.lookup("main").unwrap();
    let mut m = TamMachine::new(program, 16, 99);
    let root = m.spawn_main(main_id);
    m.run(10_000_000).expect("runs to completion");
    assert_eq!(m.frame_slot(root, 6), 1, "all consumers reported");

    let sum = f32::from_bits(m.frame_slot(root, 5));
    let expect: f32 = (0..N).map(|i| i as f32).sum();
    println!("each consumer's sum of arr[0..{N}]: {sum} (expected {expect})");
    assert_eq!(sum, expect);

    let msgs = &m.counts().msgs;
    println!("\nI-structure traffic while {CONSUMERS} consumers raced one producer:");
    println!(
        "  PRead full      : {:>6}  (value already present)",
        msgs.pread_full
    );
    println!(
        "  PRead empty     : {:>6}  (first reader deferred)",
        msgs.pread_empty
    );
    println!(
        "  PRead deferred  : {:>6}  (queued behind other readers)",
        msgs.pread_deferred
    );
    println!(
        "  PWrite deferred : {:>6}  satisfying {} waiting readers (the 15+6n path)",
        msgs.pwrite_deferred_events, msgs.pwrite_deferred_readers
    );
    assert!(
        msgs.pread_empty + msgs.pread_deferred > 0,
        "the race must defer someone"
    );
    assert_eq!(
        msgs.pread_full + msgs.pread_empty + msgs.pread_deferred,
        u64::from(N * CONSUMERS)
    );
}
