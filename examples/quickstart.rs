//! Quickstart: the paper's flagship scenario, end to end.
//!
//! Two nodes. Node 0 sends a remote-read request for a word in node 1's
//! memory; node 1's handler loads the word and replies; node 0 stores the
//! value and halts. We run the same protocol under all six network-interface
//! models of §4 and print how long each takes — including the headline
//! §3.3 configuration where node 1 serves the request in **two RISC
//! instructions** (`jmp MsgIp` + `ld o2,[i0],SEND-reply,NEXT`).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcni::core::mapping::{cmd_addr, gpr_alias, reg_addr, NI_WINDOW_BASE};
use tcni::core::{FeatureLevel, InterfaceReg, MsgType, NiCmd, NodeId};
use tcni::isa::{AluOp, Assembler, Cond, Program, Reg};
use tcni::sim::{MachineBuilder, Model, NiMapping, RunOutcome};
use tcni_core::WireFormat;

const READ_TYPE: u8 = 4;
const TABLE: u32 = 0x4000;
const REMOTE_ADDR: u32 = 0x100;
const RESULT_ADDR: u32 = 0x80;
const SECRET: u32 = 0x5EC2E7;

fn ty(n: u8) -> MsgType {
    MsgType::new(n).unwrap()
}

fn off(addr: u32) -> i16 {
    (addr - NI_WINDOW_BASE) as i16
}

fn slot(t: u8) -> u32 {
    TABLE + u32::from(t) * 16
}

/// Emits the dispatch loop for the model; falls into the handler table.
fn emit_dispatch(a: &mut Assembler, model: Model) {
    match (model.level, model.mapping) {
        (FeatureLevel::Optimized, NiMapping::RegisterFile) => {
            a.label("dispatch");
            a.jmp(gpr_alias(InterfaceReg::MsgIp));
            a.nop();
            a.br("dispatch");
            a.nop();
        }
        (FeatureLevel::Optimized, _) => {
            a.label("dispatch");
            a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
            a.jmp(Reg::R3);
            a.nop();
            a.br("dispatch");
            a.nop();
        }
        (FeatureLevel::Basic, NiMapping::RegisterFile) => {
            a.label("dispatch");
            a.maski(Reg::R3, gpr_alias(InterfaceReg::Status), 1);
            a.bcnd(Cond::Eq0, Reg::R3, "dispatch");
            a.nop();
            a.shli(Reg::R5, gpr_alias(InterfaceReg::input(4)), 4);
            a.alu(AluOp::Or, Reg::R6, Reg::R10, Reg::R5);
            a.jmp(Reg::R6);
            a.nop();
        }
        (FeatureLevel::Basic, _) => {
            a.label("dispatch");
            a.ld(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::Status)));
            a.ld(Reg::R5, Reg::R9, off(reg_addr(InterfaceReg::I4)));
            a.maski(Reg::R3, Reg::R2, 1);
            a.bcnd(Cond::Eq0, Reg::R3, "dispatch");
            a.nop();
            a.shli(Reg::R6, Reg::R5, 4);
            a.alu(AluOp::Or, Reg::R7, Reg::R10, Reg::R6);
            a.jmp(Reg::R7);
            a.nop();
        }
    }
}

/// Shared setup: r9 = NI base, r10 = table base, IpBase (optimized).
fn emit_setup(a: &mut Assembler, model: Model) {
    if model.mapping.is_memory_mapped() {
        a.li(Reg::R9, NI_WINDOW_BASE);
    }
    a.li(Reg::R10, TABLE);
    if model.level == FeatureLevel::Optimized {
        match model.mapping {
            NiMapping::RegisterFile => {
                a.mov(gpr_alias(InterfaceReg::IpBase), Reg::R10);
            }
            _ => {
                a.st(Reg::R10, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
            }
        }
    }
}

/// The server: serves exactly one Read request, then halts.
fn server(model: Model) -> Program {
    let mut a = Assembler::new();
    emit_setup(&mut a, model);
    emit_dispatch(&mut a, model);
    a.org(slot(0)); // idle (optimized) — basic never dispatches id 0 here
    a.br("dispatch");
    a.nop();
    a.org(slot(READ_TYPE));
    match (model.level, model.mapping) {
        (FeatureLevel::Optimized, NiMapping::RegisterFile) => {
            // THE two-instruction remote read (one here + the dispatch jmp).
            a.ld_r_ni(
                gpr_alias(InterfaceReg::O2),
                gpr_alias(InterfaceReg::input(0)),
                Reg::R0,
                NiCmd::reply(ty(0)).with_next(),
            );
            a.halt();
        }
        (FeatureLevel::Basic, NiMapping::RegisterFile) => {
            a.mov(
                gpr_alias(InterfaceReg::O0),
                gpr_alias(InterfaceReg::input(1)),
            );
            a.mov(
                gpr_alias(InterfaceReg::O1),
                gpr_alias(InterfaceReg::input(2)),
            );
            a.mov(gpr_alias(InterfaceReg::O4), Reg::R0); // reply id = 0
            a.ld_r_ni(
                gpr_alias(InterfaceReg::O2),
                gpr_alias(InterfaceReg::input(0)),
                Reg::R0,
                NiCmd::send(ty(0)).with_next(),
            );
            a.halt();
        }
        (FeatureLevel::Optimized, _) => {
            a.ld(Reg::R4, Reg::R9, off(reg_addr(InterfaceReg::I0)));
            a.ld(Reg::R5, Reg::R4, 0);
            a.st(
                Reg::R5,
                Reg::R9,
                off(cmd_addr(InterfaceReg::O2, NiCmd::reply(ty(0)).with_next())),
            );
            a.halt();
        }
        (FeatureLevel::Basic, _) => {
            a.ld(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::I1)));
            a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::I2)));
            a.ld(Reg::R4, Reg::R9, off(reg_addr(InterfaceReg::I0)));
            a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::O0)));
            a.st(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::O1)));
            a.ld(Reg::R5, Reg::R4, 0);
            a.st(Reg::R5, Reg::R9, off(reg_addr(InterfaceReg::O2)));
            a.st(
                Reg::R0,
                Reg::R9,
                off(cmd_addr(InterfaceReg::O4, NiCmd::send(ty(0)).with_next())),
            );
            a.halt();
        }
    }
    a.assemble().expect("server assembles")
}

/// The requester: sends the request, dispatch-loops, stores the reply value,
/// halts. Two-pass assembly resolves the reply-handler address.
fn requester(model: Model, server_node: NodeId) -> Program {
    let build = |reply_ip: u32| -> Program {
        let mut a = Assembler::new();
        emit_setup(&mut a, model);
        // Compose the request: [dest|addr, FP (this node 0 ⇒ plain), IP].
        a.li(
            Reg::R2,
            server_node.into_word_bits(WireFormat::Compact) | REMOTE_ADDR,
        );
        a.li(Reg::R3, 0x200); // reply FP
        a.li(Reg::R5, reply_ip);
        match model.mapping {
            NiMapping::RegisterFile => {
                if model.level == FeatureLevel::Basic {
                    a.ori(gpr_alias(InterfaceReg::O4), Reg::R0, u16::from(READ_TYPE));
                }
                a.mov(gpr_alias(InterfaceReg::O0), Reg::R2);
                a.mov(gpr_alias(InterfaceReg::O1), Reg::R3);
                a.mov_ni(
                    gpr_alias(InterfaceReg::O2),
                    Reg::R5,
                    NiCmd::send(ty(READ_TYPE)),
                );
            }
            _ => {
                a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::O0)));
                a.st(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::O1)));
                if model.level == FeatureLevel::Basic {
                    a.st(Reg::R5, Reg::R9, off(reg_addr(InterfaceReg::O2)));
                    a.ori(Reg::R6, Reg::R0, u16::from(READ_TYPE));
                    a.st(
                        Reg::R6,
                        Reg::R9,
                        off(cmd_addr(InterfaceReg::O4, NiCmd::send(ty(READ_TYPE)))),
                    );
                } else {
                    a.st(
                        Reg::R5,
                        Reg::R9,
                        off(cmd_addr(InterfaceReg::O2, NiCmd::send(ty(READ_TYPE)))),
                    );
                }
            }
        }
        emit_dispatch(&mut a, model);
        a.org(slot(0)); // optimized idle handler / basic id-0 thread invoker
        if model.level == FeatureLevel::Basic {
            // Basic: id 0 = Send message ⇒ invoke the thread at word 1.
            match model.mapping {
                NiMapping::RegisterFile => {
                    a.jmp(gpr_alias(InterfaceReg::input(1)));
                    a.nop();
                }
                _ => {
                    a.ld(Reg::R6, Reg::R9, off(reg_addr(InterfaceReg::I1)));
                    a.jmp(Reg::R6);
                    a.nop();
                }
            }
        } else {
            a.br("dispatch");
            a.nop();
        }
        a.org(slot(0) + 0x400);
        a.label("reply_handler");
        match model.mapping {
            NiMapping::RegisterFile => {
                a.st(
                    gpr_alias(InterfaceReg::input(2)),
                    Reg::R0,
                    RESULT_ADDR as i16,
                );
                a.mov_ni(Reg::R2, Reg::R2, NiCmd::next());
            }
            _ => {
                a.ld(
                    Reg::R7,
                    Reg::R9,
                    off(cmd_addr(InterfaceReg::I2, NiCmd::next())),
                );
                a.st(Reg::R7, Reg::R0, RESULT_ADDR as i16);
            }
        }
        a.halt();
        a.assemble().expect("requester assembles")
    };
    let pass1 = build(0);
    let ip = pass1.resolve("reply_handler").expect("label defined");
    let pass2 = build(ip);
    assert_eq!(pass2.resolve("reply_handler"), Some(ip), "stable layout");
    pass2
}

fn main() {
    println!("Remote read across two nodes, all six interface models (§4):\n");
    println!(
        "{:<30} {:>14} {:>22}",
        "model", "total cycles", "server instructions"
    );
    let mut cycles_by_model = Vec::new();
    let mut first_trace = None;
    for model in Model::ALL_SIX {
        let mut machine = MachineBuilder::new(2)
            .model(model)
            .program(0, requester(model, NodeId::new(1)))
            .program(1, server(model))
            .network_ideal(1)
            .build();
        machine.enable_trace(16);
        machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
        let outcome = machine.run(10_000);
        assert_eq!(outcome, RunOutcome::Quiescent, "{model}: {outcome:?}");
        assert_eq!(
            machine.node(0).mem().peek(RESULT_ADDR),
            SECRET,
            "{model}: wrong value"
        );
        println!(
            "{:<30} {:>14} {:>22}",
            model.to_string(),
            machine.cycle(),
            machine.node(1).cpu().stats().instructions,
        );
        cycles_by_model.push(machine.cycle());
        if first_trace.is_none() {
            first_trace = machine.trace().map(|t| t.to_string());
        }
    }
    println!("\nmessage trace of the first (optimized register-mapped) run:");
    print!("{}", first_trace.unwrap_or_default());
    println!();
    println!(
        "fastest optimized ({} cycles) vs slowest basic ({} cycles): ×{:.2}",
        cycles_by_model[0],
        cycles_by_model[5],
        cycles_by_model[5] as f64 / cycles_by_model[0] as f64
    );
    println!("\nOn the optimized register-mapped model the server's Read service is the");
    println!("paper's two RISC instructions: `jmp MsgIp` + `ld o2,[i0], SEND-reply, NEXT`.");
}
