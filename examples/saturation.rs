//! Boundary conditions under network saturation (§2.2.4, Figure 7).
//!
//! Node 0 floods node 1 over a small 2×1 mesh. Node 1's CONTROL register
//! sets an input-queue threshold; while the queue is at or over it, the
//! dispatch hardware redirects every message to the *iafull variant* of its
//! handler — same type, different table slot — and the handler switches to
//! a drain-mode (fast) path. No software polling of queue lengths anywhere:
//! the check is folded into `MsgIp`, exactly as the paper proposes.
//!
//! ```text
//! cargo run --release --example saturation
//! ```

use tcni::core::mapping::gpr_alias;
use tcni::core::{Control, InterfaceReg, MsgType, NiCmd, NodeId};
use tcni::isa::{AluOp, Assembler, Cond, Program, Reg};
use tcni::net::FabricConfig;
use tcni::sim::{MachineBuilder, Model, RunOutcome};
use tcni_core::WireFormat;

const TABLE: u32 = 0x4000;
const FLOOD: u16 = 150;
const MSG_TYPE: u8 = 2;
const IN_THRESHOLD: u32 = 10;

fn producer() -> Program {
    let o0 = gpr_alias(InterfaceReg::O0);
    let mut a = Assembler::new();
    a.ori(Reg::R2, Reg::R0, FLOOD);
    a.li(Reg::R3, NodeId::new(1).into_word_bits(WireFormat::Compact));
    a.label("loop");
    a.mov_ni(o0, Reg::R3, NiCmd::send(MsgType::new(MSG_TYPE).unwrap()));
    a.alu(AluOp::Sub, Reg::R2, Reg::R2, 1u16);
    a.bcnd(Cond::Ne0, Reg::R2, "loop");
    a.nop();
    a.halt();
    a.assemble().expect("producer assembles")
}

/// Consumer registers: r6 = messages processed, r7 = of those, handled by
/// the iafull (drain-mode) variant; r8 = FLOOD (staged by the host).
fn consumer() -> Program {
    let msgip = gpr_alias(InterfaceReg::MsgIp);
    let mut a = Assembler::new();
    a.label("dispatch");
    a.jmp(msgip);
    a.nop();
    a.br("dispatch");
    a.nop();

    // Shared epilogue: count, stop after FLOOD messages.
    let epilogue = |a: &mut Assembler| {
        a.mov_ni(Reg::R5, Reg::R0, NiCmd::next());
        a.addi(Reg::R6, Reg::R6, 1);
        a.alu(AluOp::CmpEq, Reg::R5, Reg::R6, Reg::R8);
        a.bcnd(Cond::Ne0, Reg::R5, "done");
        a.nop();
        a.br("dispatch");
        a.nop();
    };

    a.org(TABLE); // type-0 slot: idle
    a.br("dispatch");
    a.nop();

    // Normal variant: leisurely (the flood outruns us; the queue climbs).
    a.org(TABLE + u32::from(MSG_TYPE) * 16);
    for _ in 0..10 {
        a.nop();
    }
    epilogue(&mut a);

    // iafull variant (bit 9 of the dispatch address): drain mode — no
    // per-message work, just consume, and count the pressure events in r7.
    a.org(TABLE + (1 << 9) + u32::from(MSG_TYPE) * 16);
    a.addi(Reg::R7, Reg::R7, 1);
    epilogue(&mut a);

    a.label("done");
    a.halt();
    a.assemble().expect("consumer assembles")
}

fn main() {
    let mut machine = MachineBuilder::new(2)
        .model(Model::ALL_SIX[0]) // optimized register-mapped
        .ni_queues(16, 16)
        .program(0, producer())
        .program(1, consumer())
        .network_fabric(FabricConfig::new(2, 1))
        .build();
    {
        let ni = machine.node_mut(1).ni_mut();
        ni.write_reg(InterfaceReg::IpBase, TABLE).expect("IpBase");
        ni.set_control(Control::new().with_input_threshold(IN_THRESHOLD));
    }
    machine
        .node_mut(1)
        .cpu_mut()
        .set_reg(Reg::R8, u32::from(FLOOD));

    let outcome = machine.run(100_000);
    assert_eq!(outcome, RunOutcome::Quiescent, "{outcome:?}");

    let processed = machine.node(1).cpu().reg(Reg::R6);
    let drained = machine.node(1).cpu().reg(Reg::R7);
    let producer_stalls = machine.node(0).cpu().stats().env_stalls;
    let net = machine.net_stats();

    println!("flooded {FLOOD} messages over a 2×1 mesh (input threshold {IN_THRESHOLD}):");
    println!("  messages processed           : {processed}");
    println!("  …via the iafull drain variant: {drained}");
    println!("  producer SEND-stall cycles   : {producer_stalls}");
    println!("  mesh hops blocked by backpressure: {}", net.blocked_hops);
    println!(
        "  consumer input-queue high-water  : {}",
        machine.node(1).ni().stats().input_hwm
    );
    println!();
    println!("The handler never polled STATUS: the queue check rode in MsgIp (Figure 7).");

    assert_eq!(processed, u32::from(FLOOD));
    assert!(drained > 0, "pressure variant must fire");
    assert!(drained < processed, "normal variant must fire too");
    assert!(producer_stalls > 0, "backpressure must reach the sender");
}
