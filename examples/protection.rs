//! Multi-user protection (§2.1.3): process identification numbers and
//! privileged messages, exercised directly against the interface model.
//!
//! The paper's claim: protection "could be easily extended to handle a
//! multi-user environment" and "the necessary extensions would not affect
//! the optimizations which we will propose." This example shows both — a
//! mismatching PIN diverts to privileged state without ever touching the
//! user-visible input registers, while `MsgIp` dispatch keeps working for
//! the active process.
//!
//! ```text
//! cargo run --example protection
//! ```

use tcni::core::{
    Control, InterfaceReg, Message, MsgType, NetworkInterface, NiConfig, NodeId, Pin,
};

fn main() {
    let mut ni = NetworkInterface::new(NiConfig::default());
    ni.set_control(
        Control::new()
            .with_pin_check(true)
            .with_active_pin(Pin::new(7)) // process 7 owns the node
            .with_privileged_interrupt(true),
    );
    ni.write_reg(InterfaceReg::IpBase, 0x4000).unwrap();

    let read_type = MsgType::new(4).unwrap();

    // 1. A message from the active process flows normally…
    let own = Message::to(NodeId::new(0), [0x100, 0, 0, 0, 0], read_type).with_pin(Pin::new(7));
    ni.push_incoming(own).unwrap();
    assert!(ni.msg_valid());
    println!(
        "active process (pin7): message advanced to the input registers; MsgIp = {:#x} (slot of type 4)",
        ni.read_reg(InterfaceReg::MsgIp).unwrap()
    );
    ni.next();

    // 2. …a message from a descheduled process does not.
    let foreign = Message::to(NodeId::new(0), [0xBAD, 0, 0, 0, 0], read_type).with_pin(Pin::new(9));
    ni.push_incoming(foreign).unwrap();
    assert!(!ni.msg_valid(), "foreign message must not reach user state");
    assert!(ni.status().privileged_pending());
    println!(
        "descheduled process (pin9): diverted; STATUS.priv_pending = {}, interrupt = raised",
        ni.status().privileged_pending()
    );
    assert!(ni.take_interrupt());

    // 3. An operating-system message is privileged regardless of PIN.
    let os_msg = Message::to(NodeId::new(0), [0x05, 0, 0, 0, 0], read_type)
        .with_pin(Pin::new(7))
        .into_privileged();
    ni.push_incoming(os_msg).unwrap();
    assert!(!ni.msg_valid());

    // 4. The "operating system" drains the privileged queue.
    let mut drained = 0;
    while let Some(m) = ni.pop_privileged() {
        drained += 1;
        println!("OS drained: {m}");
    }
    assert_eq!(drained, 2);
    for reason in ni.diversions() {
        println!("  diversion record: {reason}");
    }

    // 5. Dispatch optimizations are untouched: a fresh user message still
    //    rides the MsgIp fast path.
    let again = Message::to(
        NodeId::new(0),
        [0x200, 0xCAFE, 0, 0, 0],
        MsgType::new(0).unwrap(),
    )
    .with_pin(Pin::new(7));
    ni.push_incoming(again).unwrap();
    assert_eq!(ni.read_reg(InterfaceReg::MsgIp).unwrap(), 0xCAFE);
    println!(
        "type-0 user message: MsgIp = {:#x} (the in-message handler IP)",
        0xCAFE
    );
    println!("\nprotection never interfered with the §2.2 dispatch optimizations.");
}
