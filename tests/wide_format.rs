//! Wide wire-format integration tests: the versioned header past the
//! compact format's 256-node ceiling.
//!
//! * **Round trips** — randomized destinations needing 9–16 address bits
//!   survive the wide word layout (encode, decode, `Message` construction)
//!   with the payload bits untouched.
//! * **Compact is byte-frozen** — the default constructors still produce
//!   the paper's exact 8-bit layout; the versioning must be invisible to
//!   every compact-format machine (the golden-artifact layer pins the same
//!   property on the paper artifacts).
//! * **64×64 end to end** — a 4096-node mesh machine completes a loadgen
//!   sweep bit-identically across the hot-set/dense scan pair and worker
//!   counts, and the delivery protocol carries flows across >8-bit node
//!   distances under fault injection, exactly once and in order.

use std::collections::VecDeque;

use tcni::core::{InterfaceReg, Message, MsgType, NodeId, SendMode, WireFormat};
use tcni::net::{FabricConfig, FaultConfig};
use tcni::sim::{CycleDriver, DeliveryConfig, Machine, MachineBuilder, Model, Node, RunOutcome};
use tcni::workload::{InjectCounters, Injector, InjectorConfig, LoopMode, Pattern, Topology};
use tcni_check::check;

/// Randomized 9–16-bit destinations round-trip through the wide layout:
/// the id comes back out of the word, the message decodes its own format,
/// and the payload bits under the address field are untouched.
#[test]
fn wide_destinations_round_trip_through_message_words() {
    check(
        "wide_destinations_round_trip_through_message_words",
        512,
        |rng| {
            let bits = 9 + rng.below(8) as u32; // 9..=16: past the compact field
            let index = (1usize << (bits - 1)) + rng.below(1 << (bits - 1)) as usize;
            let id = NodeId::from_index(index);
            let payload = rng.u32() & WireFormat::Wide.payload_mask();

            let w0 = id.into_word_bits(WireFormat::Wide) | payload;
            assert_eq!(NodeId::from_word(w0, WireFormat::Wide), id, "{bits} bits");
            assert_eq!(w0 & WireFormat::Wide.payload_mask(), payload);

            let mtype = MsgType::new((rng.below(16)) as u8).unwrap();
            let m = Message::to_in(WireFormat::Wide, id, [payload, rng.u32(), 0, 0, 0], mtype);
            assert_eq!(m.dest(), id, "message decodes with its own format");
            assert_eq!(m.words[0], w0, "payload bits survive under the address");
        },
    );
}

/// The compact format is the paper's byte layout, bit for bit: destination
/// in the high 8 bits, and the format-agnostic default constructors are
/// byte-identical to an explicit compact request.
#[test]
fn compact_layout_is_byte_frozen() {
    check("compact_layout_is_byte_frozen", 256, |rng| {
        let id = NodeId::from_index(rng.below(256) as usize);
        assert_eq!(
            id.into_word_bits(WireFormat::Compact),
            (id.index() as u32) << 24,
            "compact keeps the destination in the high 8 bits"
        );
        let words = [rng.u32(), rng.u32(), rng.u32(), rng.u32(), rng.u32()];
        let mtype = MsgType::new(rng.below(16) as u8).unwrap();
        let default = Message::to(id, words, mtype);
        let explicit = Message::to_in(WireFormat::Compact, id, words, mtype);
        assert_eq!(default.words, explicit.words);
        assert_eq!(default.dest(), explicit.dest());
    });
}

/// Auto-selection picks the smallest format that fits, and the machine
/// reports it: 256 nodes stay compact, 257 go wide.
#[test]
fn builders_select_the_smallest_fitting_format() {
    assert_eq!(WireFormat::for_nodes(1), Some(WireFormat::Compact));
    assert_eq!(WireFormat::for_nodes(256), Some(WireFormat::Compact));
    assert_eq!(WireFormat::for_nodes(257), Some(WireFormat::Wide));
    assert_eq!(WireFormat::for_nodes(65_536), Some(WireFormat::Wide));
    assert_eq!(WireFormat::for_nodes(65_537), None);
}

/// Builds a 64×64 mesh machine (wide format by construction) and runs a
/// uniform open-loop sweep over it.
fn run_64x64_sweep(dense: bool, par: usize, cycles: u64) -> (Machine, InjectCounters) {
    let side = 64usize;
    let mut machine = MachineBuilder::new(side * side)
        .model(Model::ALL_SIX[0])
        .network_fabric(FabricConfig::new(side, side))
        .dense_scan(dense)
        .build();
    assert_eq!(machine.wire_format(), WireFormat::Wide);
    machine.set_par_threads(par);
    let mut config = InjectorConfig::new(
        Pattern::Uniform,
        Topology::new(side, side),
        LoopMode::Open { rate_pm: 5 },
    );
    config.format = machine.wire_format();
    let mut injector = Injector::new(config);
    let outcome = machine.run_driven(&mut injector, cycles);
    assert_eq!(outcome, RunOutcome::CycleLimit);
    (machine, injector.counters())
}

/// The 64×64 sweep is bit-identical across the hot-set/dense scan pair and
/// across worker counts: same injector counters, same network statistics
/// (`NetStats` equality deliberately ignores the scan-effort meters, which
/// are the one legitimate difference).
#[test]
fn wide_mesh_sweep_is_bit_identical_across_scan_and_threads() {
    let cycles = 600;
    let (m_base, c_base) = run_64x64_sweep(false, 1, cycles);
    for (dense, par, ctx) in [
        (true, 1, "dense serial"),
        (false, 2, "hot-set par2"),
        (false, 4, "hot-set par4"),
    ] {
        let (m, c) = run_64x64_sweep(dense, par, cycles);
        assert_eq!(c, c_base, "{ctx}: injector counters");
        assert_eq!(m.cycle(), m_base.cycle(), "{ctx}: machine cycle");
        assert_eq!(m.net_stats(), m_base.net_stats(), "{ctx}: network stats");
    }
    assert!(
        c_base.issued > 0 && m_base.net_stats().delivered > 0,
        "the sweep must actually move traffic"
    );
    assert_eq!(m_base.net_stats().bad_dest, 0, "wide ids must route");
}

/// One directed flow at 64×64 scale: `src` sends `per_flow` sequenced
/// messages to `dst`; both indices may need more than 8 bits.
struct WidePair {
    src: usize,
    dst: usize,
    pending: VecDeque<u32>,
    received: Vec<u32>,
}

/// Drives a handful of (src, dst) flows across a wide machine through the
/// architected interface, receive side first, and records arrival order.
struct WideRecorder {
    pairs: Vec<WidePair>,
    format: WireFormat,
    mtype: MsgType,
}

impl WideRecorder {
    fn new(pairs: &[(usize, usize)], per_flow: u32, format: WireFormat) -> WideRecorder {
        WideRecorder {
            pairs: pairs
                .iter()
                .map(|&(src, dst)| WidePair {
                    src,
                    dst,
                    pending: (0..per_flow).collect(),
                    received: Vec::new(),
                })
                .collect(),
            format,
            mtype: MsgType::new(2).expect("type 2 is a plain message type"),
        }
    }

    fn complete(&self, per_flow: u32) -> bool {
        self.pairs
            .iter()
            .all(|p| p.received.len() as u32 >= per_flow)
    }
}

impl CycleDriver for WideRecorder {
    fn on_cycle(&mut self, _cycle: u64, nodes: &mut [Node]) -> bool {
        for (idx, pair) in self.pairs.iter_mut().enumerate() {
            let ni = nodes[pair.dst].ni_mut();
            while ni.msg_valid() {
                let w1 = ni.read_reg(InterfaceReg::I1).expect("I1 readable");
                ni.next();
                assert_eq!((w1 >> 16) as usize, idx, "flow tag routes to its pair");
                pair.received.push(w1 & 0xFFFF);
            }
            let ni = nodes[pair.src].ni_mut();
            if let Some(&seq) = pair.pending.front() {
                if ni.send_would_stall() {
                    continue; // interface (or delivery-window) backpressure
                }
                let dest = NodeId::from_index(pair.dst);
                ni.write_reg(InterfaceReg::O0, dest.into_word_bits(self.format))
                    .expect("O0 writable");
                ni.write_reg(InterfaceReg::O1, ((idx as u32) << 16) | seq)
                    .expect("O1 writable");
                ni.send(SendMode::Send, self.mtype).expect("send accepted");
                pair.pending.pop_front();
            }
        }
        true
    }
}

/// The delivery protocol at 64×64: flows whose source and destination both
/// need more than 8 address bits survive drop/duplicate/corrupt faults
/// exactly once and in order — the wide `E2eHeader.src` (data stamps and
/// ack attribution) end to end, with no truncated-id aliasing possible.
#[test]
fn wide_delivery_is_exactly_once_in_order_under_faults() {
    let side = 64usize;
    let per_flow = 10u32;
    // Disjoint node sets; every index on at least one side is >255.
    let pairs = [(0usize, 4095usize), (17, 300), (4094, 1), (600, 2600)];
    let mut machine = MachineBuilder::new(side * side)
        .network_fabric(FabricConfig::new(side, side))
        .network_fault(FaultConfig::uniform(0x57AB, 60))
        .delivery(DeliveryConfig {
            window: 4,
            timeout: 2048,
            retransmit_limit: 10_000,
        })
        .build();
    assert_eq!(machine.wire_format(), WireFormat::Wide);
    let mut recorder = WideRecorder::new(&pairs, per_flow, machine.wire_format());

    let (chunk, budget) = (4_000u64, 400_000u64);
    let mut spent = 0;
    while !recorder.complete(per_flow) {
        assert!(spent < budget, "flows incomplete after {spent} cycles");
        machine.run_driven(&mut recorder, chunk);
        spent += chunk;
    }

    let expect: Vec<u32> = (0..per_flow).collect();
    for (pair, &(src, dst)) in recorder.pairs.iter().zip(&pairs) {
        assert_eq!(
            pair.received, expect,
            "flow {src}->{dst} must arrive exactly once, in order"
        );
    }
    let total = u64::from(per_flow) * pairs.len() as u64;
    let del = machine.delivery_stats().expect("protocol enabled");
    assert_eq!(del.accepted, total, "sends committed");
    assert_eq!(del.delivered_unique, total, "unique deliveries");
    assert_eq!(del.abandoned, 0, "no flow may abandon its window");
}
