//! The full Figure-12 pipeline at integration scale: TAM workloads →
//! dynamic counts → cycle expansion, with the paper's qualitative claims
//! checked on the measured cost table.

use tcni::eval::figure12::Figure12;
use tcni::eval::table1::Table1;
use tcni::tam::programs;

fn measured() -> &'static Table1 {
    use std::sync::OnceLock;
    static T: OnceLock<Table1> = OnceLock::new();
    T.get_or_init(Table1::measure)
}

#[test]
fn matmul_panel_shape() {
    let out = programs::matmul::run(20, 16).unwrap();
    assert_eq!(out.c, programs::matmul::reference(20));
    let fig = Figure12::from_counts("matmul 20", out.counts, &measured().models);
    let h = fig.headline();
    assert!(h.crossover_holds, "{fig}");
    assert!(h.comm_reduction > 2.0, "{fig}");
    assert!((0.15..0.6).contains(&h.total_cut), "{fig}");
    assert!(h.comm_fraction_before > 0.3, "{fig}");
    assert!(
        h.comm_fraction_after < h.comm_fraction_before - 0.1,
        "{fig}"
    );
}

#[test]
fn gamteb_panel_shape() {
    let out = programs::gamteb::run(8, 16, 0x42).unwrap();
    assert_eq!(out.absorbed + out.escaped, out.total);
    let fig = Figure12::from_counts("gamteb 8", out.counts, &measured().models);
    let h = fig.headline();
    assert!(h.crossover_holds, "{fig}");
    assert!(h.comm_reduction > 2.0, "{fig}");
    assert!(h.hw_only_reduction > 1.4, "{fig}");
}

#[test]
fn fib_panel_is_send_dominated_and_still_orders() {
    let out = programs::fib::run(14, 16).unwrap();
    assert_eq!(out.value, programs::fib::reference(14));
    assert_eq!(out.counts.msgs.preads(), 0, "fib has no heap traffic");
    let fig = Figure12::from_counts("fib 14", out.counts, &measured().models);
    let t: Vec<f64> = fig.bars.iter().map(|b| b.total()).collect();
    assert!(t[0] < t[1] && t[1] <= t[2], "{t:?}");
    assert!(t[3] < t[4] && t[4] <= t[5], "{t:?}");
    assert!(fig.headline().comm_reduction > 2.0);
}

#[test]
fn nqueens_panel_is_irregular_and_still_orders() {
    let out = programs::nqueens::run(7, 16).unwrap();
    assert_eq!(out.solutions, programs::nqueens::reference(7));
    let fig = Figure12::from_counts("nqueens 7", out.counts, &measured().models);
    let t: Vec<f64> = fig.bars.iter().map(|b| b.total()).collect();
    assert!(t[0] < t[1] && t[1] <= t[2], "{t:?}");
    assert!(fig.headline().comm_reduction > 2.0);
}

#[test]
fn grain_size_matches_the_paper() {
    // "there were, on average, 3 floating point operations performed for
    // every message sent in our matrix multiply program" and "the dynamic
    // frequency of executing a message sending instruction … is under 10%".
    let out = programs::matmul::run(40, 32).unwrap();
    let f = out.counts.flops_per_message();
    assert!((2.0..6.0).contains(&f), "flops/message = {f}");
    assert!(
        out.counts.message_op_fraction() < 0.10,
        "message instruction frequency"
    );
}

#[test]
fn workload_counts_scale_sanely() {
    // Messages scale ~n³ for matmul (fetch traffic), compute likewise.
    let small = programs::matmul::run(8, 8).unwrap().counts;
    let large = programs::matmul::run(16, 8).unwrap().counts;
    let ratio = large.msgs.preads() as f64 / small.msgs.preads() as f64;
    assert!(
        (7.0..9.1).contains(&ratio),
        "n³ scaling of PReads, got {ratio}"
    );
}

#[test]
fn offchip_latency_sweep_doubles_offchip_comm() {
    let counts = programs::matmul::run(16, 8).unwrap().counts;
    let pts = tcni::eval::sweep::offchip_sweep(&counts, &[2, 8]);
    let r = pts[1].optimized_offchip.comm() / pts[0].optimized_offchip.comm();
    assert!((1.5..2.6).contains(&r), "§4.2.3 doubling, got ×{r:.2}");
    // And the register-mapped model would be unaffected (checked at the
    // Table-1 level in evaluation_invariants.rs).
}
