//! Property tests across crates: the mesh and the ideal network agree on
//! *what* is delivered (the mesh only changes *when*), point-to-point order
//! survives both fabrics, and the interface's queueing is loss-free under
//! arbitrary traffic.

use proptest::prelude::*;
use tcni::core::{Message, MsgType, NetworkInterface, NiConfig, NodeId};
use tcni::net::{IdealNetwork, Mesh2d, MeshConfig, Network};

#[derive(Debug, Clone)]
struct Traffic {
    src: u8,
    dst: u8,
    tag: u32,
}

fn arb_traffic(nodes: u8, len: usize) -> impl Strategy<Value = Vec<Traffic>> {
    prop::collection::vec(
        (0..nodes, 0..nodes, any::<u32>()).prop_map(|(src, dst, tag)| Traffic { src, dst, tag }),
        0..len,
    )
}

fn push_through(net: &mut dyn Network, traffic: &[Traffic]) -> Vec<(u8, u32)> {
    let nodes = net.node_count() as u8;
    let mut delivered = Vec::new();
    let drain = |net: &mut dyn Network, delivered: &mut Vec<(u8, u32)>| {
        for n in 0..nodes {
            while let Some(m) = net.eject(NodeId::new(n)) {
                delivered.push((n, m.words[1]));
            }
        }
    };
    for t in traffic {
        let mut msg = Message::to(
            NodeId::new(t.dst),
            [0, t.tag, 0, 0, 0],
            MsgType::new(2).unwrap(),
        );
        loop {
            match net.inject(NodeId::new(t.src), msg) {
                Ok(()) => break,
                Err(back) => {
                    msg = back;
                    net.tick();
                    drain(net, &mut delivered);
                }
            }
        }
    }
    for _ in 0..4096 {
        if net.in_flight() == 0 {
            break;
        }
        net.tick();
        drain(net, &mut delivered);
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both fabrics deliver exactly the same multiset of (destination, tag).
    #[test]
    fn mesh_and_ideal_deliver_the_same_messages(traffic in arb_traffic(9, 60)) {
        let mut mesh = Mesh2d::new(MeshConfig::new(3, 3));
        let mut ideal = IdealNetwork::new(9, 2);
        let mut got_mesh = push_through(&mut mesh, &traffic);
        let mut got_ideal = push_through(&mut ideal, &traffic);
        prop_assert_eq!(mesh.in_flight(), 0, "mesh must drain");
        got_mesh.sort_unstable();
        got_ideal.sort_unstable();
        prop_assert_eq!(got_mesh, got_ideal);
    }

    /// Point-to-point order: tags from one source to one destination arrive
    /// in injection order over the mesh (the SCROLL flit requirement).
    #[test]
    fn mesh_preserves_pairwise_order(tags in prop::collection::vec(any::<u32>(), 1..24)) {
        let mut mesh = Mesh2d::new(MeshConfig::new(3, 2));
        let traffic: Vec<Traffic> =
            tags.iter().enumerate().map(|(i, _)| Traffic { src: 0, dst: 5, tag: i as u32 }).collect();
        let got = push_through(&mut mesh, &traffic);
        let order: Vec<u32> = got.into_iter().map(|(_, tag)| tag).collect();
        prop_assert_eq!(order, (0..tags.len() as u32).collect::<Vec<_>>());
    }

    /// The interface never loses or duplicates a message: everything pushed
    /// in (that is not diverted) comes out of NEXT exactly once, in order.
    #[test]
    fn interface_queueing_is_loss_free(tags in prop::collection::vec(any::<u32>(), 0..64)) {
        let cfg = NiConfig { input_capacity: 4, ..NiConfig::default() };
        let mut ni = NetworkInterface::new(cfg);
        let mut accepted = Vec::new();
        let mut received = Vec::new();
        let mut it = tags.iter().peekable();
        while it.peek().is_some() || ni.msg_valid() {
            // Offer the next message; on backpressure, consume one first.
            if let Some(&&tag) = it.peek() {
                let m = Message::new([0, tag, 0, 0, 0], MsgType::new(2).unwrap());
                if let Ok(()) = ni.push_incoming(m) {
                    accepted.push(tag);
                    it.next();
                    continue;
                }
            }
            if ni.msg_valid() {
                received.push(ni.read_reg(tcni::core::InterfaceReg::I1).unwrap());
                ni.next();
            }
        }
        prop_assert_eq!(&accepted, &tags);
        prop_assert_eq!(received, tags);
        prop_assert!(ni.is_quiescent());
    }

    /// Figure-7 dispatch: MsgIp is always either the in-message IP (clean
    /// type-0) or inside the handler table.
    #[test]
    fn msg_ip_is_always_well_formed(
        mtype in 0u8..16,
        w1 in any::<u32>(),
        thresh in 0u32..4,
        fill in 0usize..8,
    ) {
        prop_assume!(mtype != 1);
        let mut ni = NetworkInterface::new(NiConfig::default());
        ni.write_reg(tcni::core::InterfaceReg::IpBase, 0x8000).unwrap();
        ni.set_control(tcni::core::Control::new().with_input_threshold(thresh));
        for _ in 0..fill {
            ni.push_incoming(Message::new([0, 0, 0, 0, 0], MsgType::new(3).unwrap())).unwrap();
        }
        ni.push_incoming(Message::new([0, w1, 0, 0, 0], MsgType::new(mtype).unwrap())).unwrap();
        let ip = ni.read_reg(tcni::core::InterfaceReg::MsgIp).unwrap();
        let in_table = (0x8000..0x8000 + tcni::core::dispatch::TABLE_BYTES).contains(&ip);
        let current_type = ni.current_type();
        if current_type.bits() == 0 && !ni.status().iafull() && !ni.status().oafull() {
            // Clean type-0 currently in the registers: must be its word 1.
            let w1_now = ni.read_reg(tcni::core::InterfaceReg::I1).unwrap();
            prop_assert_eq!(ip, w1_now);
        } else {
            prop_assert!(in_table, "MsgIp {ip:#x} must fall in the table");
            prop_assert_eq!(ip % 16, 0, "slot-aligned");
        }
    }
}
