//! Randomized tests (tcni-check) across crates: the mesh and the ideal
//! network agree on *what* is delivered (the mesh only changes *when*),
//! point-to-point order survives both fabrics, and the interface's queueing
//! is loss-free under arbitrary traffic.

use tcni::core::{Message, MsgType, NetworkInterface, NiConfig, NodeId};
use tcni::net::{Fabric, FabricConfig, IdealNetwork, Network};
use tcni_check::{check, Rng};

const CASES: u64 = 64;

#[derive(Debug, Clone)]
struct Traffic {
    src: u16,
    dst: u16,
    tag: u32,
}

fn arb_traffic(rng: &mut Rng, nodes: u16, len: usize) -> Vec<Traffic> {
    (0..rng.below(len as u64))
        .map(|_| Traffic {
            src: rng.below(u64::from(nodes)) as u16,
            dst: rng.below(u64::from(nodes)) as u16,
            tag: rng.u32(),
        })
        .collect()
}

fn push_through(net: &mut dyn Network, traffic: &[Traffic]) -> Vec<(u16, u32)> {
    let nodes = net.node_count() as u16;
    let mut delivered = Vec::new();
    let drain = |net: &mut dyn Network, delivered: &mut Vec<(u16, u32)>| {
        for n in 0..nodes {
            while let Some(m) = net.eject(NodeId::new(n)) {
                delivered.push((n, m.words[1]));
            }
        }
    };
    for t in traffic {
        let mut msg = Message::to(
            NodeId::new(t.dst),
            [0, t.tag, 0, 0, 0],
            MsgType::new(2).unwrap(),
        );
        loop {
            match net.inject(NodeId::new(t.src), msg) {
                Ok(()) => break,
                Err(e) => {
                    msg = e.into_message();
                    net.tick();
                    drain(net, &mut delivered);
                }
            }
        }
    }
    for _ in 0..4096 {
        if net.in_flight() == 0 {
            break;
        }
        net.tick();
        drain(net, &mut delivered);
    }
    delivered
}

/// Both fabrics deliver exactly the same multiset of (destination, tag).
#[test]
fn mesh_and_ideal_deliver_the_same_messages() {
    check("mesh_and_ideal_deliver_the_same_messages", CASES, |rng| {
        let traffic = arb_traffic(rng, 9, 60);
        let mut mesh = Fabric::new(FabricConfig::new(3, 3));
        let mut ideal = IdealNetwork::new(9, 2);
        let mut got_mesh = push_through(&mut mesh, &traffic);
        let mut got_ideal = push_through(&mut ideal, &traffic);
        assert_eq!(mesh.in_flight(), 0, "mesh must drain");
        got_mesh.sort_unstable();
        got_ideal.sort_unstable();
        assert_eq!(got_mesh, got_ideal);
    });
}

/// Point-to-point order: tags from one source to one destination arrive in
/// injection order over the mesh (the SCROLL flit requirement).
#[test]
fn mesh_preserves_pairwise_order() {
    check("mesh_preserves_pairwise_order", CASES, |rng| {
        let count = rng.range(1, 24) as u32;
        let mut mesh = Fabric::new(FabricConfig::new(3, 2));
        let traffic: Vec<Traffic> = (0..count)
            .map(|i| Traffic {
                src: 0,
                dst: 5,
                tag: i,
            })
            .collect();
        let got = push_through(&mut mesh, &traffic);
        let order: Vec<u32> = got.into_iter().map(|(_, tag)| tag).collect();
        assert_eq!(order, (0..count).collect::<Vec<_>>());
    });
}

/// The interface never loses or duplicates a message: everything pushed in
/// (that is not diverted) comes out of NEXT exactly once, in order.
#[test]
fn interface_queueing_is_loss_free() {
    check("interface_queueing_is_loss_free", CASES, |rng| {
        let tags: Vec<u32> = (0..rng.below(64)).map(|_| rng.u32()).collect();
        let cfg = NiConfig {
            input_capacity: 4,
            ..NiConfig::default()
        };
        let mut ni = NetworkInterface::new(cfg);
        let mut accepted = Vec::new();
        let mut received = Vec::new();
        let mut it = tags.iter().peekable();
        while it.peek().is_some() || ni.msg_valid() {
            // Offer the next message; on backpressure, consume one first.
            if let Some(&&tag) = it.peek() {
                let m = Message::new([0, tag, 0, 0, 0], MsgType::new(2).unwrap());
                if let Ok(()) = ni.push_incoming(m) {
                    accepted.push(tag);
                    it.next();
                    continue;
                }
            }
            if ni.msg_valid() {
                received.push(ni.read_reg(tcni::core::InterfaceReg::I1).unwrap());
                ni.next();
            }
        }
        assert_eq!(&accepted, &tags);
        assert_eq!(received, tags);
        assert!(ni.is_quiescent());
    });
}

/// Figure-7 dispatch: MsgIp is always either the in-message IP (clean
/// type-0) or inside the handler table.
#[test]
fn msg_ip_is_always_well_formed() {
    check("msg_ip_is_always_well_formed", CASES, |rng| {
        // Type 1 is reserved for this test's filler traffic; redraw around it
        // (the proptest original used prop_assume! the same way).
        let mtype = match rng.below(15) as u8 {
            t if t >= 1 => t + 1,
            t => t,
        };
        let w1 = rng.u32();
        let thresh = rng.below(4) as u32;
        let fill = rng.below(8) as usize;
        let mut ni = NetworkInterface::new(NiConfig::default());
        ni.write_reg(tcni::core::InterfaceReg::IpBase, 0x8000)
            .unwrap();
        ni.set_control(tcni::core::Control::new().with_input_threshold(thresh));
        for _ in 0..fill {
            ni.push_incoming(Message::new([0, 0, 0, 0, 0], MsgType::new(3).unwrap()))
                .unwrap();
        }
        ni.push_incoming(Message::new([0, w1, 0, 0, 0], MsgType::new(mtype).unwrap()))
            .unwrap();
        let ip = ni.read_reg(tcni::core::InterfaceReg::MsgIp).unwrap();
        let in_table = (0x8000..0x8000 + tcni::core::dispatch::TABLE_BYTES).contains(&ip);
        let current_type = ni.current_type();
        if current_type.bits() == 0 && !ni.status().iafull() && !ni.status().oafull() {
            // Clean type-0 currently in the registers: must be its word 1.
            let w1_now = ni.read_reg(tcni::core::InterfaceReg::I1).unwrap();
            assert_eq!(ip, w1_now);
        } else {
            assert!(in_table, "MsgIp {ip:#x} must fall in the table");
            assert_eq!(ip % 16, 0, "slot-aligned");
        }
    });
}
