//! Delivery at scale: the sparse (src, dst)-keyed flow store past the old
//! dense ceiling.
//!
//! * **64×64 uniform sweep** — a 4096-node delivery-enabled machine runs an
//!   open-loop uniform sweep; the new footprint meters prove flow state is
//!   proportional to the *active* pair set, orders of magnitude below the
//!   2·N² slots the dense tables would pin, and the sharded run reproduces
//!   every meter byte for byte.
//! * **256×256 smoke** — a 65 536-node wide-format machine (double the old
//!   `DeliveryTooLarge` cap) builds with delivery enabled and completes a
//!   faulty-fabric flow test exactly once and in order, with every flow
//!   endpoint indexed past 32 768.

use std::collections::VecDeque;

use tcni::core::{InterfaceReg, MsgType, NodeId, SendMode, WireFormat};
use tcni::net::{FabricConfig, FaultConfig};
use tcni::sim::{CycleDriver, DeliveryConfig, Machine, MachineBuilder, Model, Node, RunOutcome};
use tcni::workload::{InjectCounters, Injector, InjectorConfig, LoopMode, Pattern, Topology};

/// Builds a delivery-enabled 64×64 mesh machine under a seeded fault
/// schedule and runs a uniform open-loop sweep over it.
fn run_64x64_delivery_sweep(par: usize, cycles: u64) -> (Machine, InjectCounters) {
    let side = 64usize;
    let mut machine = MachineBuilder::new(side * side)
        .model(Model::ALL_SIX[0])
        .network_fabric(FabricConfig::new(side, side))
        .network_fault(FaultConfig::uniform(0xD157, 20))
        .delivery(DeliveryConfig::default())
        .build();
    assert_eq!(machine.wire_format(), WireFormat::Wide);
    machine.set_par_threads(par);
    let mut config = InjectorConfig::new(
        Pattern::Uniform,
        Topology::new(side, side),
        LoopMode::Open { rate_pm: 5 },
    );
    config.format = machine.wire_format();
    let mut injector = Injector::new(config);
    let outcome = machine.run_driven(&mut injector, cycles);
    assert_eq!(outcome, RunOutcome::CycleLimit);
    (machine, injector.counters())
}

/// Uniform traffic at 64×64 with the delivery protocol on: flow state must
/// stay proportional to the set of (src, dst) pairs that actually carried
/// traffic — the dense tables would pin 2·4096² slots up front — and the
/// sharded run must reproduce every statistic, footprint meters included.
#[test]
fn uniform_delivery_at_64x64_keeps_flow_state_sparse() {
    let n = 64u64 * 64;
    let cycles = 600;
    let (machine, counters) = run_64x64_delivery_sweep(1, cycles);
    let del = machine.delivery_stats().expect("protocol enabled");
    assert!(
        counters.issued > 0 && del.accepted > 0,
        "the sweep must actually move traffic through the protocol"
    );

    let scan = machine.net_stats().scan;
    assert!(scan.peak_flows > 0, "delivery traffic occupies flow slots");
    assert!(scan.flow_probes > 0, "sparse lookups are metered");
    assert!(
        scan.active_flows <= scan.peak_flows,
        "the high-water mark bounds the live count"
    );
    // Each accepted send touches at most one tx flow (at the source) and
    // one rx flow (at the destination), so the footprint is bounded by the
    // traffic that ran — not by the address space.
    assert!(
        scan.peak_flows <= 2 * del.accepted,
        "flow state is proportional to active pairs ({} slots for {} sends)",
        scan.peak_flows,
        del.accepted
    );
    assert!(
        scan.peak_flows < n * n / 8,
        "flow state must stay far below the 2*N^2 dense footprint"
    );

    // The sharded sweep is bit-identical, footprint meters included: the
    // probe meter only counts phase-driven lookups, which replay in the
    // same per-node order at any worker count.
    let (m4, c4) = run_64x64_delivery_sweep(4, cycles);
    assert_eq!(c4, counters, "par4: injector counters");
    assert_eq!(m4.cycle(), machine.cycle(), "par4: machine cycle");
    assert_eq!(m4.net_stats(), machine.net_stats(), "par4: network stats");
    assert_eq!(
        m4.net_stats().scan,
        machine.net_stats().scan,
        "par4: scan meters must be byte-identical, footprint included"
    );
    assert_eq!(
        m4.delivery_stats(),
        machine.delivery_stats(),
        "par4: delivery stats"
    );
}

/// One directed flow at 256×256 scale: `src` sends sequenced messages to
/// `dst`; every index is past the old 32 768-flow-table cap.
struct ScalePair {
    src: usize,
    dst: usize,
    pending: VecDeque<u32>,
    received: Vec<u32>,
}

/// Drives the (src, dst) flows through the architected interface, receive
/// side first, and records arrival order.
struct ScaleRecorder {
    pairs: Vec<ScalePair>,
    format: WireFormat,
    mtype: MsgType,
}

impl ScaleRecorder {
    fn new(pairs: &[(usize, usize)], per_flow: u32, format: WireFormat) -> ScaleRecorder {
        ScaleRecorder {
            pairs: pairs
                .iter()
                .map(|&(src, dst)| ScalePair {
                    src,
                    dst,
                    pending: (0..per_flow).collect(),
                    received: Vec::new(),
                })
                .collect(),
            format,
            mtype: MsgType::new(2).expect("type 2 is a plain message type"),
        }
    }

    fn complete(&self, per_flow: u32) -> bool {
        self.pairs
            .iter()
            .all(|p| p.received.len() as u32 >= per_flow)
    }
}

impl CycleDriver for ScaleRecorder {
    fn on_cycle(&mut self, _cycle: u64, nodes: &mut [Node]) -> bool {
        for (idx, pair) in self.pairs.iter_mut().enumerate() {
            let ni = nodes[pair.dst].ni_mut();
            while ni.msg_valid() {
                let w1 = ni.read_reg(InterfaceReg::I1).expect("I1 readable");
                ni.next();
                assert_eq!((w1 >> 16) as usize, idx, "flow tag routes to its pair");
                pair.received.push(w1 & 0xFFFF);
            }
            let ni = nodes[pair.src].ni_mut();
            if let Some(&seq) = pair.pending.front() {
                if ni.send_would_stall() {
                    continue; // interface (or delivery-window) backpressure
                }
                let dest = NodeId::from_index(pair.dst);
                ni.write_reg(InterfaceReg::O0, dest.into_word_bits(self.format))
                    .expect("O0 writable");
                ni.write_reg(InterfaceReg::O1, ((idx as u32) << 16) | seq)
                    .expect("O1 writable");
                ni.send(SendMode::Send, self.mtype).expect("send accepted");
                pair.pending.pop_front();
            }
        }
        true
    }
}

/// The acceptance smoke for the lifted cap: a 256×256 (65 536-node)
/// wide-format machine — double the old `DeliveryTooLarge` ceiling — builds
/// with delivery enabled and carries flows between physically-close nodes
/// whose indices all exceed 32 768, exactly once and in order, across a
/// faulty fabric. Tiny per-node memories keep the build cheap; the hot-set
/// scheduler keeps the idle 65 528 nodes off every per-cycle path.
#[test]
fn delivery_at_256x256_is_exactly_once_in_order_under_faults() {
    let side = 256usize;
    let per_flow = 4u32;
    // Neighbouring nodes (distance 1 in the mesh), every index > 32768 —
    // addresses the dense tables could never have stored.
    let pairs = [
        (40_000usize, 40_001usize),
        (33_000, 33_001),
        (65_534, 65_535),
        (50_000, 50_256), // vertical neighbour: one row apart
    ];
    let mut machine = MachineBuilder::new(side * side)
        .memory_bytes(1024)
        .network_fabric(FabricConfig::new(side, side))
        .network_fault(FaultConfig::uniform(0xC0DE, 40))
        .delivery(DeliveryConfig {
            window: 4,
            timeout: 256,
            retransmit_limit: 10_000,
        })
        .build();
    assert_eq!(machine.node_count(), 65_536);
    assert_eq!(machine.wire_format(), WireFormat::Wide);
    let mut recorder = ScaleRecorder::new(&pairs, per_flow, machine.wire_format());

    let (chunk, budget) = (1_000u64, 30_000u64);
    let mut spent = 0;
    while !recorder.complete(per_flow) {
        assert!(spent < budget, "flows incomplete after {spent} cycles");
        machine.run_driven(&mut recorder, chunk);
        spent += chunk;
    }

    let expect: Vec<u32> = (0..per_flow).collect();
    for (pair, &(src, dst)) in recorder.pairs.iter().zip(&pairs) {
        assert_eq!(
            pair.received, expect,
            "flow {src}->{dst} must arrive exactly once, in order"
        );
    }
    let total = u64::from(per_flow) * pairs.len() as u64;
    let del = machine.delivery_stats().expect("protocol enabled");
    assert_eq!(del.accepted, total, "sends committed");
    assert_eq!(del.delivered_unique, total, "unique deliveries");
    assert_eq!(del.abandoned, 0, "no flow may abandon its window");

    // Footprint: 8 flow endpoints (4 tx + up to 4 rx) in a 65 536-node
    // machine whose dense tables would have needed 2 * 65536^2 slots.
    let scan = machine.net_stats().scan;
    assert!(
        scan.peak_flows >= pairs.len() as u64,
        "every pair occupies at least its tx slot"
    );
    assert!(
        scan.peak_flows <= 2 * pairs.len() as u64,
        "flow state never exceeds the active endpoints"
    );
    assert!(
        scan.active_flows >= pairs.len() as u64,
        "tx flows are never evicted (their budgets are load-bearing)"
    );
}
