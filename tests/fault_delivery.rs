//! End-to-end guarantees of the fault-injection + delivery-protocol pair,
//! at integration scale:
//!
//! * **Exactly-once, in-order** — with drop/duplicate/corrupt/stall faults
//!   active and the delivery protocol on, every flow's payload stream
//!   arrives at the application (the `NEXT`-side of the interface) exactly
//!   once, in order, and bit-intact, on both fabrics and across seeds.
//! * **Invisibility when disabled** — a zero-rate [`FaultyFabric`] wrapper
//!   with the protocol off is bit-identical to the plain machine on all six
//!   §4 models: cycles, registers, network counters, and the serialized
//!   `tcni-trace/1` report. (The golden-artifact layer pins the same
//!   property byte-for-byte on the paper artifacts.)
//! * **Distinct accounting** — fabric fault drops are counted under
//!   `faults.*` in `NetStats` and the `tcni-trace/1` export, never as
//!   `bad_dest` (which stays reserved for unroutable destinations).
//!
//! [`FaultyFabric`]: tcni::net::FaultyFabric

use std::collections::VecDeque;

use tcni::core::{InterfaceReg, MsgType, NodeId, SendMode};
use tcni::eval::handlers::remote_read::{self, REMOTE_ADDR, RESULT_ADDR};
use tcni::isa::Reg;
use tcni::net::{FabricConfig, FaultConfig};
use tcni::sim::{CycleDriver, DeliveryConfig, Machine, MachineBuilder, Model, Node, RunOutcome};
use tcni_check::check;
use tcni_core::WireFormat;

/// One not-yet-sent payload message.
#[derive(Debug, Clone, Copy)]
struct Pending {
    dest: usize,
    seq: u32,
}

/// A [`CycleDriver`] that sends a known sequenced payload stream on every
/// (src, dst) flow and records exactly what the receive side hands back
/// through `NEXT` — the application-level view the delivery protocol must
/// keep exactly-once and in-order no matter what the fabric does.
struct FlowRecorder {
    nodes: usize,
    /// Per-src queue of messages still to offer to the interface.
    pending: Vec<VecDeque<Pending>>,
    /// `received[dst * nodes + src]`: payload sequence numbers in arrival
    /// order.
    received: Vec<Vec<u32>>,
    /// Payloads whose integrity word did not match (must stay 0: corrupted
    /// copies are the protocol's to catch, never the application's).
    mangled: u64,
    mtype: MsgType,
}

/// The low-16-bit integrity tag carried in word 0 next to the destination
/// bits; any surviving payload corruption breaks it.
fn tag(src: usize, seq: u32) -> u32 {
    ((src as u32).wrapping_mul(0x0101) ^ seq.wrapping_mul(0x9E37)) & 0xFFFF
}

impl FlowRecorder {
    /// Every ordered pair of distinct nodes sends `per_flow` messages,
    /// interleaved round-robin over destinations.
    fn new(nodes: usize, per_flow: u32) -> FlowRecorder {
        let pending = (0..nodes)
            .map(|src| {
                let mut q = VecDeque::new();
                for seq in 0..per_flow {
                    for dest in (0..nodes).filter(|&d| d != src) {
                        q.push_back(Pending { dest, seq });
                    }
                }
                q
            })
            .collect();
        FlowRecorder {
            nodes,
            pending,
            received: vec![Vec::new(); nodes * nodes],
            mangled: 0,
            mtype: MsgType::new(2).expect("type 2 is a plain message type"),
        }
    }

    fn complete(&self, per_flow: u32) -> bool {
        (0..self.nodes).all(|dst| {
            (0..self.nodes)
                .filter(|&src| src != dst)
                .all(|src| self.received[dst * self.nodes + src].len() as u32 >= per_flow)
        })
    }
}

impl CycleDriver for FlowRecorder {
    fn on_cycle(&mut self, _cycle: u64, nodes: &mut [Node]) -> bool {
        for (i, node) in nodes.iter_mut().enumerate().take(self.nodes) {
            let ni = node.ni_mut();
            if ni.msg_valid() {
                let w0 = ni.read_reg(InterfaceReg::I0).expect("I0 readable");
                let w1 = ni.read_reg(InterfaceReg::I1).expect("I1 readable");
                ni.next();
                let src = (w1 >> 16) as usize;
                let seq = w1 & 0xFFFF;
                if w0 & 0xFFFF != tag(src, seq) {
                    self.mangled += 1;
                } else {
                    self.received[i * self.nodes + src].push(seq);
                }
            } else if let Some(&p) = self.pending[i].front() {
                if ni.send_would_stall() {
                    continue; // interface (or delivery-window) backpressure
                }
                let dest = NodeId::from_index(p.dest);
                ni.write_reg(
                    InterfaceReg::O0,
                    dest.into_word_bits(WireFormat::Compact) | tag(i, p.seq),
                )
                .expect("O0 writable");
                ni.write_reg(InterfaceReg::O1, ((i as u32) << 16) | p.seq)
                    .expect("O1 writable");
                ni.send(SendMode::Send, self.mtype).expect("send accepted");
                self.pending[i].pop_front();
            }
        }
        true
    }
}

/// Runs the recorder until every flow is complete (or the budget runs out)
/// and returns the machine for post-mortem assertions.
fn run_to_completion(
    mut machine: Machine,
    recorder: &mut FlowRecorder,
    per_flow: u32,
    budget: u64,
    ctx: &str,
) -> Machine {
    let chunk = 2_000;
    let mut spent = 0;
    while !recorder.complete(per_flow) {
        assert!(
            spent < budget,
            "{ctx}: flows incomplete after {spent} cycles"
        );
        machine.run_driven(recorder, chunk);
        spent += chunk;
    }
    machine
}

/// The tentpole property: faults on, protocol on — every flow is delivered
/// to the application exactly once, in order, bit-intact, with nothing
/// abandoned, on both fabrics and across seeds and fault rates.
#[test]
fn delivery_is_exactly_once_in_order_under_faults() {
    check(
        "delivery_is_exactly_once_in_order_under_faults",
        12,
        |rng| {
            let mesh = rng.bool();
            let rate_pm = rng.range(30, 150) as u32;
            let seed = rng.u64();
            let per_flow = rng.range(8, 24) as u32;
            let nodes = 4;
            let ctx = format!("mesh={mesh} rate={rate_pm}pm seed={seed:#x} per_flow={per_flow}");

            let builder = MachineBuilder::new(nodes)
                .network_fault(FaultConfig::uniform(seed, rate_pm))
                .delivery(DeliveryConfig {
                    window: 4,
                    timeout: 32,
                    retransmit_limit: 10_000,
                });
            let machine = if mesh {
                builder.network_fabric(FabricConfig::new(2, 2)).build()
            } else {
                builder.network_ideal(1).build()
            };
            let mut recorder = FlowRecorder::new(nodes, per_flow);
            let machine = run_to_completion(machine, &mut recorder, per_flow, 400_000, &ctx);

            // Exactly-once, in-order, per flow.
            let expect: Vec<u32> = (0..per_flow).collect();
            for dst in 0..nodes {
                for src in (0..nodes).filter(|&s| s != dst) {
                    assert_eq!(
                        recorder.received[dst * nodes + src],
                        expect,
                        "{ctx}: flow {src}->{dst} must arrive exactly once, in order"
                    );
                }
            }
            assert_eq!(
                recorder.mangled, 0,
                "{ctx}: corruption must never reach NEXT"
            );

            // Protocol ledger: everything accepted was delivered exactly once;
            // nothing was abandoned; the fabric really did misbehave.
            let total = u64::from(per_flow) * (nodes * (nodes - 1)) as u64;
            let del = machine.delivery_stats().expect("protocol enabled");
            assert_eq!(del.accepted, total, "{ctx}: sends committed");
            assert_eq!(del.delivered_unique, total, "{ctx}: unique deliveries");
            assert_eq!(del.abandoned, 0, "{ctx}: no flow may abandon its window");
            let faults = machine.net_stats().faults;
            assert!(
                faults.dropped + faults.duplicated + faults.corrupted + faults.stalls > 0,
                "{ctx}: the fault schedule must actually fire"
            );
            if faults.dropped + faults.corrupted > 0 {
                assert!(del.retransmits > 0, "{ctx}: losses force retransmission");
            }
        },
    );
}

/// Fault drops are their own ledger entry: they never masquerade as
/// `bad_dest` (unroutable destination), and the `tcni-trace/1` export
/// carries both the fault and the delivery counters.
#[test]
fn fault_accounting_is_distinct_from_bad_dest_in_the_export() {
    let nodes = 4;
    let per_flow = 12;
    let mut machine = MachineBuilder::new(nodes)
        .network_ideal(1)
        .network_fault(FaultConfig::uniform(0xFA17, 120))
        .delivery(DeliveryConfig {
            window: 4,
            timeout: 32,
            retransmit_limit: 10_000,
        })
        .build();
    machine.enable_obs(64);
    let mut recorder = FlowRecorder::new(nodes, per_flow);
    let machine = run_to_completion(machine, &mut recorder, per_flow, 400_000, "obs export");

    let stats = machine.net_stats();
    assert!(stats.faults.dropped > 0, "schedule fires at 120pm");
    assert_eq!(stats.bad_dest, 0, "fault drops must not count as bad_dest");

    let json = machine.obs_report().expect("obs enabled").to_json();
    for needle in [
        "\"faults\": {\"dropped\": ",
        "\"duplicated\": ",
        "\"corrupted\": ",
        "\"stalls\": ",
        "\"delivery\": {\"accepted\": ",
        "\"retransmits\": ",
        "\"delivered_unique\": ",
        "\"abandoned\": ",
    ] {
        assert!(
            json.contains(needle),
            "tcni-trace/1 missing {needle}: {json}"
        );
    }
}

fn remote_read_machine(model: Model, mesh: bool, latency: u64, faulty_wrapper: bool) -> Machine {
    let mut b = MachineBuilder::new(2)
        .model(model)
        .program(0, remote_read::requester(model, NodeId::new(1)))
        .program(1, remote_read::server(model));
    b = if mesh {
        b.network_fabric(FabricConfig::new(2, 1))
    } else {
        b.network_ideal(latency)
    };
    if faulty_wrapper {
        // All rates zero: the wrapper must be an exact pass-through.
        b = b.network_fault(FaultConfig::uniform(0xDEAD, 0));
    }
    let mut machine = b.build();
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, 0xFEED_0042);
    machine
}

/// The disabled-path equivalence (satellite of the golden layer): a
/// zero-rate fault wrapper with the protocol off is bit-identical to the
/// plain machine on every §4 model, both fabrics — cycles, outcome,
/// registers, network counters, and the serialized `tcni-trace/1` report.
#[test]
fn zero_rate_faults_and_no_protocol_are_bit_identical_on_all_six_models() {
    check(
        "zero_rate_faults_and_no_protocol_are_bit_identical_on_all_six_models",
        24,
        |rng| {
            let model = *rng.pick(&Model::ALL_SIX);
            let mesh = rng.bool();
            let latency = rng.below(40);
            let budget = rng.range(4_000, 20_000);
            let ctx = format!("{model} mesh={mesh} latency={latency}");

            let mut plain = remote_read_machine(model, mesh, latency, false);
            let mut wrapped = remote_read_machine(model, mesh, latency, true);
            for machine in [&mut plain, &mut wrapped] {
                machine.enable_trace(32);
                machine.enable_obs(32);
            }

            let op = plain.run(budget);
            let ow = wrapped.run(budget);
            assert_eq!(op, ow, "{ctx} outcome");
            assert_eq!(op, RunOutcome::Quiescent, "{ctx} must finish");
            assert_eq!(plain.cycle(), wrapped.cycle(), "{ctx} machine cycle");
            assert_eq!(plain.net_stats(), wrapped.net_stats(), "{ctx} net stats");
            assert_eq!(
                wrapped.node(0).mem().peek(RESULT_ADDR),
                0xFEED_0042,
                "{ctx}: the protocol result must be unchanged"
            );
            for i in 0..2 {
                let (p, w) = (plain.node(i), wrapped.node(i));
                assert_eq!(p.cpu().cycle(), w.cpu().cycle(), "{ctx} node {i} cycles");
                assert_eq!(p.cpu().stats(), w.cpu().stats(), "{ctx} node {i} stats");
                for r in Reg::ALL {
                    assert_eq!(p.cpu().reg(r), w.cpu().reg(r), "{ctx} node {i} reg {r}");
                }
            }
            let (tp, tw) = (plain.trace().unwrap(), wrapped.trace().unwrap());
            assert_eq!(tp.dropped(), tw.dropped(), "{ctx} trace dropped");
            assert!(tp.events().eq(tw.events()), "{ctx} trace events");
            assert_eq!(
                plain.obs_report().unwrap().to_json(),
                wrapped.obs_report().unwrap().to_json(),
                "{ctx} tcni-trace/1 report"
            );
        },
    );
}
