//! Cross-validation of the two evaluation paths: the *analytic* model
//! (Table-1 costs, as Figure 12 uses them) against *direct* cycle simulation
//! of a request loop on the multi-node machine.
//!
//! A requester performs K serial remote reads. The marginal cycles per
//! round trip include a constant part (loop overhead + network latency) and
//! the message-handling part that Table 1 prices. Constants cancel in
//! *differences between models*, so the measured model-to-model deltas must
//! track the Table-1 deltas.

use tcni::core::mapping::{cmd_addr, gpr_alias, reg_addr, NI_WINDOW_BASE};
use tcni::core::{FeatureLevel, InterfaceReg, MsgType, NiCmd, NodeId};
use tcni::eval::table1::{ModelCosts, Table1};
use tcni::isa::{AluOp, Assembler, Cond, Program, Reg};
use tcni::sim::{MachineBuilder, Model, NiMapping};
use tcni_core::WireFormat;

const TABLE: u32 = 0x4000;
const READ_TYPE: u8 = 4;
const REMOTE_ADDR: u32 = 0x100;

fn ty(n: u8) -> MsgType {
    MsgType::new(n).unwrap()
}

fn off(addr: u32) -> i16 {
    (addr - NI_WINDOW_BASE) as i16
}

/// Requester: K serial remote reads (send, spin on dispatch, reply bumps the
/// loop); optimized models only — this test compares placements.
fn requester(model: Model, k: u16) -> Program {
    assert_eq!(model.level, FeatureLevel::Optimized);
    let build = |reply_ip: u32| {
        let mut a = Assembler::new();
        if model.mapping.is_memory_mapped() {
            a.li(Reg::R9, NI_WINDOW_BASE);
        }
        a.li(Reg::R10, TABLE);
        match model.mapping {
            NiMapping::RegisterFile => {
                a.mov(gpr_alias(InterfaceReg::IpBase), Reg::R10);
            }
            _ => {
                a.st(Reg::R10, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
            }
        }
        a.li(
            Reg::R2,
            NodeId::new(1).into_word_bits(WireFormat::Compact) | REMOTE_ADDR,
        );
        a.li(Reg::R3, 0x200);
        a.li(Reg::R5, reply_ip);
        a.ori(Reg::R7, Reg::R0, k); // remaining round trips
        a.label("issue");
        match model.mapping {
            NiMapping::RegisterFile => {
                a.mov(gpr_alias(InterfaceReg::O0), Reg::R2);
                a.mov(gpr_alias(InterfaceReg::O1), Reg::R3);
                a.mov_ni(
                    gpr_alias(InterfaceReg::O2),
                    Reg::R5,
                    NiCmd::send(ty(READ_TYPE)),
                );
            }
            _ => {
                a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::O0)));
                a.st(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::O1)));
                a.st(
                    Reg::R5,
                    Reg::R9,
                    off(cmd_addr(InterfaceReg::O2, NiCmd::send(ty(READ_TYPE)))),
                );
            }
        }
        a.label("dispatch");
        match model.mapping {
            NiMapping::RegisterFile => {
                a.jmp(gpr_alias(InterfaceReg::MsgIp));
                a.nop();
            }
            _ => {
                a.ld(Reg::R6, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
                a.jmp(Reg::R6);
                a.nop();
            }
        }
        a.br("dispatch");
        a.nop();
        a.org(TABLE); // idle: reply not here yet
        a.br("dispatch");
        a.nop();
        a.org(TABLE + 0x400);
        a.label("reply_handler");
        match model.mapping {
            NiMapping::RegisterFile => {
                a.st(gpr_alias(InterfaceReg::input(2)), Reg::R0, 0x80);
                a.mov_ni(Reg::R4, Reg::R4, NiCmd::next());
            }
            _ => {
                a.ld(
                    Reg::R8,
                    Reg::R9,
                    off(cmd_addr(InterfaceReg::I2, NiCmd::next())),
                );
                a.st(Reg::R8, Reg::R0, 0x80);
            }
        }
        a.alu(AluOp::Sub, Reg::R7, Reg::R7, 1u16);
        a.bcnd(Cond::Ne0, Reg::R7, "issue");
        a.nop();
        a.halt();
        a.assemble().expect("requester assembles")
    };
    let p1 = build(0);
    let ip = p1.resolve("reply_handler").unwrap();
    build(ip)
}

/// Server: serves Read requests forever (it is still spinning when the
/// machine's requester halts, which `run` treats as stopped-by-requester;
/// we bound with a cycle budget and inspect the requester).
fn server(model: Model) -> Program {
    assert_eq!(model.level, FeatureLevel::Optimized);
    let mut a = Assembler::new();
    if model.mapping.is_memory_mapped() {
        a.li(Reg::R9, NI_WINDOW_BASE);
    }
    a.li(Reg::R10, TABLE);
    match model.mapping {
        NiMapping::RegisterFile => {
            a.mov(gpr_alias(InterfaceReg::IpBase), Reg::R10);
        }
        _ => {
            a.st(Reg::R10, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
        }
    }
    a.label("dispatch");
    match model.mapping {
        NiMapping::RegisterFile => {
            a.jmp(gpr_alias(InterfaceReg::MsgIp));
            a.nop();
        }
        _ => {
            a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
            a.jmp(Reg::R3);
            a.nop();
        }
    }
    a.br("dispatch");
    a.nop();
    a.org(TABLE);
    a.br("dispatch");
    a.nop();
    a.org(TABLE + u32::from(READ_TYPE) * 16);
    match model.mapping {
        NiMapping::RegisterFile => {
            a.ld_r_ni(
                gpr_alias(InterfaceReg::O2),
                gpr_alias(InterfaceReg::input(0)),
                Reg::R0,
                NiCmd::reply(ty(0)).with_next(),
            );
            a.br("dispatch");
            a.nop();
        }
        _ => {
            a.ld(Reg::R4, Reg::R9, off(reg_addr(InterfaceReg::I0)));
            a.ld(Reg::R5, Reg::R4, 0);
            a.st(
                Reg::R5,
                Reg::R9,
                off(cmd_addr(InterfaceReg::O2, NiCmd::reply(ty(0)).with_next())),
            );
            a.br("dispatch");
            a.nop();
        }
    }
    a.assemble().expect("server assembles")
}

/// Cycles until the requester halts, for K round trips.
fn direct_cycles(model: Model, k: u16) -> u64 {
    let mut machine = MachineBuilder::new(2)
        .model(model)
        .program(0, requester(model, k))
        .program(1, server(model))
        .network_ideal(1)
        .build();
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, 0xABCD);
    let budget = 200 + u64::from(k) * 300;
    let _ = machine.run(budget);
    assert!(
        machine.node(0).is_stopped(),
        "{model}: requester must finish its {k} reads"
    );
    assert_eq!(machine.node(0).mem().peek(0x80), 0xABCD);
    assert_eq!(machine.node(1).ni().stats().receives, u64::from(k));
    machine.node(0).cpu().stats().cycles
}

/// The analytic per-round-trip message cost from Table 1: request sending +
/// server dispatch + Read processing + reply dispatch at the requester +
/// Send(1) processing.
fn analytic_per_trip(costs: &ModelCosts) -> f64 {
    costs.read.mid()
        + 2.0 * f64::from(costs.dispatch)
        + f64::from(costs.proc_read)
        + f64::from(costs.proc_send[1])
}

#[test]
fn model_deltas_match_table1_within_tolerance() {
    let table = Table1::measure();
    let k1 = 4u16;
    let k2 = 36u16;
    let trips = f64::from(k2 - k1);
    let optimized = [Model::ALL_SIX[0], Model::ALL_SIX[1], Model::ALL_SIX[2]];
    let mut marginal = Vec::new();
    for model in optimized {
        let c1 = direct_cycles(model, k1);
        let c2 = direct_cycles(model, k2);
        marginal.push((c2 - c1) as f64 / trips);
    }
    // Direct marginal cost per trip must *order* like the analytic model…
    assert!(
        marginal[0] < marginal[1] && marginal[1] <= marginal[2],
        "{marginal:?}"
    );
    // …and model-to-model deltas must track Table 1 within one poll period.
    // (The requester only observes the reply at poll-loop boundaries, and a
    // poll iteration itself is costlier off-chip — a real second-order
    // effect the per-message Table 1 deliberately does not price.)
    let poll_period = [4.0, 5.0, 8.0]; // reg / on-chip / off-chip loop cost
    for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let direct_delta = marginal[j] - marginal[i];
        let analytic_delta = analytic_per_trip(table.model(optimized[j]))
            - analytic_per_trip(table.model(optimized[i]));
        assert!(
            direct_delta >= analytic_delta - 2.0,
            "models {i}->{j}: direct Δ {direct_delta:.2} below analytic Δ {analytic_delta:.2}"
        );
        assert!(
            direct_delta <= analytic_delta + poll_period[j] + 1.0,
            "models {i}->{j}: direct Δ {direct_delta:.2} vs analytic Δ {analytic_delta:.2} + poll {:.0}\nmarginals {marginal:?}",
            poll_period[j]
        );
    }
}
