//! Cross-topology equivalence and routing-invariant properties — the pinning
//! layer for the [`Topology`] abstraction. Three families:
//!
//! * **Routing invariants**, checked exhaustively over every (src, dst) pair
//!   of representative mesh / torus / ring / fully-connected instances: each
//!   hop a route takes is a real link of the topology, the walk reaches the
//!   destination in exactly [`Topology::distance`] hops (minimality), and
//!   grid topologies obey the dimension-order discipline (once a route
//!   leaves the X dimension it never re-enters it) that makes the schedule
//!   deadlock-free.
//! * **Hot-set equivalence on every topology**: the active-channel frontier
//!   must be bit-identical to the dense scan — and conserve effort — on the
//!   torus, ring, and fully-connected fabrics exactly as on the mesh, across
//!   the six §4 models, E2E delivery on/off, and seeded fault schedules.
//! * **Sharded-cycle equivalence on every topology**: worker counts
//!   {2, 3, 8} must reproduce the serial cycle byte for byte on every
//!   observable surface, again across models × topologies × fault schedules.
//!
//! [`Topology`]: tcni::net::Topology
//! [`Topology::distance`]: tcni::net::Topology::distance

use tcni::core::NodeId;
use tcni::eval::handlers::remote_read::{self, REMOTE_ADDR, RESULT_ADDR};
use tcni::isa::Reg;
use tcni::net::{FaultConfig, Hop, Topology, TopologyKind};
use tcni::sim::{DeliveryConfig, Machine, MachineBuilder, Model, RunOutcome};
use tcni_check::check;

/// Representative instances: square and rectangular grids (odd and even
/// dimensions exercise both wrap tie-break arms), a ring, and the
/// fully-connected clique.
fn instances() -> Vec<TopologyKind> {
    vec![
        TopologyKind::mesh(4, 3),
        TopologyKind::mesh(1, 5),
        TopologyKind::torus(4, 4),
        TopologyKind::torus(5, 3),
        TopologyKind::torus(2, 6),
        TopologyKind::ring(2),
        TopologyKind::ring(9),
        TopologyKind::ring(12),
        TopologyKind::full(2),
        TopologyKind::full(8),
    ]
}

/// Walks the route from `src` to `dst`, asserting every hop is a real link,
/// and returns the hop count.
fn walk(topo: &TopologyKind, src: usize, dst: usize) -> usize {
    let mut at = src;
    let mut hops = 0;
    loop {
        match topo.route(at, dst) {
            Hop::Eject => {
                assert_eq!(at, dst, "{topo:?}: eject away from destination");
                return hops;
            }
            Hop::Port(p) => {
                assert!(p < topo.ports(), "{topo:?}: port {p} out of range");
                let next = topo.port_target(at, p);
                assert!(next < topo.nodes(), "{topo:?}: link target off-fabric");
                assert_ne!(next, at, "{topo:?}: self-loop link");
                at = next;
                hops += 1;
                assert!(
                    hops <= topo.nodes(),
                    "{topo:?}: route {src}->{dst} does not terminate"
                );
            }
        }
    }
}

#[test]
fn routes_are_real_links_and_minimal() {
    for topo in instances() {
        for src in 0..topo.nodes() {
            for dst in 0..topo.nodes() {
                let hops = walk(&topo, src, dst);
                assert_eq!(
                    hops,
                    topo.distance(src, dst),
                    "{topo:?}: route {src}->{dst} is not minimal"
                );
            }
        }
    }
}

#[test]
fn links_are_what_routes_traverse() {
    // Every link some route traverses is bidirectional in the fabric:
    // adjacent nodes are one hop apart in *both* directions, so backpressure
    // credits and reply traffic always have a same-length return path.
    // (Unused ports — a mesh edge's west port, the clique's self-port — are
    // deliberately outside the contract and never routed onto.)
    for topo in instances() {
        for src in 0..topo.nodes() {
            for dst in 0..topo.nodes() {
                let mut at = src;
                while let Hop::Port(p) = topo.route(at, dst) {
                    let next = topo.port_target(at, p);
                    assert_eq!(
                        topo.distance(next, at),
                        1,
                        "{topo:?}: traversed link {at}->{next} has no return path"
                    );
                    at = next;
                }
            }
        }
    }
}

#[test]
fn grid_routes_keep_dimension_order() {
    // The deadlock-freedom argument for the grid topologies is strict
    // dimension order: all X movement happens before any Y movement. The
    // mesh's X ports are {0, 1} and Y ports {2, 3}; the torus doubles each
    // for the dateline virtual channels (X: 0..4, Y: 4..8).
    for (topo, x_ports) in [
        (TopologyKind::mesh(4, 3), 2),
        (TopologyKind::mesh(5, 5), 2),
        (TopologyKind::torus(4, 4), 4),
        (TopologyKind::torus(5, 3), 4),
    ] {
        for src in 0..topo.nodes() {
            for dst in 0..topo.nodes() {
                let mut at = src;
                let mut seen_y = false;
                while let Hop::Port(p) = topo.route(at, dst) {
                    if p < x_ports {
                        assert!(!seen_y, "{topo:?}: route {src}->{dst} re-enters X after Y");
                    } else {
                        seen_y = true;
                    }
                    at = topo.port_target(at, p);
                }
            }
        }
    }
}

/// The §4 matrix config, as in `prop_hot_set`, with the fabric topology as
/// an explicit axis.
struct Config {
    model: Model,
    topo: TopologyKind,
    e2e: bool,
    fault: Option<(u64, u32)>,
    skip: bool,
}

const SECRET: u32 = 0xFEED_0042;

fn build(cfg: &Config, dense: bool) -> Machine {
    let mut b = MachineBuilder::new(2)
        .model(cfg.model)
        .program(0, remote_read::requester(cfg.model, NodeId::new(1)))
        .program(1, remote_read::server(cfg.model))
        .skip_ahead(cfg.skip)
        .dense_scan(dense)
        .topology(cfg.topo);
    if cfg.e2e {
        b = b.delivery(DeliveryConfig {
            window: 4,
            timeout: 24,
            retransmit_limit: 10_000,
        });
    }
    if let Some((seed, rate_pm)) = cfg.fault {
        b = b.network_fault(FaultConfig::uniform(seed, rate_pm));
    }
    let mut machine = b.build();
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
    machine
}

/// The two-node fabrics the equivalence sweeps draw from: every topology,
/// sized so both machine nodes exist (extra fabric slots stay idle, which
/// is itself a property worth pinning).
fn fabric_axis() -> [TopologyKind; 5] {
    [
        TopologyKind::mesh(2, 1),
        TopologyKind::torus(2, 2),
        TopologyKind::torus(3, 1),
        TopologyKind::ring(4),
        TopologyKind::full(3),
    ]
}

/// Every observable surface must match between two machines.
fn assert_machines_equal(a: &Machine, b: &Machine, ctx: &str) {
    assert_eq!(a.cycle(), b.cycle(), "{ctx} machine cycle");
    assert_eq!(a.net_stats(), b.net_stats(), "{ctx} network stats");
    assert_eq!(a.delivery_stats(), b.delivery_stats(), "{ctx} delivery");
    assert_eq!(a.skipped_cycles(), b.skipped_cycles(), "{ctx} fast-forward");
    for i in 0..2 {
        let (x, y) = (a.node(i), b.node(i));
        assert_eq!(x.cpu().cycle(), y.cpu().cycle(), "{ctx} node {i} cycles");
        assert_eq!(x.cpu().stats(), y.cpu().stats(), "{ctx} node {i} stats");
        for r in Reg::ALL {
            assert_eq!(x.cpu().reg(r), y.cpu().reg(r), "{ctx} node {i} reg {r}");
        }
    }
}

#[test]
fn hot_set_is_equivalent_on_every_topology() {
    check("hot_set_is_equivalent_on_every_topology", 48, |rng| {
        let cfg = Config {
            model: *rng.pick(&Model::ALL_SIX),
            topo: *rng.pick(&fabric_axis()),
            e2e: rng.bool(),
            fault: None,
            skip: rng.bool(),
        };
        let budget = rng.range(4_000, 20_000);
        let ctx = format!(
            "{} {:?} e2e={} skip={}",
            cfg.model, cfg.topo, cfg.e2e, cfg.skip
        );
        let mut hot = build(&cfg, false);
        let mut dense = build(&cfg, true);
        let oh = hot.run(budget);
        let od = dense.run(budget);
        assert_eq!(oh, od, "{ctx} outcome");
        assert_eq!(oh, RunOutcome::Quiescent, "{ctx} must finish in {budget}");
        assert_machines_equal(&hot, &dense, &ctx);
        assert_eq!(hot.node(0).mem().peek(RESULT_ADDR), SECRET, "{ctx}");

        // Effort conservation: the frontier may skip, never invent, work.
        let (sh, sd) = (hot.net_stats().scan, dense.net_stats().scan);
        assert_eq!(sd.skipped_work, 0, "{ctx} dense scan skips nothing");
        assert_eq!(
            sh.scanned_channels + sh.scanned_flows + sh.skipped_work,
            sd.scanned_channels + sd.scanned_flows,
            "{ctx} scanned + skipped must equal the dense cost"
        );
    });
}

#[test]
fn sharded_tick_is_equivalent_on_every_topology() {
    check("sharded_tick_is_equivalent_on_every_topology", 32, |rng| {
        let cfg = Config {
            model: *rng.pick(&Model::ALL_SIX),
            topo: *rng.pick(&fabric_axis()),
            e2e: true,
            fault: rng.bool().then(|| (rng.u64(), rng.range(20, 120) as u32)),
            skip: rng.bool(),
        };
        let budget = rng.range(8_000, 30_000);
        let ctx = format!(
            "{} {:?} fault={:?} skip={}",
            cfg.model, cfg.topo, cfg.fault, cfg.skip
        );
        let mut serial = build(&cfg, false);
        serial.set_par_threads(1);
        let baseline = serial.run(budget);
        for par in [2usize, 3, 8] {
            let mut sharded = build(&cfg, false);
            sharded.set_par_threads(par);
            let op = sharded.run(budget);
            assert_eq!(baseline, op, "{ctx} par={par} outcome");
            assert_machines_equal(&serial, &sharded, &format!("{ctx} par={par}"));
            assert_eq!(
                serial.net_stats().scan,
                sharded.net_stats().scan,
                "{ctx} par={par} scan meters byte-identical"
            );
        }
    });
}
