//! Cross-crate invariants of the measured evaluation: the measured Table 1
//! must satisfy every qualitative property the paper derives from it, and
//! key rows must match the published numbers exactly.

use tcni::cpu::TimingConfig;
use tcni::eval::paper;
use tcni::eval::table1::Table1;
use tcni::sim::Model;

fn measured() -> &'static Table1 {
    use std::sync::OnceLock;
    static T: OnceLock<Table1> = OnceLock::new();
    T.get_or_init(Table1::measure)
}

#[test]
fn dispatch_row_matches_the_paper_exactly() {
    let t = measured();
    let p = paper::published();
    for (i, (m, pub_m)) in t.models.iter().zip(p.iter()).enumerate() {
        assert_eq!(
            m.dispatch,
            pub_m.dispatch,
            "dispatch cost of {} must match the paper",
            Model::ALL_SIX[i]
        );
    }
}

#[test]
fn read_write_processing_match_the_paper_exactly() {
    let t = measured();
    let p = paper::published();
    for (i, (m, pub_m)) in t.models.iter().zip(p.iter()).enumerate() {
        assert_eq!(m.proc_read, pub_m.proc_read, "proc Read, model {i}");
        assert_eq!(m.proc_write, pub_m.proc_write, "proc Write, model {i}");
    }
}

#[test]
fn two_instruction_remote_read() {
    // §5: "a remote read request [can] be received, processed, and replied
    // to in a total of two RISC instructions" — dispatch 1 + processing 1.
    let opt_reg = &measured().models[0];
    assert_eq!(opt_reg.dispatch, 1);
    assert_eq!(opt_reg.proc_read, 1);
}

#[test]
fn optimization_never_hurts_and_placement_orders() {
    let t = measured();
    // Index layout: 0..3 optimized (reg, on, off), 3..6 basic.
    for (o, b) in [(0usize, 3usize), (1, 4), (2, 5)] {
        let (opt, basic) = (&t.models[o], &t.models[b]);
        assert!(opt.dispatch <= basic.dispatch);
        assert!(opt.proc_read <= basic.proc_read);
        assert!(opt.proc_pread_full <= basic.proc_pread_full);
        for k in 0..3 {
            assert!(opt.send[k].mid() <= basic.send[k].mid());
            assert!(opt.proc_send[k] <= basic.proc_send[k]);
        }
    }
    // Register ≤ on-chip ≤ off-chip within each level.
    for level in [0usize, 3] {
        let (r, on, off) = (&t.models[level], &t.models[level + 1], &t.models[level + 2]);
        assert!(r.dispatch <= on.dispatch && on.dispatch <= off.dispatch);
        assert!(r.proc_read <= on.proc_read && on.proc_read <= off.proc_read);
        assert!(
            r.proc_pwrite_deferred_base <= on.proc_pwrite_deferred_base
                && on.proc_pwrite_deferred_base <= off.proc_pwrite_deferred_base
        );
    }
}

#[test]
fn deferred_pwrite_is_linear_and_slopes_order() {
    // Table1::measure already asserts linearity internally (it fits n=1..3
    // and checks the third point); here we pin the slope ordering.
    let t = measured();
    for m in &t.models {
        assert!(
            m.proc_pwrite_deferred_slope >= 5,
            "a reader costs several cycles"
        );
        assert!(m.proc_pwrite_deferred_slope <= 10);
    }
}

#[test]
fn higher_offchip_latency_only_raises_offchip_cells() {
    let base = measured();
    let slow = Table1::measure_with(TimingConfig::new().with_offchip_load_extra(8));
    for i in [0usize, 1, 3, 4] {
        // register and on-chip models: unchanged
        assert_eq!(base.models[i], slow.models[i], "model {i} must not change");
    }
    for i in [2usize, 5] {
        assert!(
            slow.models[i].proc_read > base.models[i].proc_read,
            "off-chip model {i} must slow down"
        );
    }
}

#[test]
fn sending_ranges_only_on_register_mapping() {
    let t = measured();
    for (i, m) in t.models.iter().enumerate() {
        let is_reg = Model::ALL_SIX[i].mapping == tcni::sim::NiMapping::RegisterFile;
        for k in 0..3 {
            if !is_reg {
                assert_eq!(
                    m.send[k].min, m.send[k].max,
                    "memory-mapped costs are fixed"
                );
            }
        }
        if is_reg {
            // At least one kind should genuinely be a range (the compiler
            // freedom §4.1 describes).
            let any_range = m.send.iter().any(|c| c.min < c.max)
                || m.write.min < m.write.max
                || m.pwrite.min < m.pwrite.max;
            assert!(any_range, "register-mapped sending should show a range");
        }
    }
}
