//! Regression tests for machine-construction validation, notably the
//! node-id truncation bug family: node indices used to travel in `u8`
//! fields (fabric addressing, delivery-protocol headers), so a machine
//! with more than 256 nodes silently wrapped node ids. Destinations are
//! now carried in a versioned wire format — compact (8 address bits, the
//! paper's exact byte layout) or wide (16) — and the builder picks the
//! smallest format that fits, so 257 nodes *build* rather than error.
//! What remains rejected, with a typed [`BuildError`] from the fallible
//! constructors or a panic carrying the same message from the infallible
//! ones: node counts beyond the wide format's 65536-id address space, an
//! explicitly pinned format that is too small for the machine, and the
//! delivery protocol past its 32768-node flow-index ceiling.

use tcni::core::{CollectiveOp, WireFormat};
use tcni::net::{CombiningTree, InjectError, MeshConfig};
use tcni::sim::{BuildError, DeliveryConfig, MachineBuilder};

#[test]
fn more_than_65536_nodes_is_a_typed_error() {
    let err = MachineBuilder::try_new(65_537)
        .err()
        .expect("must be rejected");
    assert_eq!(err, BuildError::TooManyNodes { requested: 65_537 });
    assert!(
        err.to_string()
            .contains("NodeId address space is 65536 nodes"),
        "message names the invariant: {err}"
    );
}

#[test]
fn zero_nodes_is_a_typed_error() {
    let err = MachineBuilder::try_new(0).err().expect("must be rejected");
    assert_eq!(err, BuildError::NoNodes);
    assert!(err.to_string().contains("at least one node"), "{err}");
}

#[test]
fn the_compact_address_space_still_builds_compact() {
    // 256 nodes is the last compact size: every index fits 8 bits, and the
    // auto-selected format stays the paper's byte layout.
    let machine = MachineBuilder::try_new(256)
        .expect("256 nodes fit the compact address space")
        .try_build()
        .expect("buildable");
    assert_eq!(machine.node_count(), 256);
    assert_eq!(machine.wire_format(), WireFormat::Compact);
}

#[test]
fn past_the_compact_ceiling_builds_wide() {
    // The former ceiling: 257 nodes used to be TooManyNodes. Now the
    // builder widens the header instead.
    let machine = MachineBuilder::try_new(257)
        .expect("257 nodes fit the wide address space")
        .try_build()
        .expect("buildable");
    assert_eq!(machine.node_count(), 257);
    assert_eq!(machine.wire_format(), WireFormat::Wide);
}

#[test]
fn a_pinned_format_too_small_is_a_typed_error() {
    // Pinning compact promises the paper's byte layout; silently widening
    // would break that promise, so the builder refuses.
    let err = MachineBuilder::try_new(257)
        .expect("257 nodes fit the wide address space")
        .wire_format(WireFormat::Compact)
        .try_build()
        .err()
        .expect("compact cannot address 257 nodes");
    assert_eq!(
        err,
        BuildError::FormatTooSmall {
            format: WireFormat::Compact,
            nodes: 257
        }
    );
    assert!(
        err.to_string()
            .contains("compact wire format addresses 256 nodes"),
        "{err}"
    );
}

#[test]
fn a_pinned_wide_format_on_a_small_machine_is_honoured() {
    let machine = MachineBuilder::try_new(4)
        .expect("4 nodes are fine")
        .wire_format(WireFormat::Wide)
        .try_build()
        .expect("wide is never too small");
    assert_eq!(machine.wire_format(), WireFormat::Wide);
}

#[test]
fn delivery_past_its_flow_ceiling_is_a_typed_error() {
    let err = MachineBuilder::try_new(32_769)
        .expect("32769 nodes fit the wide address space")
        .delivery(DeliveryConfig::default())
        .try_build()
        .err()
        .expect("delivery flow state caps at 32768 nodes");
    assert_eq!(err, BuildError::DeliveryTooLarge { nodes: 32_769 });
    assert!(
        err.to_string().contains("at most 32768 nodes"),
        "message names the ceiling: {err}"
    );
}

#[test]
fn undersized_mesh_is_a_typed_error() {
    let err = MachineBuilder::try_new(9)
        .expect("9 nodes are fine")
        .network_mesh(MeshConfig::new(2, 2))
        .try_build()
        .err()
        .expect("4-slot mesh cannot host 9 nodes");
    assert_eq!(
        err,
        BuildError::MeshTooSmall {
            width: 2,
            height: 2,
            nodes: 9
        }
    );
    assert!(err.to_string().contains("smaller than node count"), "{err}");
}

#[test]
#[should_panic(expected = "NodeId address space is 65536 nodes")]
fn the_panicking_constructor_reports_the_same_invariant() {
    let _ = MachineBuilder::new(70_000);
}

#[test]
fn a_mismatched_combining_tree_is_a_typed_error() {
    // The tree's index space is the collective wire-address space; letting
    // a 4-node tree onto a 6-node machine would leave two nodes silently
    // unreachable by collectives.
    let err = MachineBuilder::try_new(6)
        .expect("6 nodes are fine")
        .collective(CombiningTree::star(4))
        .try_build()
        .err()
        .expect("a 4-node tree cannot span 6 nodes");
    assert_eq!(
        err,
        BuildError::CollectiveTreeMismatch {
            tree_nodes: 4,
            nodes: 6
        }
    );
    assert!(
        err.to_string()
            .contains("combining tree spans 4 nodes but the machine has 6"),
        "{err}"
    );
}

#[test]
fn a_contribution_outside_the_member_set_is_a_typed_error() {
    // A partial-member tree: node 3 exists on the machine and the tree's
    // index space, but the tree does not span it. Contributing from it is
    // not retryable — the typed error says so, and the engine counts it.
    let mut machine = MachineBuilder::try_new(4)
        .expect("4 nodes are fine")
        .collective(CombiningTree::star_of(4, &[0, 1, 2]))
        .try_build()
        .expect("a partial member set is legal");
    let err = machine
        .coll_start(3, CollectiveOp::Barrier, 0)
        .err()
        .expect("node 3 is not a participant");
    assert!(matches!(err, InjectError::NotParticipant(_)), "{err:?}");
    assert!(!err.is_retryable(), "futile to retry");
    assert_eq!(machine.collective_stats().unwrap().not_participant, 1);

    // Members are unaffected.
    machine
        .coll_start(0, CollectiveOp::Barrier, 0)
        .expect("node 0 is a member");
}
