//! Regression tests for machine-construction validation, notably the
//! node-id truncation bug: node indices travel in `u8` fields (fabric
//! addressing, delivery-protocol headers), so a machine with more than 256
//! nodes used to wrap node ids silently. The builder now rejects it — with
//! a typed [`BuildError`] from the fallible constructors, or a panic
//! carrying the same message from the infallible ones.

use tcni::net::MeshConfig;
use tcni::sim::{BuildError, MachineBuilder};

#[test]
fn more_than_256_nodes_is_a_typed_error() {
    let err = MachineBuilder::try_new(257)
        .err()
        .expect("must be rejected");
    assert_eq!(err, BuildError::TooManyNodes { requested: 257 });
    assert!(
        err.to_string()
            .contains("NodeId address space is 256 nodes"),
        "message names the invariant: {err}"
    );
}

#[test]
fn zero_nodes_is_a_typed_error() {
    let err = MachineBuilder::try_new(0).err().expect("must be rejected");
    assert_eq!(err, BuildError::NoNodes);
    assert!(err.to_string().contains("at least one node"), "{err}");
}

#[test]
fn the_full_address_space_still_builds() {
    // 256 nodes is the last valid size: every index round-trips through u8.
    let machine = MachineBuilder::try_new(256)
        .expect("256 nodes fit the address space")
        .try_build()
        .expect("buildable");
    assert_eq!(machine.node_count(), 256);
}

#[test]
fn undersized_mesh_is_a_typed_error() {
    let err = MachineBuilder::try_new(9)
        .expect("9 nodes are fine")
        .network_mesh(MeshConfig::new(2, 2))
        .try_build()
        .err()
        .expect("4-slot mesh cannot host 9 nodes");
    assert_eq!(
        err,
        BuildError::MeshTooSmall {
            width: 2,
            height: 2,
            nodes: 9
        }
    );
    assert!(err.to_string().contains("smaller than node count"), "{err}");
}

#[test]
#[should_panic(expected = "NodeId address space is 256 nodes")]
fn the_panicking_constructor_reports_the_same_invariant() {
    let _ = MachineBuilder::new(300);
}
