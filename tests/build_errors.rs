//! Regression tests for machine-construction validation, notably the
//! node-id truncation bug family: node indices used to travel in `u8`
//! fields (fabric addressing, delivery-protocol headers), so a machine
//! with more than 256 nodes silently wrapped node ids. Destinations are
//! now carried in a versioned wire format — compact (8 address bits, the
//! paper's exact byte layout) or wide (16) — and the builder picks the
//! smallest format that fits, so 257 nodes *build* rather than error.
//! What remains rejected, with a typed [`BuildError`] from the fallible
//! constructors or a panic carrying the same message from the infallible
//! ones: node counts beyond the wide format's 65536-id address space, an
//! explicitly pinned format that is too small for the machine, the
//! delivery protocol's *dense* cross-check flow tables past their
//! 32768-node ceiling (the default sparse store scales to the full
//! address space and is exercised below), fabrics
//! (of any topology) with fewer slots than the machine has nodes, the
//! fully-connected fabric past its quadratic-wiring ceiling, and
//! combining trees whose size or geometry does not fit the configured
//! fabric.

use tcni::core::{CollectiveOp, WireFormat};
use tcni::net::{CombiningTree, FabricConfig, FullyConnected, InjectError, TopologyKind};
use tcni::sim::{BuildError, DeliveryConfig, MachineBuilder, TreeMismatch};

#[test]
fn more_than_65536_nodes_is_a_typed_error() {
    let err = MachineBuilder::try_new(65_537)
        .err()
        .expect("must be rejected");
    assert_eq!(err, BuildError::TooManyNodes { requested: 65_537 });
    assert!(
        err.to_string()
            .contains("NodeId address space is 65536 nodes"),
        "message names the invariant: {err}"
    );
}

#[test]
fn zero_nodes_is_a_typed_error() {
    let err = MachineBuilder::try_new(0).err().expect("must be rejected");
    assert_eq!(err, BuildError::NoNodes);
    assert!(err.to_string().contains("at least one node"), "{err}");
}

#[test]
fn the_compact_address_space_still_builds_compact() {
    // 256 nodes is the last compact size: every index fits 8 bits, and the
    // auto-selected format stays the paper's byte layout.
    let machine = MachineBuilder::try_new(256)
        .expect("256 nodes fit the compact address space")
        .try_build()
        .expect("buildable");
    assert_eq!(machine.node_count(), 256);
    assert_eq!(machine.wire_format(), WireFormat::Compact);
}

#[test]
fn past_the_compact_ceiling_builds_wide() {
    // The former ceiling: 257 nodes used to be TooManyNodes. Now the
    // builder widens the header instead.
    let machine = MachineBuilder::try_new(257)
        .expect("257 nodes fit the wide address space")
        .try_build()
        .expect("buildable");
    assert_eq!(machine.node_count(), 257);
    assert_eq!(machine.wire_format(), WireFormat::Wide);
}

#[test]
fn a_pinned_format_too_small_is_a_typed_error() {
    // Pinning compact promises the paper's byte layout; silently widening
    // would break that promise, so the builder refuses.
    let err = MachineBuilder::try_new(257)
        .expect("257 nodes fit the wide address space")
        .wire_format(WireFormat::Compact)
        .try_build()
        .err()
        .expect("compact cannot address 257 nodes");
    assert_eq!(
        err,
        BuildError::FormatTooSmall {
            format: WireFormat::Compact,
            nodes: 257
        }
    );
    assert!(
        err.to_string()
            .contains("compact wire format addresses 256 nodes"),
        "{err}"
    );
}

#[test]
fn a_pinned_wide_format_on_a_small_machine_is_honoured() {
    let machine = MachineBuilder::try_new(4)
        .expect("4 nodes are fine")
        .wire_format(WireFormat::Wide)
        .try_build()
        .expect("wide is never too small");
    assert_eq!(machine.wire_format(), WireFormat::Wide);
}

#[test]
fn delivery_past_the_dense_ceiling_builds_sparse() {
    // The former ceiling: 32769 delivery nodes used to be DeliveryTooLarge.
    // The default sparse flow store keys state by active (src, dst) pair, so
    // the whole wide address space builds. Tiny per-node memory keeps the
    // 32769-node machine cheap to construct.
    let machine = MachineBuilder::try_new(32_769)
        .expect("32769 nodes fit the wide address space")
        .memory_bytes(64)
        .delivery(DeliveryConfig::default())
        .try_build()
        .expect("sparse flow state scales to the full address space");
    assert_eq!(machine.node_count(), 32_769);
    assert_eq!(machine.wire_format(), WireFormat::Wide);
}

#[test]
fn dense_flow_tables_past_their_ceiling_are_a_typed_error() {
    // The dense cross-check layout still indexes flows by src * nodes + dst
    // in u32, so opting into it keeps the old 32768-node ceiling.
    let err = MachineBuilder::try_new(32_769)
        .expect("32769 nodes fit the wide address space")
        .memory_bytes(64)
        .delivery(DeliveryConfig::default())
        .dense_flows(true)
        .try_build()
        .err()
        .expect("dense flow tables cap at 32768 nodes");
    assert_eq!(err, BuildError::DeliveryTooLarge { nodes: 32_769 });
    assert!(
        err.to_string().contains("at most 32768 nodes"),
        "message names the ceiling: {err}"
    );
}

#[test]
fn undersized_mesh_is_a_typed_error() {
    let err = MachineBuilder::try_new(9)
        .expect("9 nodes are fine")
        .network_fabric(FabricConfig::new(2, 2))
        .try_build()
        .err()
        .expect("4-slot mesh cannot host 9 nodes");
    assert_eq!(
        err,
        BuildError::FabricTooSmall {
            topo: "mesh",
            fabric_nodes: 4,
            nodes: 9
        }
    );
    assert!(err.to_string().contains("smaller than node count"), "{err}");
}

#[test]
fn undersized_fabrics_of_every_topology_are_typed_errors() {
    // The same slot-count validation holds on every topology — a ring or
    // torus workload sized for the wrong machine fails construction, it
    // does not wrap addresses or panic.
    for (topo, name, slots) in [
        (TopologyKind::torus(2, 3), "torus", 6),
        (TopologyKind::ring(5), "ring", 5),
        (TopologyKind::full(7), "full", 7),
    ] {
        let err = MachineBuilder::try_new(9)
            .expect("9 nodes are fine")
            .topology(topo)
            .try_build()
            .err()
            .expect("a smaller fabric cannot host 9 nodes");
        assert_eq!(
            err,
            BuildError::FabricTooSmall {
                topo: name,
                fabric_nodes: slots,
                nodes: 9
            }
        );
        assert!(err.to_string().contains("smaller than node count"), "{err}");
    }
}

#[test]
fn an_oversized_fully_connected_fabric_is_a_typed_error() {
    // Fully-connected wiring is quadratic in the node count, so the
    // topology carries an explicit ceiling; exceeding it is a typed error
    // raised before the channel table would be allocated.
    let too_many = FullyConnected::MAX_NODES + 1;
    let err = MachineBuilder::try_new(16)
        .expect("16 nodes are fine")
        .topology(TopologyKind::full(too_many))
        .try_build()
        .err()
        .expect("the fully-connected fabric has a scaling ceiling");
    assert_eq!(
        err,
        BuildError::FabricTooLarge {
            topo: "full",
            nodes: too_many,
            max: FullyConnected::MAX_NODES
        }
    );
    assert!(err.to_string().contains("scales to at most"), "{err}");
}

#[test]
fn a_grid_tree_on_a_ring_fabric_is_a_typed_shape_error() {
    // A mesh-shaped combining tree assumes row/column links a ring does
    // not have; mounting it used to be representable (and silently wrong),
    // now the geometry mismatch is a typed error.
    let err = MachineBuilder::try_new(8)
        .expect("8 nodes are fine")
        .topology(TopologyKind::ring(8))
        .collective(CombiningTree::mesh(4, 2, 2))
        .try_build()
        .err()
        .expect("a grid tree cannot embed in a ring");
    assert_eq!(
        err,
        BuildError::CollectiveTreeMismatch(TreeMismatch::Shape {
            tree: "mesh grid",
            fabric: "ring"
        })
    );
    assert!(err.to_string().contains("cannot embed"), "{err}");
}

#[test]
fn a_torus_tree_on_a_mesh_fabric_is_a_typed_shape_error() {
    // The torus tree's wrap-aligned edges need wrap links; a mesh of the
    // same dimensions cannot carry them.
    let err = MachineBuilder::try_new(8)
        .expect("8 nodes are fine")
        .network_fabric(FabricConfig::new(4, 2))
        .collective(CombiningTree::torus(4, 2, 2))
        .try_build()
        .err()
        .expect("wrap edges need a torus");
    assert_eq!(
        err,
        BuildError::CollectiveTreeMismatch(TreeMismatch::Shape {
            tree: "torus grid",
            fabric: "mesh"
        })
    );

    // The reverse direction is fine: a torus carries every mesh link, and
    // stars are geometry-free, so both build on a torus.
    MachineBuilder::try_new(8)
        .expect("8 nodes are fine")
        .topology(TopologyKind::torus(4, 2))
        .collective(CombiningTree::mesh(4, 2, 2))
        .try_build()
        .expect("mesh trees embed in a same-size torus");
    MachineBuilder::try_new(8)
        .expect("8 nodes are fine")
        .topology(TopologyKind::ring(8))
        .collective(CombiningTree::star(8))
        .try_build()
        .expect("stars embed everywhere");
}

#[test]
#[should_panic(expected = "NodeId address space is 65536 nodes")]
fn the_panicking_constructor_reports_the_same_invariant() {
    let _ = MachineBuilder::new(70_000);
}

#[test]
fn a_mismatched_combining_tree_is_a_typed_error() {
    // The tree's index space is the collective wire-address space; letting
    // a 4-node tree onto a 6-node machine would leave two nodes silently
    // unreachable by collectives.
    let err = MachineBuilder::try_new(6)
        .expect("6 nodes are fine")
        .collective(CombiningTree::star(4))
        .try_build()
        .err()
        .expect("a 4-node tree cannot span 6 nodes");
    assert_eq!(
        err,
        BuildError::CollectiveTreeMismatch(TreeMismatch::Size {
            tree_nodes: 4,
            nodes: 6
        })
    );
    assert!(
        err.to_string()
            .contains("combining tree spans 4 nodes but the machine has 6"),
        "{err}"
    );
}

#[test]
fn a_contribution_outside_the_member_set_is_a_typed_error() {
    // A partial-member tree: node 3 exists on the machine and the tree's
    // index space, but the tree does not span it. Contributing from it is
    // not retryable — the typed error says so, and the engine counts it.
    let mut machine = MachineBuilder::try_new(4)
        .expect("4 nodes are fine")
        .collective(CombiningTree::star_of(4, &[0, 1, 2]))
        .try_build()
        .expect("a partial member set is legal");
    let err = machine
        .coll_start(3, CollectiveOp::Barrier, 0)
        .err()
        .expect("node 3 is not a participant");
    assert!(matches!(err, InjectError::NotParticipant(_)), "{err:?}");
    assert!(!err.is_retryable(), "futile to retry");
    assert_eq!(machine.collective_stats().unwrap().not_participant, 1);

    // Members are unaffected.
    machine
        .coll_start(0, CollectiveOp::Barrier, 0)
        .expect("node 0 is a member");
}
