//! Randomized fast-forward equivalence across the full §4 matrix: the
//! remote-read protocol runs on every one of the six models, over both
//! fabrics and arbitrary latencies, and the machine with the quiescence
//! fast-forward enabled must be bit-identical to the naive loop — registers,
//! memory result, per-node cycles, statistics, and network counters.
//!
//! The sim-crate test `prop_fast_forward.rs` drives the skip paths hard with
//! purpose-built stall workloads; this test establishes that no model/fabric
//! combination behaves differently when the optimization is armed.

use tcni::core::NodeId;
use tcni::eval::handlers::remote_read::{self, REMOTE_ADDR, RESULT_ADDR};
use tcni::isa::Reg;
use tcni::net::FabricConfig;
use tcni::sim::{Machine, MachineBuilder, Model, RunOutcome};
use tcni_check::check;

const SECRET: u32 = 0xFEED_0042;

fn build(model: Model, mesh: bool, latency: u64, skip: bool) -> Machine {
    let b = MachineBuilder::new(2)
        .model(model)
        .program(0, remote_read::requester(model, NodeId::new(1)))
        .program(1, remote_read::server(model))
        .skip_ahead(skip);
    let mut machine = if mesh {
        b.network_fabric(FabricConfig::new(2, 1)).build()
    } else {
        b.network_ideal(latency).build()
    };
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
    machine
}

#[test]
fn remote_read_is_equivalent_on_all_six_models() {
    check("remote_read_is_equivalent_on_all_six_models", 48, |rng| {
        let model = *rng.pick(&Model::ALL_SIX);
        let mesh = rng.bool();
        let latency = rng.below(80);
        let budget = rng.range(4_000, 20_000);

        let mut fast = build(model, mesh, latency, true);
        let mut slow = build(model, mesh, latency, false);
        let of = fast.run(budget);
        let os = slow.run(budget);

        assert_eq!(of, os, "{model} mesh={mesh} latency={latency}");
        assert_eq!(
            of,
            RunOutcome::Quiescent,
            "{model} must finish in budget {budget}"
        );
        assert_eq!(fast.cycle(), slow.cycle(), "{model} machine cycle");
        assert_eq!(fast.net_stats(), slow.net_stats(), "{model} network stats");
        assert_eq!(
            fast.node(0).mem().peek(RESULT_ADDR),
            SECRET,
            "{model}: requester must observe the remote value"
        );
        assert_eq!(slow.node(0).mem().peek(RESULT_ADDR), SECRET);
        for i in 0..2 {
            let (f, s) = (fast.node(i), slow.node(i));
            assert_eq!(f.cpu().cycle(), s.cpu().cycle(), "{model} node {i} cycles");
            assert_eq!(f.cpu().stats(), s.cpu().stats(), "{model} node {i} stats");
            for r in Reg::ALL {
                assert_eq!(f.cpu().reg(r), s.cpu().reg(r), "{model} node {i} reg {r}");
            }
        }
    });
}

/// The observability subsystem must be invisible to the fast-forward
/// optimization: with tracing and message-lifecycle spans enabled, the
/// skip-ahead machine must emit bit-identical trace events (including the
/// ring-buffer dropped count) and a byte-identical `tcni-trace/1` report.
/// Instrumentation must also leave the simulation itself untouched — an
/// uninstrumented machine reaches the same cycle with the same counters.
#[test]
fn trace_and_obs_are_identical_under_fast_forward() {
    check(
        "trace_and_obs_are_identical_under_fast_forward",
        32,
        |rng| {
            let model = *rng.pick(&Model::ALL_SIX);
            let mesh = rng.bool();
            let latency = rng.below(80);
            let budget = rng.range(4_000, 20_000);
            // Small capacities force the trace/span ring buffers to wrap, so the
            // dropped counters are exercised too.
            let capacity = rng.range(1, 24) as usize;

            let mut fast = build(model, mesh, latency, true);
            let mut slow = build(model, mesh, latency, false);
            for machine in [&mut fast, &mut slow] {
                machine.enable_trace(capacity);
                machine.enable_obs(capacity);
            }
            let ctx = format!("{model} mesh={mesh} latency={latency} capacity={capacity}");
            assert_eq!(fast.run(budget), slow.run(budget), "{ctx}");
            assert_eq!(fast.cycle(), slow.cycle(), "{ctx} machine cycle");

            let (tf, ts) = (fast.trace().unwrap(), slow.trace().unwrap());
            assert_eq!(tf.dropped(), ts.dropped(), "{ctx} trace dropped count");
            assert!(tf.events().eq(ts.events()), "{ctx} trace events");

            let (rf, rs) = (fast.obs_report().unwrap(), slow.obs_report().unwrap());
            assert_eq!(rf.to_json(), rs.to_json(), "{ctx} tcni-trace/1 report");

            // Instrumentation is observation-only: a machine without it reaches
            // the same cycle with the same architectural state and counters.
            let mut plain = build(model, mesh, latency, true);
            plain.run(budget);
            assert_eq!(plain.cycle(), fast.cycle(), "{ctx} obs changed timing");
            assert_eq!(
                plain.net_stats(),
                fast.net_stats(),
                "{ctx} obs changed net stats"
            );
            for i in 0..2 {
                assert_eq!(
                    plain.node(i).cpu().stats(),
                    fast.node(i).cpu().stats(),
                    "{ctx} obs changed node {i} stats"
                );
            }
        },
    );
}
