//! Golden-artifact regression tests: the regenerated paper artifacts —
//! the Table 1 grid, the Figure 12 panels, and a small `tcni-load/1`
//! sweep — are pinned byte-for-byte against snapshots in `tests/golden/`.
//!
//! A silent regression in any of these numbers used to pass tier-1; now it
//! fails here with a diff. The snapshots were taken from the fault-free
//! models, so they double as the guarantee that the fault-injection layer
//! and the delivery protocol are invisible when disabled.
//!
//! ## Updating a snapshot (the bless workflow)
//!
//! When an intentional change moves an artifact, regenerate the snapshots
//! and commit the diff alongside the change that explains it:
//!
//! ```text
//! TCNI_BLESS=1 cargo test --test golden_artifacts
//! git diff tests/golden/   # review: every changed byte must be intended
//! ```
//!
//! Blessing rewrites only the files the tests exercise; never edit the
//! snapshots by hand.

use std::fmt::Write as _;
use std::path::PathBuf;

use tcni::core::CollectiveOp;
use tcni::eval::figure12::Figure12;
use tcni::eval::paper;
use tcni::eval::table1::Table1;
use tcni::sim::Model;
use tcni::tam::programs;
use tcni::workload::{
    run_coll_sweep, run_open_curve, CollReport, CollStormConfig, Fabric, LoadReport, Pattern,
    SweepConfig, Topology,
};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the named snapshot, or rewrites the snapshot
/// when `TCNI_BLESS` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("TCNI_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("bless golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             generate it with: TCNI_BLESS=1 cargo test --test golden_artifacts",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first diverging line so the failure is actionable
        // without an external diff tool.
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or(expected.lines().count().min(actual.lines().count()), |i| i);
        panic!(
            "artifact {name} diverged from its golden snapshot at line {}.\n\
             expected: {:?}\n\
             actual:   {:?}\n\
             If the change is intentional, re-bless with\n\
             TCNI_BLESS=1 cargo test --test golden_artifacts\n\
             and commit the reviewed tests/golden/ diff.",
            line + 1,
            expected.lines().nth(line).unwrap_or("<eof>"),
            actual.lines().nth(line).unwrap_or("<eof>"),
        );
    }
}

/// The Table 1 grid: the measured table next to the published one. Pinning
/// both means any drift in the measured handler costs — or an accidental
/// edit to the transcribed paper numbers — fails the build.
#[test]
fn golden_table1() {
    let measured = Table1::measure();
    let published = Table1 {
        timing: tcni::cpu::TimingConfig::new(),
        models: paper::published(),
    };
    let mut out = String::new();
    let _ = writeln!(out, "== Table 1, measured ==\n");
    let _ = writeln!(out, "{measured}");
    let _ = writeln!(out, "== Table 1, as published (Henry & Joerg 1992) ==\n");
    let _ = write!(out, "{published}");
    assert_golden("table1.txt", &out);
}

/// The Figure 12 panels (measured costs) for both paper workloads and the
/// two extra programs, exactly as the `figure12` binary renders them.
#[test]
fn golden_figure12() {
    let costs = Table1::measure().models;
    let mut out = String::new();

    let matmul = programs::matmul::run(100, 64).expect("matmul runs");
    let fig = Figure12::from_counts("100×100 Matrix Multiply", matmul.counts, &costs);
    let _ = writeln!(out, "{fig}\n{}", fig.ascii_bars(64));

    let gamteb = programs::gamteb::run(16, 64, 0x6A3).expect("gamteb runs");
    let fig = Figure12::from_counts("16 Gamteb", gamteb.counts, &costs);
    let _ = writeln!(out, "{fig}\n{}", fig.ascii_bars(64));

    let fib = programs::fib::run(18, 64).expect("fib runs");
    let _ = writeln!(
        out,
        "{}",
        Figure12::from_counts("fib 18 (extra program)", fib.counts, &costs)
    );

    let nqueens = programs::nqueens::run(8, 64).expect("nqueens runs");
    let _ = write!(
        out,
        "{}",
        Figure12::from_counts("8-queens (extra program)", nqueens.counts, &costs)
    );
    assert_golden("figure12.txt", &out);
}

/// A small fault-free offered-load sweep, pinned as the serialized
/// `tcni-load/1` artifact: the whole loadgen pipeline (injectors, windows,
/// percentiles, saturation rule, JSON layout) in one byte-exact snapshot.
#[test]
fn golden_loadgen() {
    let mut sweep = SweepConfig::new(Topology::new(2, 2));
    sweep.warmup = 500;
    sweep.measure = 1500;
    sweep.samples = 4;
    let rates = vec![100, 400];
    let mut curves = Vec::new();
    for model in [Model::ALL_SIX[0], Model::ALL_SIX[3]] {
        for fabric in Fabric::BOTH {
            curves.push(run_open_curve(
                model,
                fabric,
                Pattern::Uniform,
                &rates,
                &sweep,
            ));
        }
    }
    let report = LoadReport {
        topo: sweep.topo,
        seed: sweep.seed,
        warmup: sweep.warmup,
        measure: sweep.measure,
        rates_pm: rates,
        windows: Vec::new(),
        fault_rates_pm: Vec::new(),
        curves,
    };
    assert_golden("loadgen.json", &report.to_json());
}

/// The topology sensitivity goldens: the same paper-scale 16×16 machine on
/// the wrap-around torus and on the 256-node ring, pinned as serialized
/// `tcni-load/1` artifacts. Together with `golden_loadgen` (mesh + ideal)
/// they pin "bit-identical at any thread count, dense vs hot-set, on every
/// topology": ci.sh reruns all of them at `TCNI_THREADS=1` and `=4` and the
/// bytes must not move.
#[test]
fn golden_loadgen_torus_16x16() {
    let mut sweep = SweepConfig::new(Topology::new(16, 16));
    sweep.warmup = 200;
    sweep.measure = 800;
    sweep.samples = 4;
    let rates = vec![5, 20];
    let curves = vec![run_open_curve(
        Model::ALL_SIX[3],
        Fabric::Torus,
        Pattern::Uniform,
        &rates,
        &sweep,
    )];
    let report = LoadReport {
        topo: sweep.topo,
        seed: sweep.seed,
        warmup: sweep.warmup,
        measure: sweep.measure,
        rates_pm: rates,
        windows: Vec::new(),
        fault_rates_pm: Vec::new(),
        curves,
    };
    assert_golden("loadgen_torus_16x16.json", &report.to_json());
}

/// The ring point of the topology golden suite (see
/// [`golden_loadgen_torus_16x16`]): 256 nodes on a bidirectional ring is
/// the high-diameter extreme of the topology axis.
#[test]
fn golden_loadgen_ring_16x16() {
    let mut sweep = SweepConfig::new(Topology::new(16, 16));
    sweep.warmup = 200;
    sweep.measure = 800;
    sweep.samples = 4;
    let rates = vec![5];
    let curves = vec![run_open_curve(
        Model::ALL_SIX[3],
        Fabric::Ring,
        Pattern::Uniform,
        &rates,
        &sweep,
    )];
    let report = LoadReport {
        topo: sweep.topo,
        seed: sweep.seed,
        warmup: sweep.warmup,
        measure: sweep.measure,
        rates_pm: rates,
        windows: Vec::new(),
        fault_rates_pm: Vec::new(),
        curves,
    };
    assert_golden("loadgen_ring_16x16.json", &report.to_json());
}

/// The paper-scale collective comparison, pinned as the serialized
/// `tcni-coll/1` artifact: NIC combining vs the flat software emulation for
/// barrier and reduce on the 16×16 mesh. Every latency, occupancy, and
/// engine counter is byte-exact — and because the machine shards its cycle
/// across `TCNI_THREADS` workers, re-running this test at different thread
/// counts doubles as the determinism check for the collective subsystem
/// (ci.sh runs it at 1 and 4).
#[test]
fn golden_collective() {
    let mut cfg = CollStormConfig::new(Topology::new(16, 16));
    cfg.rounds = 4;
    let ops = [CollectiveOp::Barrier, CollectiveOp::Sum];
    let rates = vec![0, 200];
    let points = run_coll_sweep(&ops, &rates, &cfg);
    let report = CollReport {
        config: cfg,
        rates_pm: rates,
        points,
    };
    assert_golden("collective_16x16.json", &report.to_json());
}
