//! Experiment E7 across the whole matrix: the remote-read protocol runs
//! correctly end-to-end on every one of the six §4 models, and the costs
//! fall in the order the paper predicts.

use tcni::core::NodeId;
use tcni::eval::handlers::remote_read::{self, REMOTE_ADDR, RESULT_ADDR};
use tcni::sim::{MachineBuilder, Model, RunOutcome};

const SECRET: u32 = 0xFEED_0042;

fn run_model(model: Model) -> u64 {
    let mut machine = MachineBuilder::new(2)
        .model(model)
        .program(0, remote_read::requester(model, NodeId::new(1)))
        .program(1, remote_read::server(model))
        .network_ideal(1)
        .build();
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
    let outcome = machine.run(10_000);
    assert_eq!(outcome, RunOutcome::Quiescent, "{model}: {outcome:?}");
    assert_eq!(
        machine.node(0).mem().peek(RESULT_ADDR),
        SECRET,
        "{model}: requester must observe the remote value"
    );
    // Exactly one request and one reply crossed the network.
    assert_eq!(machine.net_stats().delivered, 2, "{model}");
    machine.cycle()
}

#[test]
fn every_model_serves_a_remote_read() {
    for model in Model::ALL_SIX {
        run_model(model);
    }
}

#[test]
fn completion_time_orderings() {
    let cycles: Vec<u64> = Model::ALL_SIX.iter().map(|m| run_model(*m)).collect();
    // Within each level: register ≤ on-chip ≤ off-chip.
    assert!(
        cycles[0] <= cycles[1] && cycles[1] <= cycles[2],
        "{cycles:?}"
    );
    assert!(
        cycles[3] <= cycles[4] && cycles[4] <= cycles[5],
        "{cycles:?}"
    );
    // Optimization beats placement pairwise.
    for i in 0..3 {
        assert!(cycles[i] < cycles[i + 3], "{cycles:?}");
    }
    // The full §4 crossover: slowest optimized ≤ fastest basic.
    let slowest_opt = cycles[..3].iter().max().unwrap();
    let fastest_basic = cycles[3..].iter().min().unwrap();
    assert!(slowest_opt <= fastest_basic, "{cycles:?}");
}

#[test]
fn off_chip_latency_hurts_only_offchip_models() {
    use tcni::cpu::TimingConfig;
    let base = TimingConfig::new();
    let slow = TimingConfig::new().with_offchip_load_extra(8);
    for (i, model) in Model::ALL_SIX.iter().enumerate() {
        let run_with = |t: TimingConfig| {
            let mut machine = MachineBuilder::new(2)
                .model(*model)
                .timing(t)
                .program(0, remote_read::requester(*model, NodeId::new(1)))
                .program(1, remote_read::server(*model))
                .network_ideal(1)
                .build();
            machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
            assert_eq!(machine.run(10_000), RunOutcome::Quiescent);
            machine.cycle()
        };
        let (fast_c, slow_c) = (run_with(base), run_with(slow));
        if model.mapping == tcni::sim::NiMapping::OffChipCache {
            assert!(slow_c > fast_c, "model {i}: off-chip must slow down");
        } else {
            assert_eq!(slow_c, fast_c, "model {i}: on-chip/register unaffected");
        }
    }
}
