//! End-to-end tests for the in-network collective engine: the NIC-combining
//! path must beat the flat software emulation on the paper-scale 16×16 mesh
//! (the headline claim of the subsystem), and the engine must be invisible
//! to the machine's determinism guarantees — bit-identical results at any
//! worker count, with the quiescence fast-forward on or off, and across a
//! faulty fabric running the end-to-end delivery protocol.

use tcni::core::mapping::{scroll_in_addr, NI_WINDOW_BASE};
use tcni::core::{CollectiveOp, FeatureLevel, InterfaceReg};
use tcni::isa::{Assembler, Reg};
use tcni::net::{CombiningTree, FabricConfig, FaultConfig};
use tcni::sim::{CollDone, Machine, MachineBuilder, Model, NiMapping, RunOutcome};
use tcni::workload::{run_coll_point, CollMode, CollStormConfig, Topology};

/// The acceptance pin: in-network combining must be measurably faster than
/// the software gather/scatter for barrier *and* reduce on the 16×16 mesh.
/// Latency (request latched → every node holds the result) and total cycles
/// must both improve; correctness is cross-checked per round on both sides.
#[test]
fn nic_combining_beats_software_for_barrier_and_reduce_at_16x16() {
    let mut cfg = CollStormConfig::new(Topology::new(16, 16));
    cfg.rounds = 8;
    for op in [CollectiveOp::Barrier, CollectiveOp::Sum] {
        let nic = run_coll_point(CollMode::Nic, op, 0, &cfg);
        let soft = run_coll_point(CollMode::Soft, op, 0, &cfg);
        for p in [&nic, &soft] {
            assert_eq!(p.rounds_done, cfg.rounds, "{} {}", p.mode.key(), op.key());
            assert_eq!(p.wrong_results, 0, "{} {}", p.mode.key(), op.key());
        }
        let (nl, sl) = (nic.lat_mean_x100.unwrap(), soft.lat_mean_x100.unwrap());
        assert!(
            nl < sl,
            "{}: NIC latency {nl} must beat software {sl}",
            op.key()
        );
        assert!(
            nic.cycles < soft.cycles,
            "{}: NIC cycles {} must beat software {}",
            op.key(),
            nic.cycles,
            soft.cycles
        );
        // The tree actually combined in the network: every up edge folded
        // or forwarded, every down edge fanned.
        assert!(nic.combined > 0 && nic.forwarded_up > 0 && nic.fanned_down > 0);
        assert_eq!(soft.combined, 0, "software mode must not touch the engine");
    }
}

/// Drives `rounds` back-to-back collective rounds through a machine and
/// returns every completion each node collected, in collection order.
fn storm(machine: &mut Machine, op: CollectiveOp, rounds: u32) -> Vec<Vec<CollDone>> {
    let n = machine.node_count();
    let mut collected: Vec<Vec<CollDone>> = vec![Vec::new(); n];
    let mut fired = 0u32;
    let mut done_rounds = 0u32;
    let mut open = false;
    let mut awaiting = 0usize;
    let mut driver = |_cycle: u64, nodes: &mut [tcni::sim::Node]| {
        for (i, node) in nodes.iter_mut().enumerate() {
            while let Some(d) = node.coll_take_done() {
                collected[i].push(d);
                awaiting -= 1;
            }
        }
        if open && awaiting == 0 {
            open = false;
            done_rounds += 1;
        }
        if !open && fired < rounds {
            for (i, node) in nodes.iter_mut().enumerate() {
                node.coll_request(op, (fired as u32) ^ (i as u32) << 3);
            }
            awaiting = nodes.len();
            open = true;
            fired += 1;
        }
        done_rounds < rounds
    };
    let outcome = machine.run_driven(&mut driver, 100_000);
    assert_eq!(outcome, RunOutcome::DriverStopped, "storm must finish");
    collected
}

fn nic_machine(width: usize, height: usize, fault: Option<(u64, u32)>) -> Machine {
    let mut b = MachineBuilder::new(width * height)
        .network_fabric(FabricConfig::new(width, height))
        .collective(CombiningTree::mesh(width, height, 4));
    if let Some((seed, rate_pm)) = fault {
        b = b
            .network_fault(FaultConfig::uniform(seed, rate_pm))
            .delivery(Default::default());
    }
    b.build()
}

/// Worker threads are an implementation detail: the sharded cycle with the
/// collective engine enabled — including over a fault-wrapped mesh with the
/// delivery protocol retransmitting around a seeded fault schedule — must
/// produce bit-identical completions, counters, and timing at any thread
/// count.
#[test]
fn sharded_collectives_are_bit_identical_at_any_thread_count() {
    for fault in [None, Some((0x5EED, 60))] {
        let mut reference = nic_machine(8, 8, fault);
        reference.set_par_threads(1);
        let baseline = storm(&mut reference, CollectiveOp::Sum, 6);
        assert!(baseline.iter().all(|v| v.len() == 6));

        for threads in [2usize, 4] {
            let mut m = nic_machine(8, 8, fault);
            m.set_par_threads(threads);
            let got = storm(&mut m, CollectiveOp::Sum, 6);
            let ctx = format!("threads={threads} fault={fault:?}");
            assert_eq!(got, baseline, "{ctx} completions");
            assert_eq!(m.cycle(), reference.cycle(), "{ctx} cycle");
            assert_eq!(
                m.collective_stats(),
                reference.collective_stats(),
                "{ctx} engine counters"
            );
            assert_eq!(m.net_stats(), reference.net_stats(), "{ctx} net stats");
            assert_eq!(
                m.delivery_stats(),
                reference.delivery_stats(),
                "{ctx} delivery stats"
            );
        }
    }
}

/// The quiescence fast-forward must replay collective traffic exactly: a
/// machine with one processor env-stalled forever (a SCROLL-IN waiting on a
/// continuation flit that is never sent — collective arrivals are
/// engine-bound and invisible to the interface) and a pending all-nodes
/// reduction finishes with identical state whether or not the fast-forward
/// is allowed to skip the stall cycles, and the fast machine must actually
/// have skipped some.
#[test]
fn fast_forward_is_invisible_to_collectives() {
    // The reduction drains in the first few dozen cycles (every cycle
    // changes interface state, so the machine single-steps through it);
    // after that only the wedged node 0 is running and the fast-forward
    // burns the rest of the budget in one jump.
    let wedged = {
        let mut a = Assembler::new();
        a.li(Reg::R9, NI_WINDOW_BASE);
        a.ld(
            Reg::R4,
            Reg::R9,
            (scroll_in_addr(Some(InterfaceReg::input(4))) - NI_WINDOW_BASE) as i16,
        );
        a.halt();
        a.assemble().expect("wedged consumer assembles")
    };
    let build = |skip: bool| -> Machine {
        let model = Model {
            mapping: NiMapping::OnChipCache,
            level: FeatureLevel::Optimized,
        };
        let mut m = MachineBuilder::new(16)
            .model(model)
            .program(0, wedged.clone())
            .network_fabric(FabricConfig::new(4, 4))
            .collective(CombiningTree::mesh(4, 4, 2))
            .skip_ahead(skip)
            .build();
        for node in 0..16 {
            m.coll_start(node, CollectiveOp::Min, 900 + node as u32)
                .expect("fresh slot");
        }
        m
    };

    let mut fast = build(true);
    let mut slow = build(false);
    let of = fast.run(20_000);
    let os = slow.run(20_000);
    assert_eq!(of, os, "outcome");
    assert_eq!(of, RunOutcome::CycleLimit, "the consumer stalls forever");
    assert!(fast.skipped_cycles() > 0, "fast-forward must have engaged");
    assert_eq!(fast.cycle(), slow.cycle(), "cycle");
    assert_eq!(fast.collective_stats(), slow.collective_stats());
    assert_eq!(fast.net_stats(), slow.net_stats());
    assert_eq!(
        fast.node(0).cpu().cycle(),
        slow.node(0).cpu().cycle(),
        "the stalled server is charged identically"
    );
    for node in 0..16 {
        let (f, s) = (
            fast.node_mut(node).coll_take_done().expect("min done"),
            slow.node_mut(node).coll_take_done().expect("min done"),
        );
        assert_eq!(f, s, "node {node} completion");
        assert_eq!(f.value, 900, "min over 900..=915");
    }
}

/// Both collective schemes must survive an unreliable fabric when the
/// delivery protocol is on: all rounds complete with correct results, and
/// the NIC path keeps its latency edge even while retransmissions are
/// weaving through the tree.
#[test]
fn collectives_survive_a_faulty_fabric_at_8x8() {
    let mut cfg = CollStormConfig::new(Topology::new(8, 8));
    cfg.rounds = 4;
    cfg.fault_pm = 25;
    cfg.delivery = true;
    cfg.max_cycles = 400_000;
    for mode in CollMode::BOTH {
        let p = run_coll_point(mode, CollectiveOp::Sum, 0, &cfg);
        assert_eq!(p.rounds_done, cfg.rounds, "{} under faults", mode.key());
        assert_eq!(p.wrong_results, 0, "{} under faults", mode.key());
    }
}
