//! Hot-set scheduler equivalence across the full §4 matrix: the machine with
//! the active-channel frontier and the delivery timeout list (the default)
//! must be bit-identical to the dense-scan cross-check
//! ([`Machine::set_dense_scan`]) — registers, per-node cycles, statistics,
//! trace events, delivery counters, and the serialized `tcni-trace/1` report
//! — across all six models, both fabrics, E2E delivery on/off, tracing and
//! observability on/off, the quiescence fast-forward on/off, and seeded
//! fault schedules. Only the [`ScanStats`] effort meters may differ, and
//! they must conserve work: scanned + skipped equals the dense cost on both
//! sides.
//!
//! The same discipline covers the delivery flow *storage*: the sparse
//! (src, dst)-keyed flow store (the default) must be bit-identical to the
//! dense cross-check tables ([`MachineBuilder::dense_flows`]) on every
//! surface, with only the sparse footprint meters (`active_flows`,
//! `peak_flows`, `flow_probes`) allowed to differ — dense tables report
//! zero for all three.
//!
//! [`Machine::set_dense_scan`]: tcni::sim::Machine::set_dense_scan
//! [`MachineBuilder::dense_flows`]: tcni::sim::MachineBuilder::dense_flows
//! [`ScanStats`]: tcni::net::ScanStats

use tcni::core::NodeId;
use tcni::eval::handlers::remote_read::{self, REMOTE_ADDR, RESULT_ADDR};
use tcni::isa::Reg;
use tcni::net::{FabricConfig, FaultConfig, ScanStats, TopologyKind};
use tcni::sim::{DeliveryConfig, Machine, MachineBuilder, Model, RunOutcome};
use tcni_check::check;

const SECRET: u32 = 0xFEED_0042;

struct Config {
    model: Model,
    mesh: bool,
    latency: u64,
    e2e: bool,
    fault: Option<(u64, u32)>,
    skip: bool,
    instrument: Option<usize>,
}

fn build(cfg: &Config, dense: bool) -> Machine {
    let mut b = MachineBuilder::new(2)
        .model(cfg.model)
        .program(0, remote_read::requester(cfg.model, NodeId::new(1)))
        .program(1, remote_read::server(cfg.model))
        .skip_ahead(cfg.skip)
        .dense_scan(dense);
    if cfg.e2e {
        b = b.delivery(DeliveryConfig {
            window: 4,
            timeout: 24,
            retransmit_limit: 10_000,
        });
    }
    if let Some((seed, rate_pm)) = cfg.fault {
        b = b.network_fault(FaultConfig::uniform(seed, rate_pm));
    }
    let mut machine = if cfg.mesh {
        b.network_fabric(FabricConfig::new(2, 1)).build()
    } else {
        b.network_ideal(cfg.latency).build()
    };
    if let Some(capacity) = cfg.instrument {
        machine.enable_trace(capacity);
        machine.enable_obs(capacity);
    }
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
    machine
}

/// Drives the hot-set and dense machines through the same budget and checks
/// every observable surface for bit-identity, then the conservation law on
/// the effort meters. Returns both run outcomes for caller assertions.
fn assert_equivalent(cfg: &Config, budget: u64, ctx: &str) -> (RunOutcome, RunOutcome) {
    let mut hot = build(cfg, false);
    let mut dense = build(cfg, true);
    let oh = hot.run(budget);
    let od = dense.run(budget);

    assert_eq!(oh, od, "{ctx} outcome");
    assert_eq!(hot.cycle(), dense.cycle(), "{ctx} machine cycle");
    // `NetStats` equality deliberately ignores the scan meters.
    assert_eq!(hot.net_stats(), dense.net_stats(), "{ctx} network stats");
    assert_eq!(
        hot.delivery_stats(),
        dense.delivery_stats(),
        "{ctx} delivery stats"
    );
    for i in 0..2 {
        let (h, d) = (hot.node(i), dense.node(i));
        assert_eq!(h.cpu().cycle(), d.cpu().cycle(), "{ctx} node {i} cycles");
        assert_eq!(h.cpu().stats(), d.cpu().stats(), "{ctx} node {i} stats");
        for r in Reg::ALL {
            assert_eq!(h.cpu().reg(r), d.cpu().reg(r), "{ctx} node {i} reg {r}");
        }
    }
    if cfg.instrument.is_some() {
        let (th, td) = (hot.trace().unwrap(), dense.trace().unwrap());
        assert_eq!(th.dropped(), td.dropped(), "{ctx} trace dropped");
        assert!(th.events().eq(td.events()), "{ctx} trace events");
        // The serialized report carries the scan meters, which are the one
        // legitimate difference; zero them on both sides, then demand
        // byte-identity of everything else.
        let (mut rh, mut rd) = (hot.obs_report().unwrap(), dense.obs_report().unwrap());
        rh.net.scan = ScanStats::default();
        rd.net.scan = ScanStats::default();
        assert_eq!(rh.to_json(), rd.to_json(), "{ctx} tcni-trace/1 report");
    }

    // Effort meters: the dense machine skips nothing, and both sides account
    // for the same total work (they gate counting on the same activity
    // conditions, which evolve identically).
    let (sh, sd) = (hot.net_stats().scan, dense.net_stats().scan);
    assert_eq!(sd.skipped_work, 0, "{ctx} dense scan skips nothing");
    assert!(
        sh.scanned_channels <= sd.scanned_channels,
        "{ctx} frontier must not visit more channels than the dense scan"
    );
    assert!(
        sh.scanned_flows <= sd.scanned_flows,
        "{ctx} timeout list must not examine more flows than the dense scan"
    );
    assert_eq!(
        sh.scanned_channels + sh.scanned_flows + sh.skipped_work,
        sd.scanned_channels + sd.scanned_flows,
        "{ctx} scanned + skipped must equal the dense cost"
    );
    (oh, od)
}

#[test]
fn hot_set_is_equivalent_on_all_six_models() {
    check("hot_set_is_equivalent_on_all_six_models", 48, |rng| {
        let cfg = Config {
            model: *rng.pick(&Model::ALL_SIX),
            mesh: rng.bool(),
            latency: rng.below(80),
            e2e: rng.bool(),
            fault: None,
            skip: rng.bool(),
            instrument: rng.bool().then(|| rng.range(1, 24) as usize),
        };
        let budget = rng.range(4_000, 20_000);
        let ctx = format!(
            "{} mesh={} latency={} e2e={} skip={} instrument={:?}",
            cfg.model, cfg.mesh, cfg.latency, cfg.e2e, cfg.skip, cfg.instrument
        );
        let (oh, _) = assert_equivalent(&cfg, budget, &ctx);
        assert_eq!(oh, RunOutcome::Quiescent, "{ctx} must finish in {budget}");

        // The protocol completed, so both requesters observed the value.
        let mut hot = build(&cfg, false);
        hot.run(budget);
        assert_eq!(hot.node(0).mem().peek(RESULT_ADDR), SECRET, "{ctx}");
    });
}

/// Builds a machine for the parallel sweep: hot scan, optional trace-only
/// instrumentation, and an explicit per-machine worker count.
fn build_par(cfg: &Config, trace_cap: Option<usize>, par_threads: usize) -> Machine {
    let mut m = build(cfg, false);
    if let Some(c) = trace_cap {
        m.enable_trace(c);
    }
    m.set_par_threads(par_threads);
    m
}

/// Parallelism is an implementation detail: the sharded cycle must be
/// bit-identical to the serial cycle at any worker count — same bytes on
/// every observable surface, including the [`ScanStats`] effort meters
/// (the domain-sliced frontier walk visits the same channel multiset as the
/// serial scan). The sweep crosses the §4 models with both fabrics, E2E
/// on/off, trace-only and trace+obs instrumentation, seeded fault
/// schedules, and worker counts {1, 2, 3, 8}. Fault-wrapped meshes shard
/// too (the per-node fault streams reproduce domain by domain); ineligible
/// configurations (ideal fabric, observability, dense scan) fall back to
/// the serial path, and keeping them in the sweep pins the fallback.
#[test]
fn parallel_tick_is_equivalent_at_any_thread_count() {
    check(
        "parallel_tick_is_equivalent_at_any_thread_count",
        64,
        |rng| {
            let cfg = Config {
                model: *rng.pick(&Model::ALL_SIX),
                mesh: rng.bool(),
                latency: rng.below(40),
                e2e: rng.bool(),
                fault: rng.bool().then(|| (rng.u64(), rng.range(20, 120) as u32)),
                skip: rng.bool(),
                instrument: rng.bool().then(|| rng.range(1, 24) as usize),
            };
            let trace_cap =
                (cfg.instrument.is_none() && rng.bool()).then(|| rng.range(1, 24) as usize);
            let par = *rng.pick(&[1usize, 2, 3, 8]);
            let budget = rng.range(4_000, 30_000);
            let ctx = format!(
                "{} mesh={} latency={} e2e={} fault={:?} skip={} instrument={:?} trace={:?} par={}",
                cfg.model,
                cfg.mesh,
                cfg.latency,
                cfg.e2e,
                cfg.fault,
                cfg.skip,
                cfg.instrument,
                trace_cap,
                par
            );
            let mut serial = build_par(&cfg, trace_cap, 1);
            let mut sharded = build_par(&cfg, trace_cap, par);
            let os = serial.run(budget);
            let op = sharded.run(budget);

            assert_eq!(os, op, "{ctx} outcome");
            assert_eq!(serial.cycle(), sharded.cycle(), "{ctx} machine cycle");
            assert_eq!(serial.net_stats(), sharded.net_stats(), "{ctx} net stats");
            assert_eq!(
                serial.net_stats().scan,
                sharded.net_stats().scan,
                "{ctx} scan meters must be byte-identical, not merely conserved"
            );
            assert_eq!(
                serial.delivery_stats(),
                sharded.delivery_stats(),
                "{ctx} delivery stats"
            );
            assert_eq!(
                serial.skipped_cycles(),
                sharded.skipped_cycles(),
                "{ctx} fast-forward accounting"
            );
            for i in 0..2 {
                let (s, p) = (serial.node(i), sharded.node(i));
                assert_eq!(s.cpu().cycle(), p.cpu().cycle(), "{ctx} node {i} cycles");
                assert_eq!(s.cpu().stats(), p.cpu().stats(), "{ctx} node {i} stats");
                for r in Reg::ALL {
                    assert_eq!(s.cpu().reg(r), p.cpu().reg(r), "{ctx} node {i} reg {r}");
                }
            }
            if trace_cap.is_some() || cfg.instrument.is_some() {
                let (ts, tp) = (serial.trace().unwrap(), sharded.trace().unwrap());
                assert_eq!(ts.dropped(), tp.dropped(), "{ctx} trace dropped");
                assert!(ts.events().eq(tp.events()), "{ctx} trace events");
            }
            if cfg.instrument.is_some() {
                // Observability pins the serial fallback, so even the serialized
                // report (scan meters included) is byte-equal.
                let (rs, rp) = (serial.obs_report().unwrap(), sharded.obs_report().unwrap());
                assert_eq!(rs.to_json(), rp.to_json(), "{ctx} tcni-trace/1 report");
            }
        },
    );
}

/// The fault-wrapped mesh is parallel-eligible, not a serial fallback: pin
/// the sharded cycle against the serial one across worker counts with a
/// seeded fault schedule mangling traffic and the delivery protocol
/// retransmitting around it — the inner fabric tick, the per-node fault
/// streams, and the stall-roll timing must all reproduce domain by domain.
#[test]
fn fault_wrapped_mesh_shards_bit_identically() {
    check("fault_wrapped_mesh_shards_bit_identically", 24, |rng| {
        let cfg = Config {
            model: *rng.pick(&Model::ALL_SIX),
            mesh: true,
            latency: 0,
            e2e: true,
            fault: Some((rng.u64(), rng.range(20, 150) as u32)),
            skip: rng.bool(),
            instrument: None,
        };
        let trace_cap = rng.bool().then(|| rng.range(1, 24) as usize);
        let budget = rng.range(10_000, 40_000);
        let ctx = format!(
            "{} fault={:?} skip={} trace={:?}",
            cfg.model, cfg.fault, cfg.skip, trace_cap
        );
        let mut serial = build_par(&cfg, trace_cap, 1);
        let baseline = serial.run(budget);
        for par in [2usize, 3, 8] {
            let mut sharded = build_par(&cfg, trace_cap, par);
            let op = sharded.run(budget);
            assert_eq!(baseline, op, "{ctx} par={par} outcome");
            assert_eq!(serial.cycle(), sharded.cycle(), "{ctx} par={par} cycle");
            assert_eq!(
                serial.net_stats(),
                sharded.net_stats(),
                "{ctx} par={par} net stats (fault counters included)"
            );
            assert_eq!(
                serial.delivery_stats(),
                sharded.delivery_stats(),
                "{ctx} par={par} delivery stats"
            );
            for i in 0..2 {
                let (s, p) = (serial.node(i), sharded.node(i));
                assert_eq!(s.cpu().cycle(), p.cpu().cycle(), "{ctx} node {i} cycles");
                for r in Reg::ALL {
                    assert_eq!(s.cpu().reg(r), p.cpu().reg(r), "{ctx} node {i} reg {r}");
                }
            }
            if trace_cap.is_some() {
                let (ts, tp) = (serial.trace().unwrap(), sharded.trace().unwrap());
                assert_eq!(ts.dropped(), tp.dropped(), "{ctx} par={par} trace dropped");
                assert!(ts.events().eq(tp.events()), "{ctx} par={par} trace events");
            }
        }
    });
}

/// The same bit-identity must hold when a seeded fault schedule is mangling
/// traffic and the delivery protocol is retransmitting around it — the
/// hardest case for the timeout list, since flows join, refresh, and leave
/// it continuously.
#[test]
fn hot_set_is_equivalent_under_fault_schedules() {
    check("hot_set_is_equivalent_under_fault_schedules", 24, |rng| {
        let cfg = Config {
            model: *rng.pick(&Model::ALL_SIX),
            mesh: rng.bool(),
            latency: 1 + rng.below(8),
            e2e: true,
            fault: Some((rng.u64(), rng.range(20, 120) as u32)),
            skip: rng.bool(),
            instrument: rng.bool().then(|| rng.range(1, 24) as usize),
        };
        let budget = rng.range(20_000, 60_000);
        let ctx = format!(
            "{} mesh={} latency={} fault={:?} skip={} instrument={:?}",
            cfg.model, cfg.mesh, cfg.latency, cfg.fault, cfg.skip, cfg.instrument
        );
        assert_equivalent(&cfg, budget, &ctx);
    });
}

/// The §4 matrix config for the flow-store sweep, with the fabric topology
/// and the worker count as explicit axes.
struct StoreConfig {
    model: Model,
    topo: TopologyKind,
    e2e: bool,
    fault: Option<(u64, u32)>,
    skip: bool,
    instrument: Option<usize>,
    par: usize,
}

/// Every switched topology, sized so both machine nodes exist (extra fabric
/// slots stay idle).
fn store_fabric_axis() -> [TopologyKind; 5] {
    [
        TopologyKind::mesh(2, 1),
        TopologyKind::torus(2, 2),
        TopologyKind::torus(3, 1),
        TopologyKind::ring(4),
        TopologyKind::full(3),
    ]
}

fn build_store(cfg: &StoreConfig, dense_flows: bool) -> Machine {
    let mut b = MachineBuilder::new(2)
        .model(cfg.model)
        .program(0, remote_read::requester(cfg.model, NodeId::new(1)))
        .program(1, remote_read::server(cfg.model))
        .skip_ahead(cfg.skip)
        .dense_flows(dense_flows)
        .topology(cfg.topo);
    if cfg.e2e {
        b = b.delivery(DeliveryConfig {
            window: 4,
            timeout: 24,
            retransmit_limit: 10_000,
        });
    }
    if let Some((seed, rate_pm)) = cfg.fault {
        b = b.network_fault(FaultConfig::uniform(seed, rate_pm));
    }
    let mut machine = b.build();
    if let Some(capacity) = cfg.instrument {
        machine.enable_trace(capacity);
        machine.enable_obs(capacity);
    }
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
    machine.set_par_threads(cfg.par);
    machine
}

/// The sparse flow store (the default) must be bit-identical to the dense
/// cross-check tables everywhere both can run — outcome, cycles, network
/// and delivery statistics, registers, trace events, and the serialized
/// `tcni-trace/1` report — across the §4 models, every fabric topology,
/// seeded fault schedules, E2E on/off, and worker counts {1, 2, 3, 8}.
/// The scheduler effort meters must agree *exactly* (both sides walk the
/// same timeout list and frontier); only the sparse footprint meters may
/// differ, and dense tables must report zero for them.
#[test]
fn sparse_flow_store_matches_the_dense_cross_check() {
    check(
        "sparse_flow_store_matches_the_dense_cross_check",
        48,
        |rng| {
            let cfg = StoreConfig {
                model: *rng.pick(&Model::ALL_SIX),
                topo: *rng.pick(&store_fabric_axis()),
                e2e: rng.bool(),
                fault: rng.bool().then(|| (rng.u64(), rng.range(20, 120) as u32)),
                skip: rng.bool(),
                instrument: rng.bool().then(|| rng.range(1, 24) as usize),
                par: *rng.pick(&[1usize, 2, 3, 8]),
            };
            let budget = rng.range(8_000, 40_000);
            let ctx = format!(
                "{} {:?} e2e={} fault={:?} skip={} instrument={:?} par={}",
                cfg.model, cfg.topo, cfg.e2e, cfg.fault, cfg.skip, cfg.instrument, cfg.par
            );
            let mut sparse = build_store(&cfg, false);
            let mut dense = build_store(&cfg, true);
            let os = sparse.run(budget);
            let od = dense.run(budget);

            assert_eq!(os, od, "{ctx} outcome");
            assert_eq!(sparse.cycle(), dense.cycle(), "{ctx} machine cycle");
            assert_eq!(sparse.net_stats(), dense.net_stats(), "{ctx} net stats");
            assert_eq!(
                sparse.delivery_stats(),
                dense.delivery_stats(),
                "{ctx} delivery stats"
            );
            assert_eq!(
                sparse.skipped_cycles(),
                dense.skipped_cycles(),
                "{ctx} fast-forward accounting"
            );
            for i in 0..2 {
                let (s, d) = (sparse.node(i), dense.node(i));
                assert_eq!(s.cpu().cycle(), d.cpu().cycle(), "{ctx} node {i} cycles");
                assert_eq!(s.cpu().stats(), d.cpu().stats(), "{ctx} node {i} stats");
                for r in Reg::ALL {
                    assert_eq!(s.cpu().reg(r), d.cpu().reg(r), "{ctx} node {i} reg {r}");
                }
            }
            if cfg.instrument.is_some() {
                let (ts, td) = (sparse.trace().unwrap(), dense.trace().unwrap());
                assert_eq!(ts.dropped(), td.dropped(), "{ctx} trace dropped");
                assert!(ts.events().eq(td.events()), "{ctx} trace events");
                let (mut rs, mut rd) = (sparse.obs_report().unwrap(), dense.obs_report().unwrap());
                rs.net.scan = ScanStats::default();
                rd.net.scan = ScanStats::default();
                assert_eq!(rs.to_json(), rd.to_json(), "{ctx} tcni-trace/1 report");
            }

            // Scheduler effort is storage-independent; footprint is sparse-only.
            let (ss, sd) = (sparse.net_stats().scan, dense.net_stats().scan);
            assert_eq!(
                ss.scanned_channels, sd.scanned_channels,
                "{ctx} scanned channels"
            );
            assert_eq!(ss.scanned_flows, sd.scanned_flows, "{ctx} scanned flows");
            assert_eq!(ss.skipped_work, sd.skipped_work, "{ctx} skipped work");
            assert_eq!(
                (sd.active_flows, sd.peak_flows, sd.flow_probes),
                (0, 0, 0),
                "{ctx} dense tables have no sparse footprint"
            );
            if cfg.e2e {
                assert!(
                    ss.peak_flows > 0,
                    "{ctx} delivery traffic must occupy flow slots"
                );
                assert!(ss.flow_probes > 0, "{ctx} sparse lookups are metered");
            }
        },
    );
}
