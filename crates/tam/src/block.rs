//! Code blocks and the program builder.

use std::collections::HashMap;

use crate::instr::{CodeBlockId, InletId, Slot, TamOp, ThreadId};

/// An inlet: a compiler-generated message handler that deposits a message's
/// payload words into frame slots and enables a thread ([CSS+91]).
#[derive(Debug, Clone, PartialEq)]
pub struct Inlet {
    /// Slots receiving the payload words, in order.
    pub dsts: Vec<Slot>,
    /// Thread enabled after the deposit.
    pub thread: ThreadId,
}

/// A code block: the unit of frame allocation — threads plus inlets over a
/// fixed-size frame.
#[derive(Debug, Clone, Default)]
pub struct CodeBlock {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of frame slots an instance needs.
    pub frame_size: usize,
    /// Straight-line threads.
    pub threads: Vec<Vec<TamOp>>,
    /// Message-receive handlers.
    pub inlets: Vec<Inlet>,
    /// Compiler-initialized slot values applied at frame allocation — TAM's
    /// entry counts for synchronization counters live here.
    pub init: Vec<(Slot, u32)>,
}

/// A whole TAM program: a set of code blocks, one of which is `main`.
#[derive(Debug, Clone, Default)]
pub struct TamProgram {
    blocks: Vec<CodeBlock>,
    by_name: HashMap<String, CodeBlockId>,
}

impl TamProgram {
    /// Creates an empty program.
    pub fn new() -> TamProgram {
        TamProgram::default()
    }

    /// Adds a code block built by `f`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a block of this name already exists, or if the builder
    /// produced dangling thread/inlet references.
    pub fn block(
        &mut self,
        name: &str,
        frame_size: usize,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> CodeBlockId {
        assert!(
            !self.by_name.contains_key(name),
            "code block `{name}` defined twice"
        );
        let mut b = BlockBuilder {
            block: CodeBlock {
                name: name.to_owned(),
                frame_size,
                threads: Vec::new(),
                inlets: Vec::new(),
                init: Vec::new(),
            },
        };
        f(&mut b);
        b.validate();
        let id = CodeBlockId(self.blocks.len() as u32);
        self.by_name.insert(name.to_owned(), id);
        self.blocks.push(b.block);
        id
    }

    /// The id the next [`block`](Self::block) call will receive — lets a
    /// block refer to itself (recursion) or to a block defined later.
    pub fn next_block_id(&self) -> CodeBlockId {
        CodeBlockId(self.blocks.len() as u32)
    }

    /// Looks a block up by name.
    pub fn lookup(&self, name: &str) -> Option<CodeBlockId> {
        self.by_name.get(name).copied()
    }

    /// The block table.
    pub fn blocks(&self) -> &[CodeBlock] {
        &self.blocks
    }

    /// A block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is dangling.
    pub fn get(&self, id: CodeBlockId) -> &CodeBlock {
        &self.blocks[id.0 as usize]
    }
}

/// Builds one code block: threads are added as complete op vectors; inlets
/// reference threads by id.
#[derive(Debug)]
pub struct BlockBuilder {
    block: CodeBlock,
}

impl BlockBuilder {
    /// Reserves a thread id to be filled in later (for mutually-referencing
    /// threads).
    pub fn declare_thread(&mut self) -> ThreadId {
        let id = ThreadId(self.block.threads.len() as u16);
        self.block.threads.push(Vec::new());
        id
    }

    /// Fills a previously declared thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread was already filled.
    pub fn define_thread(&mut self, id: ThreadId, ops: Vec<TamOp>) {
        let t = &mut self.block.threads[id.0 as usize];
        assert!(t.is_empty(), "thread {} defined twice", id.0);
        assert!(!ops.is_empty(), "thread {} must not be empty", id.0);
        *t = ops;
    }

    /// Adds a complete thread; returns its id.
    pub fn thread(&mut self, ops: Vec<TamOp>) -> ThreadId {
        let id = self.declare_thread();
        self.define_thread(id, ops);
        id
    }

    /// Sets a frame slot's compiler-initialized value (entry counts).
    pub fn init(&mut self, slot: Slot, value: u32) {
        self.block.init.push((slot, value));
    }

    /// Adds an inlet depositing into `dsts` and enabling `thread`.
    pub fn inlet(&mut self, dsts: Vec<Slot>, thread: ThreadId) -> InletId {
        let id = InletId(self.block.inlets.len() as u16);
        self.block.inlets.push(Inlet { dsts, thread });
        id
    }

    fn validate(&self) {
        let nthreads = self.block.threads.len();
        let check_thread = |t: ThreadId| {
            assert!(
                (t.0 as usize) < nthreads,
                "dangling thread reference {} in block `{}`",
                t.0,
                self.block.name
            );
        };
        let check_slot = |s: Slot| {
            assert!(
                (s as usize) < self.block.frame_size,
                "slot {} out of frame (size {}) in block `{}`",
                s,
                self.block.frame_size,
                self.block.name
            );
        };
        for (i, t) in self.block.threads.iter().enumerate() {
            assert!(
                !t.is_empty(),
                "thread {i} of `{}` left undefined",
                self.block.name
            );
            for op in t {
                match op {
                    TamOp::Imm { dst, .. } | TamOp::Rand { dst } => check_slot(*dst),
                    TamOp::Mov { dst, src } => {
                        check_slot(*dst);
                        check_slot(*src);
                    }
                    TamOp::Int { dst, a, b, .. } | TamOp::Float { dst, a, b, .. } => {
                        check_slot(*dst);
                        check_slot(*a);
                        check_slot(*b);
                    }
                    TamOp::IntI { dst, a, .. } => {
                        check_slot(*dst);
                        check_slot(*a);
                    }
                    TamOp::Fork { thread } => check_thread(*thread),
                    TamOp::Switch {
                        cond,
                        if_true,
                        if_false,
                    } => {
                        check_slot(*cond);
                        check_thread(*if_true);
                        check_thread(*if_false);
                    }
                    TamOp::Join { counter, thread } => {
                        check_slot(*counter);
                        check_thread(*thread);
                    }
                    TamOp::Falloc { dst_fp, .. } => check_slot(*dst_fp),
                    TamOp::SendArgsDyn {
                        fp,
                        inlet_slot,
                        args,
                    } => {
                        check_slot(*fp);
                        check_slot(*inlet_slot);
                        assert!(
                            args.len() <= crate::MAX_SEND_ARGS,
                            "SendArgsDyn with {} args (max {}) in `{}`",
                            args.len(),
                            crate::MAX_SEND_ARGS,
                            self.block.name
                        );
                        for a in args {
                            check_slot(*a);
                        }
                    }
                    TamOp::SendArgs { fp, args, .. } => {
                        check_slot(*fp);
                        assert!(
                            args.len() <= crate::MAX_SEND_ARGS,
                            "SendArgs with {} args (max {}) in `{}`",
                            args.len(),
                            crate::MAX_SEND_ARGS,
                            self.block.name
                        );
                        for a in args {
                            check_slot(*a);
                        }
                    }
                    TamOp::IFetch { arr, idx, .. } | TamOp::ReadG { arr, idx, .. } => {
                        check_slot(*arr);
                        check_slot(*idx);
                    }
                    TamOp::IStore { arr, idx, val } | TamOp::WriteG { arr, idx, val } => {
                        check_slot(*arr);
                        check_slot(*idx);
                        check_slot(*val);
                    }
                    TamOp::HAlloc { dst, len } | TamOp::GAlloc { dst, len } => {
                        check_slot(*dst);
                        check_slot(*len);
                    }
                    TamOp::HaltMachine => {}
                }
            }
        }
        for (slot, _) in &self.block.init {
            check_slot(*slot);
        }
        for (i, inlet) in self.block.inlets.iter().enumerate() {
            assert!(
                inlet.dsts.len() <= crate::MAX_SEND_ARGS,
                "inlet {i} of `{}` expects {} words (max {})",
                self.block.name,
                inlet.dsts.len(),
                crate::MAX_SEND_ARGS
            );
            for s in &inlet.dsts {
                check_slot(*s);
            }
            check_thread(inlet.thread);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::IntOp;

    #[test]
    fn build_and_lookup() {
        let mut p = TamProgram::new();
        let id = p.block("main", 4, |b| {
            let t = b.thread(vec![TamOp::Imm { dst: 0, value: 1 }, TamOp::HaltMachine]);
            b.inlet(vec![1], t);
        });
        assert_eq!(p.lookup("main"), Some(id));
        assert_eq!(p.get(id).threads.len(), 1);
        assert_eq!(p.get(id).inlets.len(), 1);
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_block_panics() {
        let mut p = TamProgram::new();
        p.block("x", 1, |b| {
            b.thread(vec![TamOp::HaltMachine]);
        });
        p.block("x", 1, |b| {
            b.thread(vec![TamOp::HaltMachine]);
        });
    }

    #[test]
    #[should_panic(expected = "slot 9 out of frame")]
    fn out_of_frame_slot_panics() {
        let mut p = TamProgram::new();
        p.block("bad", 2, |b| {
            b.thread(vec![TamOp::Imm { dst: 9, value: 0 }]);
        });
    }

    #[test]
    #[should_panic(expected = "dangling thread")]
    fn dangling_thread_panics() {
        let mut p = TamProgram::new();
        p.block("bad", 2, |b| {
            b.thread(vec![TamOp::Fork {
                thread: ThreadId(7),
            }]);
        });
    }

    #[test]
    fn declare_then_define_mutual_threads() {
        let mut p = TamProgram::new();
        p.block("loop", 2, |b| {
            let t_a = b.declare_thread();
            let t_b = b.declare_thread();
            b.define_thread(
                t_a,
                vec![
                    TamOp::IntI {
                        op: IntOp::Add,
                        dst: 0,
                        a: 0,
                        imm: 1,
                    },
                    TamOp::Fork { thread: t_b },
                ],
            );
            b.define_thread(
                t_b,
                vec![TamOp::Switch {
                    cond: 0,
                    if_true: t_a,
                    if_false: t_a,
                }],
            );
        });
    }
}
