//! The TAM interpreter.
//!
//! Executes a [`TamProgram`] over a set of logical nodes, exactly in the
//! spirit of the Berkeley TAM simulator the paper used (§4.2.1): threads
//! run sequentially, no processor count or network latency is modelled, and
//! the output is *dynamic instruction counts* plus the message mix. LIFO
//! scheduling (per node) mirrors the Mint configuration the paper used to
//! measure the PRead/PWrite outcome mix.
//!
//! Placement: frames are dealt round-robin across nodes; I-structure and
//! plain heap arrays are distributed element-chunk-wise. Every inter-frame
//! send and every heap access is a message — the paper compiled its
//! benchmarks "so that any two procedure invocations would communicate
//! across the network".

use std::fmt;
use std::rc::Rc;

use tcni_istruct::{FetchOutcome, IStructure, Reader, StoreOutcome};

use crate::block::TamProgram;
use crate::counts::TamCounts;
use crate::instr::{CodeBlockId, InletId, TamClass, TamOp, ThreadId};

/// Maximum payload words of a `Send` (Table 1 covers 0–2).
pub const MAX_SEND_ARGS: usize = 2;

/// Elements per distribution chunk of a heap array.
const HEAP_CHUNK: u32 = 16;

/// Errors surfaced by [`TamMachine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamError {
    /// A PWrite hit an already-full I-structure slot.
    MultipleWrite {
        /// Array handle.
        array: u32,
        /// Element index.
        index: usize,
    },
    /// A frame pointer, handle, or index did not name a live object.
    BadReference {
        /// What went wrong.
        what: String,
    },
    /// The step budget ran out before the program quiesced.
    StepLimit,
}

impl fmt::Display for TamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamError::MultipleWrite { array, index } => {
                write!(f, "multiple write to I-structure {array}[{index}]")
            }
            TamError::BadReference { what } => write!(f, "bad reference: {what}"),
            TamError::StepLimit => f.write_str("step limit exceeded"),
        }
    }
}

impl std::error::Error for TamError {}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Continuations executed.
    pub steps: u64,
    /// Whether `HaltMachine` was executed (vs. natural quiescence).
    pub halted_explicitly: bool,
}

#[derive(Debug, Clone)]
struct Frame {
    node: usize,
    block: CodeBlockId,
    slots: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
struct ArgBuf {
    words: [u32; MAX_SEND_ARGS],
    len: u8,
}

impl ArgBuf {
    fn new(words: &[u32]) -> ArgBuf {
        let mut buf = [0; MAX_SEND_ARGS];
        buf[..words.len()].copy_from_slice(words);
        ArgBuf {
            words: buf,
            len: words.len() as u8,
        }
    }

    fn as_slice(&self) -> &[u32] {
        &self.words[..self.len as usize]
    }
}

#[derive(Debug, Clone)]
enum Continuation {
    /// Run a thread of a frame.
    Run { frame: u32, thread: ThreadId },
    /// Deliver a message payload to an inlet (arrival side of a Send or a
    /// value reply).
    Deliver {
        frame: u32,
        inlet: InletId,
        args: ArgBuf,
    },
    /// Service a heap request at the owning node. `presence` selects
    /// I-structure (PRead/PWrite) vs plain (Read/Write) semantics.
    ServiceFetch {
        array: u32,
        index: u32,
        reader_frame: u32,
        reader_inlet: InletId,
        presence: bool,
    },
    ServiceStore {
        array: u32,
        index: u32,
        value: u32,
        presence: bool,
    },
}

/// The machine: program + heap + frames + per-node LIFO scheduler.
///
/// # Example
///
/// ```
/// use tcni_tam::{TamMachine, TamOp, TamProgram};
///
/// let mut p = TamProgram::new();
/// let main = p.block("main", 2, |b| {
///     b.thread(vec![TamOp::Imm { dst: 1, value: 42 }, TamOp::HaltMachine]);
/// });
/// let mut m = TamMachine::new(p, 4, 1);
/// let root = m.spawn_main(main);
/// m.run(1_000).unwrap();
/// assert_eq!(m.frame_slot(root, 1), 42);
/// ```
pub struct TamMachine {
    program: Rc<TamProgram>,
    frames: Vec<Frame>,
    istructs: Vec<IStructure>,
    gmem: Vec<Vec<u32>>,
    node_count: usize,
    next_frame_node: usize,
    queues: Vec<Vec<Continuation>>,
    scan: usize,
    counts: TamCounts,
    halted: bool,
    rng: u64,
}

impl TamMachine {
    /// Creates a machine over `node_count` logical nodes with the given RNG
    /// seed (Gamteb sampling).
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(program: TamProgram, node_count: usize, seed: u64) -> TamMachine {
        assert!(node_count > 0, "need at least one node");
        TamMachine {
            program: Rc::new(program),
            frames: Vec::new(),
            istructs: Vec::new(),
            gmem: Vec::new(),
            node_count,
            next_frame_node: 0,
            queues: (0..node_count).map(|_| Vec::new()).collect(),
            scan: 0,
            counts: TamCounts::default(),
            halted: false,
            rng: seed | 1,
        }
    }

    /// Dynamic counts accumulated so far.
    pub fn counts(&self) -> &TamCounts {
        &self.counts
    }

    /// Number of logical nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Allocates the root frame of `block` and schedules its thread 0.
    /// Returns the root frame pointer. Frame slot 0 of every frame holds its
    /// own frame pointer (the SELF convention programs use to pass return
    /// continuations).
    pub fn spawn_main(&mut self, block: CodeBlockId) -> u32 {
        let fp = self.alloc_frame(block);
        self.queues[self.frames[fp as usize].node].push(Continuation::Run {
            frame: fp,
            thread: ThreadId(0),
        });
        fp
    }

    /// Reads a frame slot (inspection).
    ///
    /// # Panics
    ///
    /// Panics if the frame pointer or slot is out of range.
    pub fn frame_slot(&self, fp: u32, slot: u16) -> u32 {
        self.frames[fp as usize].slots[slot as usize]
    }

    /// The I-structure behind a heap handle, if `handle` names one
    /// (inspection).
    pub fn istructure(&self, handle: u32) -> Option<&IStructure> {
        self.istructs
            .get((handle & 0x7FFF_FFFF) as usize)
            .filter(|_| handle & 0x8000_0000 == 0)
    }

    /// Reads a plain-global-array element (inspection).
    pub fn gmem_peek(&self, handle: u32, index: usize) -> Option<u32> {
        if handle & 0x8000_0000 == 0 {
            return None;
        }
        self.gmem
            .get((handle & 0x7FFF_FFFF) as usize)
            .and_then(|a| a.get(index))
            .copied()
    }

    fn alloc_frame(&mut self, block: CodeBlockId) -> u32 {
        let size = self.program.get(block).frame_size;
        let node = self.next_frame_node;
        self.next_frame_node = (self.next_frame_node + 1) % self.node_count;
        let fp = self.frames.len() as u32;
        let mut slots = vec![0u32; size];
        if size > 0 {
            slots[0] = fp; // SELF convention
        }
        for (slot, value) in &self.program.get(block).init {
            slots[*slot as usize] = *value;
        }
        self.frames.push(Frame { node, block, slots });
        self.counts.frames += 1;
        fp
    }

    fn heap_owner(&self, array: u32, index: u32) -> usize {
        ((array.wrapping_add(index / HEAP_CHUNK)) as usize) % self.node_count
    }

    fn frame_node(&self, fp: u32) -> Result<usize, TamError> {
        self.frames
            .get(fp as usize)
            .map(|f| f.node)
            .ok_or_else(|| TamError::BadReference {
                what: format!("frame pointer {fp}"),
            })
    }

    fn next_rand(&mut self) -> u32 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D)) >> 33) as u32
    }

    /// Runs until quiescence, `HaltMachine`, or the step budget.
    ///
    /// # Errors
    ///
    /// Propagates program errors (multiple writes, bad references) and
    /// [`TamError::StepLimit`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunReport, TamError> {
        let mut steps = 0u64;
        while !self.halted {
            let Some(cont) = self.pop_next() else {
                break; // quiescent
            };
            if steps >= max_steps {
                return Err(TamError::StepLimit);
            }
            steps += 1;
            self.execute(cont)?;
        }
        Ok(RunReport {
            steps,
            halted_explicitly: self.halted,
        })
    }

    /// Pops the next continuation: nodes round-robin, per-node LIFO.
    fn pop_next(&mut self) -> Option<Continuation> {
        for i in 0..self.node_count {
            let n = (self.scan + i) % self.node_count;
            if let Some(c) = self.queues[n].pop() {
                self.scan = (n + 1) % self.node_count;
                return Some(c);
            }
        }
        None
    }

    fn push_at(&mut self, node: usize, cont: Continuation) {
        self.queues[node].push(cont);
    }

    fn execute(&mut self, cont: Continuation) -> Result<(), TamError> {
        match cont {
            Continuation::Run { frame, thread } => self.run_thread(frame, thread),
            Continuation::Deliver { frame, inlet, args } => self.deliver(frame, inlet, args),
            Continuation::ServiceFetch {
                array,
                index,
                reader_frame,
                reader_inlet,
                presence,
            } => self.service_fetch(array, index, reader_frame, reader_inlet, presence),
            Continuation::ServiceStore {
                array,
                index,
                value,
                presence,
            } => self.service_store(array, index, value, presence),
        }
    }

    fn deliver(&mut self, frame: u32, inlet: InletId, args: ArgBuf) -> Result<(), TamError> {
        let block = self
            .frames
            .get(frame as usize)
            .map(|f| f.block)
            .ok_or_else(|| TamError::BadReference {
                what: format!("deliver to frame {frame}"),
            })?;
        let program = Rc::clone(&self.program);
        let inlet_def = program
            .get(block)
            .inlets
            .get(inlet.0 as usize)
            .ok_or_else(|| TamError::BadReference {
                what: format!("inlet {} of block {}", inlet.0, program.get(block).name),
            })?;
        debug_assert_eq!(
            inlet_def.dsts.len(),
            args.as_slice().len(),
            "inlet arity mismatch in `{}`",
            program.get(block).name
        );
        let f = &mut self.frames[frame as usize];
        for (dst, v) in inlet_def.dsts.iter().zip(args.as_slice()) {
            f.slots[*dst as usize] = *v;
        }
        self.run_thread(frame, inlet_def.thread)
    }

    fn service_fetch(
        &mut self,
        array: u32,
        index: u32,
        reader_frame: u32,
        reader_inlet: InletId,
        presence: bool,
    ) -> Result<(), TamError> {
        if presence {
            let ist =
                self.istructs
                    .get_mut(array as usize)
                    .ok_or_else(|| TamError::BadReference {
                        what: format!("I-structure {array}"),
                    })?;
            let idx = index as usize;
            if idx >= ist.len() {
                return Err(TamError::BadReference {
                    what: format!("I-structure {array}[{idx}] (len {})", ist.len()),
                });
            }
            // Classify the outcome for the message mix before mutating.
            if ist.is_full(idx) {
                self.counts.msgs.pread_full += 1;
            } else if ist.deferred_count(idx) == 0 {
                self.counts.msgs.pread_empty += 1;
            } else {
                self.counts.msgs.pread_deferred += 1;
            }
            match ist.fetch(
                idx,
                Reader {
                    fp: reader_frame,
                    ip: u32::from(reader_inlet.0),
                },
            ) {
                FetchOutcome::Value(v) => {
                    self.counts.msgs.responses += 1;
                    let node = self.frame_node(reader_frame)?;
                    self.push_at(
                        node,
                        Continuation::Deliver {
                            frame: reader_frame,
                            inlet: reader_inlet,
                            args: ArgBuf::new(&[v]),
                        },
                    );
                }
                FetchOutcome::Deferred => {}
            }
        } else {
            let idx = (array & 0x7FFF_FFFF) as usize;
            let arr = self.gmem.get(idx).ok_or_else(|| TamError::BadReference {
                what: format!("global array {array:#x}"),
            })?;
            let v = *arr
                .get(index as usize)
                .ok_or_else(|| TamError::BadReference {
                    what: format!("global array {array:#x}[{index}]"),
                })?;
            self.counts.msgs.responses += 1;
            let node = self.frame_node(reader_frame)?;
            self.push_at(
                node,
                Continuation::Deliver {
                    frame: reader_frame,
                    inlet: reader_inlet,
                    args: ArgBuf::new(&[v]),
                },
            );
        }
        Ok(())
    }

    fn service_store(
        &mut self,
        array: u32,
        index: u32,
        value: u32,
        presence: bool,
    ) -> Result<(), TamError> {
        if presence {
            let ist =
                self.istructs
                    .get_mut(array as usize)
                    .ok_or_else(|| TamError::BadReference {
                        what: format!("I-structure {array}"),
                    })?;
            let idx = index as usize;
            if idx >= ist.len() {
                return Err(TamError::BadReference {
                    what: format!("I-structure {array}[{idx}] (len {})", ist.len()),
                });
            }
            match ist.store(idx, value) {
                Ok(StoreOutcome::FilledEmpty) => {
                    self.counts.msgs.pwrite_empty += 1;
                }
                Ok(StoreOutcome::SatisfiedDeferred(readers)) => {
                    self.counts.msgs.pwrite_deferred_events += 1;
                    self.counts.msgs.pwrite_deferred_readers += readers.len() as u64;
                    self.counts.msgs.responses += readers.len() as u64;
                    for r in readers {
                        let node = self.frame_node(r.fp)?;
                        self.push_at(
                            node,
                            Continuation::Deliver {
                                frame: r.fp,
                                inlet: InletId(r.ip as u16),
                                args: ArgBuf::new(&[value]),
                            },
                        );
                    }
                }
                Err(_) => return Err(TamError::MultipleWrite { array, index: idx }),
            }
        } else {
            let aidx = (array & 0x7FFF_FFFF) as usize;
            let arr = self
                .gmem
                .get_mut(aidx)
                .ok_or_else(|| TamError::BadReference {
                    what: format!("global array {array:#x}"),
                })?;
            let slot = arr
                .get_mut(index as usize)
                .ok_or_else(|| TamError::BadReference {
                    what: format!("global array {array:#x}[{index}]"),
                })?;
            *slot = value;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn run_thread(&mut self, frame: u32, thread: ThreadId) -> Result<(), TamError> {
        let block_id = self.frames[frame as usize].block;
        let node = self.frames[frame as usize].node;
        // Threads are immutable: hold the program by Rc so ops can be
        // borrowed while the machine state mutates.
        let program = Rc::clone(&self.program);
        let ops = &program.get(block_id).threads[thread.0 as usize];
        for op in ops {
            self.counts.bump(op.class());
            match *op {
                TamOp::Imm { dst, value } => {
                    self.frames[frame as usize].slots[dst as usize] = value
                }
                TamOp::Mov { dst, src } => {
                    let v = self.frames[frame as usize].slots[src as usize];
                    self.frames[frame as usize].slots[dst as usize] = v;
                }
                TamOp::Int { op, dst, a, b } => {
                    let f = &mut self.frames[frame as usize].slots;
                    f[dst as usize] = op.apply(f[a as usize], f[b as usize]);
                }
                TamOp::IntI { op, dst, a, imm } => {
                    let f = &mut self.frames[frame as usize].slots;
                    f[dst as usize] = op.apply(f[a as usize], imm);
                }
                TamOp::Float { op, dst, a, b } => {
                    let f = &mut self.frames[frame as usize].slots;
                    f[dst as usize] = op.apply(f[a as usize], f[b as usize]);
                }
                TamOp::Rand { dst } => {
                    let v = self.next_rand();
                    self.frames[frame as usize].slots[dst as usize] = v;
                }
                TamOp::Fork { thread } => {
                    self.push_at(node, Continuation::Run { frame, thread });
                }
                TamOp::Switch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let c = self.frames[frame as usize].slots[cond as usize];
                    let t = if c != 0 { if_true } else { if_false };
                    self.push_at(node, Continuation::Run { frame, thread: t });
                }
                TamOp::Join { counter, thread } => {
                    let f = &mut self.frames[frame as usize].slots;
                    let c = f[counter as usize].wrapping_sub(1);
                    f[counter as usize] = c;
                    if c == 0 {
                        self.push_at(node, Continuation::Run { frame, thread });
                    }
                }
                TamOp::Falloc { block, dst_fp } => {
                    let fp = self.alloc_frame(block);
                    self.frames[frame as usize].slots[dst_fp as usize] = fp;
                }
                TamOp::SendArgs {
                    fp,
                    inlet,
                    ref args,
                } => {
                    let dest = self.frames[frame as usize].slots[fp as usize];
                    let words: Vec<u32> = args
                        .iter()
                        .map(|s| self.frames[frame as usize].slots[*s as usize])
                        .collect();
                    self.counts.msgs.send[words.len().min(2)] += 1;
                    let dest_node = self.frame_node(dest)?;
                    self.push_at(
                        dest_node,
                        Continuation::Deliver {
                            frame: dest,
                            inlet,
                            args: ArgBuf::new(&words),
                        },
                    );
                }
                TamOp::SendArgsDyn {
                    fp,
                    inlet_slot,
                    ref args,
                } => {
                    let dest = self.frames[frame as usize].slots[fp as usize];
                    let inlet =
                        InletId(self.frames[frame as usize].slots[inlet_slot as usize] as u16);
                    let words: Vec<u32> = args
                        .iter()
                        .map(|s| self.frames[frame as usize].slots[*s as usize])
                        .collect();
                    self.counts.msgs.send[words.len().min(2)] += 1;
                    let dest_node = self.frame_node(dest)?;
                    self.push_at(
                        dest_node,
                        Continuation::Deliver {
                            frame: dest,
                            inlet,
                            args: ArgBuf::new(&words),
                        },
                    );
                }
                TamOp::IFetch { arr, idx, inlet } => {
                    let f = &self.frames[frame as usize].slots;
                    let (a, i) = (f[arr as usize], f[idx as usize]);
                    let owner = self.heap_owner(a, i);
                    self.push_at(
                        owner,
                        Continuation::ServiceFetch {
                            array: a,
                            index: i,
                            reader_frame: frame,
                            reader_inlet: inlet,
                            presence: true,
                        },
                    );
                }
                TamOp::IStore { arr, idx, val } => {
                    let f = &self.frames[frame as usize].slots;
                    let (a, i, v) = (f[arr as usize], f[idx as usize], f[val as usize]);
                    let owner = self.heap_owner(a, i);
                    self.push_at(
                        owner,
                        Continuation::ServiceStore {
                            array: a,
                            index: i,
                            value: v,
                            presence: true,
                        },
                    );
                }
                TamOp::HAlloc { dst, len } => {
                    let n = self.frames[frame as usize].slots[len as usize] as usize;
                    let handle = self.istructs.len() as u32;
                    self.istructs.push(IStructure::new(n));
                    self.counts.arrays += 1;
                    self.frames[frame as usize].slots[dst as usize] = handle;
                }
                // Plain global memory has no presence bits, so nothing
                // protects a read that overtakes an earlier write; the real
                // machine's network preserves point-to-point order, which
                // the instant-delivery LIFO scheduler here does not. Plain
                // accesses are therefore serviced at issue (counted as
                // messages all the same); split-phase I-structure traffic
                // keeps queue-based servicing because presence bits make it
                // order-safe.
                TamOp::ReadG { arr, idx, inlet } => {
                    let f = &self.frames[frame as usize].slots;
                    let (a, i) = (f[arr as usize], f[idx as usize]);
                    self.counts.msgs.read += 1;
                    self.service_fetch(a, i, frame, inlet, false)?;
                }
                TamOp::WriteG { arr, idx, val } => {
                    let f = &self.frames[frame as usize].slots;
                    let (a, i, v) = (f[arr as usize], f[idx as usize], f[val as usize]);
                    self.counts.msgs.write += 1;
                    self.service_store(a, i, v, false)?;
                }
                TamOp::GAlloc { dst, len } => {
                    let n = self.frames[frame as usize].slots[len as usize] as usize;
                    let handle = 0x8000_0000 | self.gmem.len() as u32;
                    self.gmem.push(vec![0; n]);
                    self.counts.arrays += 1;
                    self.frames[frame as usize].slots[dst as usize] = handle;
                }
                TamOp::HaltMachine => {
                    self.halted = true;
                    return Ok(());
                }
            }
        }
        self.counts.bump(TamClass::Stop);
        Ok(())
    }
}
