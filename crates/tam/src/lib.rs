//! # tcni-tam — a Threaded Abstract Machine runtime
//!
//! The workload substrate for the TCNI reproduction of Henry & Joerg
//! (ASPLOS 1992). The paper's program-level evaluation (§4.2, Figure 12)
//! compiled Id programs to Berkeley's Threaded Abstract Machine
//! ([CSS+91]), ran them on a TAM instruction-set simulator to obtain
//! dynamic instruction counts per class, and expanded each class into RISC
//! cycles per network-interface model.
//!
//! This crate rebuilds that pipeline: a TAM bytecode ([`TamOp`]) with
//! threads, inlets, frames, and synchronization counters; an interpreter
//! ([`TamMachine`]) with per-node LIFO scheduling that counts dynamic
//! instructions and the message mix; and the benchmark programs —
//! [`programs::matmul`] (blocked 4×4 matrix multiply), [`programs::gamteb`]
//! (Monte Carlo photon transport), and [`programs::fib`] (an extra
//! send-heavy program; the paper notes its other benchmarks "give similar
//! results").
//!
//! ## Example
//!
//! ```
//! use tcni_tam::programs;
//!
//! // A small matrix multiply; counts feed the Figure-12 cost model.
//! let out = programs::matmul::run(8, 2).unwrap();
//! assert!(out.counts.msgs.preads() > 0);
//! assert!(out.counts.flops_per_message() > 0.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod counts;
mod instr;
mod listing;
pub mod programs;
mod runtime;

pub use block::{BlockBuilder, CodeBlock, Inlet, TamProgram};
pub use counts::{MessageMix, TamCounts};
pub use instr::{CodeBlockId, FloatOp, InletId, IntOp, Slot, TamClass, TamOp, ThreadId};
pub use runtime::{RunReport, TamError, TamMachine, MAX_SEND_ARGS};

/// Raw-bit helper: a float constant for [`TamOp::Imm`].
pub fn f32bits(x: f32) -> u32 {
    x.to_bits()
}
