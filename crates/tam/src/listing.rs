//! Human-readable listings of TAM programs — a TL0-style "assembly view"
//! for debugging the hand-built benchmark code blocks.

use std::fmt;

use crate::block::TamProgram;
use crate::instr::{FloatOp, IntOp, TamOp};

fn int_op(op: IntOp) -> &'static str {
    match op {
        IntOp::Add => "iadd",
        IntOp::Sub => "isub",
        IntOp::Mul => "imul",
        IntOp::Div => "idiv",
        IntOp::Rem => "irem",
        IntOp::And => "iand",
        IntOp::Or => "ior",
        IntOp::Xor => "ixor",
        IntOp::Shl => "ishl",
        IntOp::Shr => "ishr",
        IntOp::Lt => "ilt",
        IntOp::Le => "ile",
        IntOp::Eq => "ieq",
        IntOp::Ne => "ine",
    }
}

impl fmt::Display for TamOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamOp::Imm { dst, value } => write!(f, "imm    s{dst} = {value:#x}"),
            TamOp::Mov { dst, src } => write!(f, "mov    s{dst} = s{src}"),
            TamOp::Int { op, dst, a, b } => write!(f, "{:<6} s{dst} = s{a}, s{b}", int_op(*op)),
            TamOp::IntI { op, dst, a, imm } => {
                write!(f, "{:<6} s{dst} = s{a}, #{}", int_op(*op), *imm as i32)
            }
            TamOp::Float { op, dst, a, b } => {
                let name = match op {
                    FloatOp::Add => "fadd",
                    FloatOp::Sub => "fsub",
                    FloatOp::Mul => "fmul",
                    FloatOp::Div => "fdiv",
                    FloatOp::Lt => "flt",
                    FloatOp::FromInt => "itof",
                    FloatOp::ToInt => "ftoi",
                };
                write!(f, "{name:<6} s{dst} = s{a}, s{b}")
            }
            TamOp::Rand { dst } => write!(f, "rand   s{dst}"),
            TamOp::Fork { thread } => write!(f, "fork   t{}", thread.0),
            TamOp::Switch {
                cond,
                if_true,
                if_false,
            } => {
                write!(f, "switch s{cond} ? t{} : t{}", if_true.0, if_false.0)
            }
            TamOp::Join { counter, thread } => write!(f, "join   s{counter} → t{}", thread.0),
            TamOp::Falloc { block, dst_fp } => write!(f, "falloc s{dst_fp} = cb{}", block.0),
            TamOp::SendArgs { fp, inlet, args } => {
                write!(f, "send   [s{fp}].in{} (", inlet.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "s{a}")?;
                }
                f.write_str(")")
            }
            TamOp::SendArgsDyn {
                fp,
                inlet_slot,
                args,
            } => {
                write!(f, "send   [s{fp}].in[s{inlet_slot}] (")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "s{a}")?;
                }
                f.write_str(")")
            }
            TamOp::IFetch { arr, idx, inlet } => {
                write!(f, "ifetch s{arr}[s{idx}] → in{}", inlet.0)
            }
            TamOp::IStore { arr, idx, val } => write!(f, "istore s{arr}[s{idx}] = s{val}"),
            TamOp::HAlloc { dst, len } => write!(f, "halloc s{dst} = [s{len}]"),
            TamOp::ReadG { arr, idx, inlet } => write!(f, "readg  s{arr}[s{idx}] → in{}", inlet.0),
            TamOp::WriteG { arr, idx, val } => write!(f, "writeg s{arr}[s{idx}] = s{val}"),
            TamOp::GAlloc { dst, len } => write!(f, "galloc s{dst} = [s{len}]"),
            TamOp::HaltMachine => f.write_str("halt-machine"),
        }
    }
}

impl fmt::Display for TamProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks().iter().enumerate() {
            writeln!(f, "codeblock cb{i} `{}` (frame {})", b.name, b.frame_size)?;
            for (slot, value) in &b.init {
                writeln!(f, "  .init s{slot} = {value}")?;
            }
            for (j, inlet) in b.inlets.iter().enumerate() {
                let dsts: Vec<String> = inlet.dsts.iter().map(|s| format!("s{s}")).collect();
                writeln!(
                    f,
                    "  inlet in{j} ({}) → t{}",
                    dsts.join(", "),
                    inlet.thread.0
                )?;
            }
            for (j, t) in b.threads.iter().enumerate() {
                writeln!(f, "  thread t{j}:")?;
                for op in t {
                    writeln!(f, "    {op}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::programs;

    #[test]
    fn listing_is_complete_and_readable() {
        let p = programs::fib::build(5);
        let text = p.to_string();
        assert!(text.contains("codeblock cb0 `fib`"));
        assert!(text.contains(".init s4 = 2"));
        assert!(text.contains("inlet in0 (s1, s2)"));
        assert!(text.contains("switch"));
        assert!(text.contains("send   [s1].in[s2]"));
        // Every thread of every block appears.
        for (i, b) in p.blocks().iter().enumerate() {
            for j in 0..b.threads.len() {
                assert!(text.contains(&format!("thread t{j}")), "cb{i} t{j}");
            }
        }
    }

    #[test]
    fn every_op_kind_has_a_listing_form() {
        let p = programs::gamteb::build(1);
        let text = p.to_string();
        for needle in [
            "ifetch", "istore", "readg", "writeg", "halloc", "galloc", "rand", "join", "fork",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in listing");
        }
    }
}
