//! The TAM instruction set.
//!
//! Modelled on TL0, the Threaded Abstract Machine assembly of Culler et
//! al.'s *Fine Grain Parallelism with Minimal Hardware Support* ([CSS+91],
//! the compilation target the paper's benchmarks used). Threads are
//! straight-line sequences of these operations; control flow happens by
//! forking other threads; synchronization by entry counters; communication
//! by inter-frame sends and split-phase heap (I-structure) accesses — every
//! one of which is a network message under the paper's "any two procedure
//! invocations communicate across the network" compilation convention.

use std::fmt;

/// A frame-slot index. All TAM values are 32-bit words, matching the
/// machine's message format.
pub type Slot = u16;

/// Identifies a code block within a [`crate::TamProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeBlockId(pub u32);

/// Identifies a thread within a code block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u16);

/// Identifies an inlet (message-receive handler) within a code block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InletId(pub u16);

/// Integer operations (two's-complement on 32-bit words; comparisons
/// produce 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IntOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Eq,
    Ne,
}

impl IntOp {
    /// Applies the operation.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        let (x, y) = (a as i32, b as i32);
        match self {
            IntOp::Add => x.wrapping_add(y) as u32,
            IntOp::Sub => x.wrapping_sub(y) as u32,
            IntOp::Mul => x.wrapping_mul(y) as u32,
            IntOp::Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y) as u32
                }
            }
            IntOp::Rem => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y) as u32
                }
            }
            IntOp::And => a & b,
            IntOp::Or => a | b,
            IntOp::Xor => a ^ b,
            IntOp::Shl => a.wrapping_shl(b & 31),
            IntOp::Shr => a.wrapping_shr(b & 31),
            IntOp::Lt => u32::from(x < y),
            IntOp::Le => u32::from(x <= y),
            IntOp::Eq => u32::from(a == b),
            IntOp::Ne => u32::from(a != b),
        }
    }
}

/// Floating-point operations on IEEE-754 single precision (stored as raw
/// bits in frame slots); comparisons produce integer 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FloatOp {
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    /// Convert an integer slot to float (`b` ignored).
    FromInt,
    /// Truncate a float slot to integer (`b` ignored).
    ToInt,
}

impl FloatOp {
    /// Applies the operation to raw-bit operands.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        let (x, y) = (f32::from_bits(a), f32::from_bits(b));
        match self {
            FloatOp::Add => (x + y).to_bits(),
            FloatOp::Sub => (x - y).to_bits(),
            FloatOp::Mul => (x * y).to_bits(),
            FloatOp::Div => (x / y).to_bits(),
            FloatOp::Lt => u32::from(x < y),
            FloatOp::FromInt => (a as i32 as f32).to_bits(),
            FloatOp::ToInt => (f32::from_bits(a) as i32) as u32,
        }
    }
}

/// A TAM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum TamOp {
    /// `frame[dst] = value`.
    Imm {
        /// Destination slot.
        dst: Slot,
        /// Constant (raw word; use `f32::to_bits` for floats).
        value: u32,
    },
    /// `frame[dst] = frame[src]`.
    Mov {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
    },
    /// Integer ALU: `frame[dst] = op(frame[a], frame[b])`.
    Int {
        /// Operation.
        op: IntOp,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Integer ALU with immediate: `frame[dst] = op(frame[a], imm)`.
    IntI {
        /// Operation.
        op: IntOp,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Immediate right operand.
        imm: u32,
    },
    /// Floating-point ALU: `frame[dst] = op(frame[a], frame[b])`.
    Float {
        /// Operation.
        op: FloatOp,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot (ignored by unary conversions).
        b: Slot,
    },
    /// Draw a pseudo-random 31-bit integer into `frame[dst]` (Gamteb's
    /// sampling; deterministic per machine seed).
    Rand {
        /// Destination slot.
        dst: Slot,
    },
    /// Schedule another thread of this frame.
    Fork {
        /// Thread to schedule.
        thread: ThreadId,
    },
    /// Schedule one of two threads depending on `frame[cond] != 0`
    /// (TAM's SWITCH).
    Switch {
        /// Condition slot.
        cond: Slot,
        /// Thread when non-zero.
        if_true: ThreadId,
        /// Thread when zero.
        if_false: ThreadId,
    },
    /// Decrement the synchronization counter in `frame[counter]`; schedule
    /// `thread` when it reaches zero (TAM entry counts).
    Join {
        /// Counter slot.
        counter: Slot,
        /// Thread enabled when the counter hits zero.
        thread: ThreadId,
    },
    /// Allocate a frame for `block` (runtime service; placement is
    /// round-robin across nodes) and store its global frame pointer.
    Falloc {
        /// Code block to instantiate.
        block: CodeBlockId,
        /// Slot receiving the new frame pointer.
        dst_fp: Slot,
    },
    /// Send `args` (0–2 payload words) to an inlet of the frame named by
    /// `frame[fp]` — a `Send(k)` message.
    SendArgs {
        /// Slot holding the destination frame pointer.
        fp: Slot,
        /// Inlet of the destination code block.
        inlet: InletId,
        /// Payload slots (at most [`crate::MAX_SEND_ARGS`]).
        args: Vec<Slot>,
    },
    /// Send `args` to an inlet whose number is taken from a frame slot —
    /// the general continuation form (the reply side of call/return passes
    /// `(fp, inlet)` pairs around). Also a `Send(k)` message.
    SendArgsDyn {
        /// Slot holding the destination frame pointer.
        fp: Slot,
        /// Slot holding the destination inlet number.
        inlet_slot: Slot,
        /// Payload slots.
        args: Vec<Slot>,
    },
    /// Split-phase I-structure read of `array[frame[idx]]` — a `PRead`
    /// message; the value arrives at `inlet` of this frame.
    IFetch {
        /// Slot holding the array handle.
        arr: Slot,
        /// Slot holding the element index.
        idx: Slot,
        /// Inlet of this code block that receives the value.
        inlet: InletId,
    },
    /// I-structure write of `array[frame[idx]] = frame[val]` — a `PWrite`
    /// message.
    IStore {
        /// Slot holding the array handle.
        arr: Slot,
        /// Slot holding the element index.
        idx: Slot,
        /// Slot holding the value.
        val: Slot,
    },
    /// Allocate an I-structure array of `frame[len]` slots (runtime
    /// service; elements are distributed across nodes).
    HAlloc {
        /// Slot receiving the array handle.
        dst: Slot,
        /// Slot holding the length.
        len: Slot,
    },
    /// Split-phase read of plain (non-presence) global memory — a `Read`
    /// message; the value arrives at `inlet`.
    ReadG {
        /// Slot holding the global address (array handle, plain array).
        arr: Slot,
        /// Slot holding the element index.
        idx: Slot,
        /// Inlet of this code block that receives the value.
        inlet: InletId,
    },
    /// Write to plain global memory — a `Write` message.
    WriteG {
        /// Slot holding the global address.
        arr: Slot,
        /// Slot holding the element index.
        idx: Slot,
        /// Slot holding the value.
        val: Slot,
    },
    /// Allocate a plain global array (runtime service).
    GAlloc {
        /// Slot receiving the handle.
        dst: Slot,
        /// Slot holding the length.
        len: Slot,
    },
    /// Stop the whole machine (main's final thread).
    HaltMachine,
}

/// Dynamic instruction classes, the unit of Figure-12 accounting.
///
/// Message classes (`SendArgs`, `IFetch`, `IStore`, `ReadG`, `WriteG`) are
/// costed from Table 1; the others get fixed RISC-cycle costs (see
/// `tcni-eval`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TamClass {
    Move,
    IntAlu,
    FloatAlu,
    Rand,
    Control,
    Fork,
    Join,
    Falloc,
    HeapAlloc,
    Stop,
    SendArgs,
    IFetch,
    IStore,
    ReadG,
    WriteG,
}

impl TamClass {
    /// All classes, in display order.
    pub const ALL: [TamClass; 15] = [
        TamClass::Move,
        TamClass::IntAlu,
        TamClass::FloatAlu,
        TamClass::Rand,
        TamClass::Control,
        TamClass::Fork,
        TamClass::Join,
        TamClass::Falloc,
        TamClass::HeapAlloc,
        TamClass::Stop,
        TamClass::SendArgs,
        TamClass::IFetch,
        TamClass::IStore,
        TamClass::ReadG,
        TamClass::WriteG,
    ];

    /// Index into count arrays.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class in ALL")
    }

    /// Whether this class expands into a network message.
    pub fn is_message(self) -> bool {
        matches!(
            self,
            TamClass::SendArgs
                | TamClass::IFetch
                | TamClass::IStore
                | TamClass::ReadG
                | TamClass::WriteG
        )
    }
}

impl fmt::Display for TamClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TamClass::Move => "move",
            TamClass::IntAlu => "int-alu",
            TamClass::FloatAlu => "float-alu",
            TamClass::Rand => "rand",
            TamClass::Control => "control",
            TamClass::Fork => "fork",
            TamClass::Join => "join",
            TamClass::Falloc => "falloc",
            TamClass::HeapAlloc => "heap-alloc",
            TamClass::Stop => "stop",
            TamClass::SendArgs => "send-args",
            TamClass::IFetch => "ifetch",
            TamClass::IStore => "istore",
            TamClass::ReadG => "read-global",
            TamClass::WriteG => "write-global",
        };
        f.write_str(s)
    }
}

impl TamOp {
    /// The accounting class of this operation.
    pub fn class(&self) -> TamClass {
        match self {
            TamOp::Imm { .. } | TamOp::Mov { .. } => TamClass::Move,
            TamOp::Int { .. } | TamOp::IntI { .. } => TamClass::IntAlu,
            TamOp::Float { .. } => TamClass::FloatAlu,
            TamOp::Rand { .. } => TamClass::Rand,
            TamOp::Switch { .. } => TamClass::Control,
            TamOp::Fork { .. } => TamClass::Fork,
            TamOp::Join { .. } => TamClass::Join,
            TamOp::Falloc { .. } => TamClass::Falloc,
            TamOp::HAlloc { .. } | TamOp::GAlloc { .. } => TamClass::HeapAlloc,
            TamOp::SendArgs { .. } | TamOp::SendArgsDyn { .. } => TamClass::SendArgs,
            TamOp::IFetch { .. } => TamClass::IFetch,
            TamOp::IStore { .. } => TamClass::IStore,
            TamOp::ReadG { .. } => TamClass::ReadG,
            TamOp::WriteG { .. } => TamClass::WriteG,
            TamOp::HaltMachine => TamClass::Control,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_op_semantics() {
        assert_eq!(IntOp::Add.apply(3, (-1i32) as u32), 2);
        assert_eq!(IntOp::Div.apply(7, 2), 3);
        assert_eq!(IntOp::Div.apply(7, 0), 0);
        assert_eq!(IntOp::Lt.apply((-1i32) as u32, 0), 1);
        assert_eq!(IntOp::Eq.apply(5, 5), 1);
    }

    #[test]
    fn float_op_semantics() {
        let two = 2.0f32.to_bits();
        let half = 0.5f32.to_bits();
        assert_eq!(f32::from_bits(FloatOp::Mul.apply(two, half)), 1.0);
        assert_eq!(FloatOp::ToInt.apply(2.9f32.to_bits(), 0), 2);
        assert_eq!(f32::from_bits(FloatOp::FromInt.apply(7, 0)), 7.0);
    }

    #[test]
    fn classes_cover_all_ops() {
        for c in TamClass::ALL {
            assert_eq!(TamClass::ALL[c.index()], c);
        }
        assert!(TamClass::IFetch.is_message());
        assert!(!TamClass::FloatAlu.is_message());
    }
}
