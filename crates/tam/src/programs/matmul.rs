//! Blocked matrix multiply — the paper's first Figure-12 benchmark.
//!
//! "The matrix multiply program subdivides matrices into 4 by 4 blocks and
//! computes their products" (§4.2). Structure:
//!
//! * `main` allocates I-structure arrays `A`, `B`, `C` (`n×n` each), spawns
//!   two `fill` invocations that produce `A` and `B`, and — without waiting,
//!   Id being non-strict — spawns one `block_job` invocation per 4×4 output
//!   block. Consumers therefore race producers, and the PRead
//!   full/empty/deferred mix arises naturally, exactly the quantity the
//!   paper measured with Mint.
//! * each `block_job(bi, bj)` loops over the `n/4` block row/column,
//!   fetching a 4×4 block of `A` and of `B` (32 `PRead`s), synchronizing on
//!   an entry counter, and accumulating 64 multiply-adds — ≈3 floating-point
//!   operations per message, matching the paper's grain-size remark — then
//!   stores its 16 results (`PWrite`s) and signals `main` (`Send(0)`).
//!
//! At `n = 100` this reproduces the paper's left bar group of Figure 12.

use crate::block::TamProgram;
use crate::counts::TamCounts;
use crate::instr::{InletId, IntOp, TamOp, ThreadId};
use crate::runtime::{TamError, TamMachine};

use super::util::{ii, imm};

/// Result of a matmul run.
#[derive(Debug, Clone)]
pub struct Output {
    /// Dynamic instruction counts and message mix.
    pub counts: TamCounts,
    /// The computed product, row-major.
    pub c: Vec<f32>,
    /// Matrix dimension.
    pub n: usize,
}

impl Output {
    /// Element `C[i][j]`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn c(&self, i: usize, j: usize) -> f32 {
        self.c[i * self.n + j]
    }
}

/// The fill function: `A[idx] = B[idx] = (idx mod 7)` as a float. Small
/// integers keep every intermediate product exact in `f32`, so correctness
/// checks can use exact comparison.
pub fn fill_value(idx: usize) -> f32 {
    (idx % 7) as f32
}

/// The reference product for validation.
pub fn reference(n: usize) -> Vec<f32> {
    let a: Vec<f32> = (0..n * n).map(fill_value).collect();
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k] * a[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Builds the TAM program for an `n×n` multiply (n divisible by 4).
pub fn build(n: usize) -> TamProgram {
    assert!(
        n >= 4 && n.is_multiple_of(4),
        "n must be a positive multiple of 4"
    );
    let n32 = n as u32;
    let nb = (n / 4) as u32;
    let nn = (n * n) as u32;

    let mut p = TamProgram::new();

    // ---- fill: writes `arr[i] = fill_value(i)` for i in 0..n*n -----------
    // slots: 0 SELF, 1 arr, 2 parent, 3 i, 4 val, 5 tmp, 6 cmp
    let fill = p.block("fill", 7, |b| {
        let t_loop = b.declare_thread();
        let t_done = b.declare_thread();
        let t_entry = b.thread(vec![imm(3, 0), TamOp::Fork { thread: t_loop }]);
        b.define_thread(
            t_loop,
            vec![
                ii(IntOp::Rem, 5, 3, 7),
                TamOp::Float {
                    op: crate::FloatOp::FromInt,
                    dst: 4,
                    a: 5,
                    b: 5,
                },
                TamOp::IStore {
                    arr: 1,
                    idx: 3,
                    val: 4,
                },
                ii(IntOp::Add, 3, 3, 1),
                ii(IntOp::Lt, 6, 3, nn as i32),
                TamOp::Switch {
                    cond: 6,
                    if_true: t_loop,
                    if_false: t_done,
                },
            ],
        );
        // Send(0): tell main this producer finished.
        b.define_thread(
            t_done,
            vec![TamOp::SendArgs {
                fp: 2,
                inlet: MAIN_DONE_INLET,
                args: vec![],
            }],
        );
        let args = b.inlet(vec![1, 2], t_entry);
        assert_eq!(args, FILL_ARGS_INLET);
    });

    // ---- block_job: one 4×4 output block ---------------------------------
    // slots: 0 SELF, 1 bi, 2 bj, 3 A, 4 B, 5 C, 6 parent, 7 argcnt, 8 bk,
    //        9 fetchcnt, 10..25 a[e], 26..41 b[e], 42..57 c[e],
    //        58/59 idx tmps, 60 cmp, 61 prod tmp
    let block_job = p.block("block_job", 62, |b| {
        b.init(7, 3); // three argument messages
        let t_arg = b.declare_thread();
        let t_start = b.declare_thread();
        let t_bk = b.declare_thread();
        let t_fetch = b.declare_thread();
        let t_joinf = b.declare_thread();
        let t_compute = b.declare_thread();
        let t_store = b.declare_thread();

        // Inlets: argument pairs then the 32 element inlets.
        let ab = b.inlet(vec![3, 4], t_arg);
        let cp = b.inlet(vec![5, 6], t_arg);
        let bij = b.inlet(vec![1, 2], t_arg);
        assert_eq!((ab, cp, bij), (BJ_AB_INLET, BJ_CP_INLET, BJ_BIJ_INLET));
        let mut a_inlets = Vec::new();
        let mut b_inlets = Vec::new();
        for e in 0..16u16 {
            a_inlets.push(b.inlet(vec![10 + e], t_joinf));
        }
        for e in 0..16u16 {
            b_inlets.push(b.inlet(vec![26 + e], t_joinf));
        }

        b.define_thread(
            t_arg,
            vec![TamOp::Join {
                counter: 7,
                thread: t_start,
            }],
        );

        let mut start_ops = vec![imm(8, 0)];
        for e in 0..16u16 {
            start_ops.push(imm(42 + e, 0)); // f32 0.0 has bit pattern 0
        }
        start_ops.push(TamOp::Fork { thread: t_bk });
        b.define_thread(t_start, start_ops);

        b.define_thread(
            t_bk,
            vec![
                ii(IntOp::Lt, 60, 8, nb as i32),
                TamOp::Switch {
                    cond: 60,
                    if_true: t_fetch,
                    if_false: t_store,
                },
            ],
        );

        // Fetch a 4×4 block of A (rows 4bi+r, cols 4bk+k) and of B
        // (rows 4bk+k, cols 4bj+c).
        let mut fetch_ops = vec![imm(9, 32)];
        for e in 0..16u16 {
            let (r, k) = (e / 4, e % 4);
            fetch_ops.extend([
                ii(IntOp::Mul, 58, 1, 4),
                ii(IntOp::Add, 58, 58, i32::from(r)),
                ii(IntOp::Mul, 58, 58, n32 as i32),
                ii(IntOp::Mul, 59, 8, 4),
                ii(IntOp::Add, 59, 59, i32::from(k)),
                TamOp::Int {
                    op: IntOp::Add,
                    dst: 58,
                    a: 58,
                    b: 59,
                },
                TamOp::IFetch {
                    arr: 3,
                    idx: 58,
                    inlet: a_inlets[e as usize],
                },
            ]);
        }
        for e in 0..16u16 {
            let (k, c) = (e / 4, e % 4);
            fetch_ops.extend([
                ii(IntOp::Mul, 58, 8, 4),
                ii(IntOp::Add, 58, 58, i32::from(k)),
                ii(IntOp::Mul, 58, 58, n32 as i32),
                ii(IntOp::Mul, 59, 2, 4),
                ii(IntOp::Add, 59, 59, i32::from(c)),
                TamOp::Int {
                    op: IntOp::Add,
                    dst: 58,
                    a: 58,
                    b: 59,
                },
                TamOp::IFetch {
                    arr: 4,
                    idx: 58,
                    inlet: b_inlets[e as usize],
                },
            ]);
        }
        b.define_thread(t_fetch, fetch_ops);

        b.define_thread(
            t_joinf,
            vec![TamOp::Join {
                counter: 9,
                thread: t_compute,
            }],
        );

        // 4×4×4 multiply-accumulate: 128 floating-point operations.
        let mut comp_ops = Vec::new();
        for r in 0..4u16 {
            for c in 0..4u16 {
                for k in 0..4u16 {
                    comp_ops.push(TamOp::Float {
                        op: crate::FloatOp::Mul,
                        dst: 61,
                        a: 10 + r * 4 + k,
                        b: 26 + k * 4 + c,
                    });
                    comp_ops.push(TamOp::Float {
                        op: crate::FloatOp::Add,
                        dst: 42 + r * 4 + c,
                        a: 42 + r * 4 + c,
                        b: 61,
                    });
                }
            }
        }
        comp_ops.push(ii(IntOp::Add, 8, 8, 1));
        comp_ops.push(TamOp::Fork { thread: t_bk });
        b.define_thread(t_compute, comp_ops);

        // Store the 16 results and signal completion.
        let mut store_ops = Vec::new();
        for e in 0..16u16 {
            let (r, c) = (e / 4, e % 4);
            store_ops.extend([
                ii(IntOp::Mul, 58, 1, 4),
                ii(IntOp::Add, 58, 58, i32::from(r)),
                ii(IntOp::Mul, 58, 58, n32 as i32),
                ii(IntOp::Mul, 59, 2, 4),
                ii(IntOp::Add, 59, 59, i32::from(c)),
                TamOp::Int {
                    op: IntOp::Add,
                    dst: 58,
                    a: 58,
                    b: 59,
                },
                TamOp::IStore {
                    arr: 5,
                    idx: 58,
                    val: 42 + e,
                },
            ]);
        }
        store_ops.push(TamOp::SendArgs {
            fp: 6,
            inlet: MAIN_DONE_INLET,
            args: vec![],
        });
        b.define_thread(t_store, store_ops);
    });

    // ---- main -------------------------------------------------------------
    // slots: 0 SELF, 1 n, 2 A, 3 B, 4 C, 5 nn, 6 completions, 7 child,
    //        8 bi, 9 bj, 10 cmp, 11 (unused), 12 done flag
    p.block("main", 13, |b| {
        // Completions: 2 fills + nb*nb block jobs.
        b.init(6, 2 + nb * nb);
        // Thread 0 is the program entry (spawn_main schedules it).
        let t_entry = b.declare_thread();
        let t_spawn_loop = b.declare_thread();
        let t_row = b.declare_thread();
        let t_spawned = b.declare_thread();
        let t_join = b.declare_thread();
        let t_done = b.declare_thread();

        let entry = vec![
            imm(1, n32),
            ii(IntOp::Mul, 5, 1, n32 as i32),
            TamOp::HAlloc { dst: 2, len: 5 },
            TamOp::HAlloc { dst: 3, len: 5 },
            TamOp::HAlloc { dst: 4, len: 5 },
            // Producers…
            TamOp::Falloc {
                block: fill,
                dst_fp: 7,
            },
            TamOp::SendArgs {
                fp: 7,
                inlet: FILL_ARGS_INLET,
                args: vec![2, 0],
            },
            TamOp::Falloc {
                block: fill,
                dst_fp: 7,
            },
            TamOp::SendArgs {
                fp: 7,
                inlet: FILL_ARGS_INLET,
                args: vec![3, 0],
            },
            // …and consumers, concurrently (non-strictness).
            imm(8, 0),
            imm(9, 0),
            TamOp::Fork {
                thread: t_spawn_loop,
            },
        ];
        b.define_thread(t_entry, entry);
        assert_eq!(t_entry, ThreadId(0), "spawn_main runs thread 0");

        b.define_thread(
            t_spawn_loop,
            vec![
                TamOp::Falloc {
                    block: block_job,
                    dst_fp: 7,
                },
                TamOp::SendArgs {
                    fp: 7,
                    inlet: BJ_AB_INLET,
                    args: vec![2, 3],
                },
                TamOp::SendArgs {
                    fp: 7,
                    inlet: BJ_CP_INLET,
                    args: vec![4, 0],
                },
                TamOp::SendArgs {
                    fp: 7,
                    inlet: BJ_BIJ_INLET,
                    args: vec![8, 9],
                },
                ii(IntOp::Add, 9, 9, 1),
                ii(IntOp::Eq, 10, 9, nb as i32),
                TamOp::Switch {
                    cond: 10,
                    if_true: t_row,
                    if_false: t_spawn_loop,
                },
            ],
        );
        b.define_thread(
            t_row,
            vec![
                imm(9, 0),
                ii(IntOp::Add, 8, 8, 1),
                ii(IntOp::Lt, 10, 8, nb as i32),
                TamOp::Switch {
                    cond: 10,
                    if_true: t_spawn_loop,
                    if_false: t_spawned,
                },
            ],
        );
        b.define_thread(t_spawned, vec![TamOp::Mov { dst: 10, src: 10 }]);
        b.define_thread(
            t_join,
            vec![TamOp::Join {
                counter: 6,
                thread: t_done,
            }],
        );
        b.define_thread(t_done, vec![imm(12, 1)]);

        let done = b.inlet(vec![], t_join);
        assert_eq!(done, MAIN_DONE_INLET);
    });

    p
}

/// Inlet numbering contracts between blocks (asserted in [`build`]).
const FILL_ARGS_INLET: InletId = InletId(0);
const BJ_AB_INLET: InletId = InletId(0);
const BJ_CP_INLET: InletId = InletId(1);
const BJ_BIJ_INLET: InletId = InletId(2);
const MAIN_DONE_INLET: InletId = InletId(0);

/// Runs the benchmark on `nodes` logical nodes.
///
/// # Errors
///
/// Propagates [`TamError`] (a multiple write would indicate a program bug).
pub fn run(n: usize, nodes: usize) -> Result<Output, TamError> {
    let program = build(n);
    let main = program.lookup("main").expect("main exists");
    let mut m = TamMachine::new(program, nodes, 0x5EED);
    let root = m.spawn_main(main);
    // Generous budget: ~50 continuations per element-fetch.
    let budget = (n as u64).pow(2) * 2_000 + 100_000;
    m.run(budget)?;
    assert_eq!(m.frame_slot(root, 12), 1, "main must observe completion");
    let c_handle = m.frame_slot(root, 4);
    let ist = m.istructure(c_handle).expect("C is an I-structure");
    let c: Vec<f32> = (0..n * n)
        .map(|i| f32::from_bits(ist.peek(i).expect("C fully written")))
        .collect();
    Ok(Output {
        counts: *m.counts(),
        c,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TamClass;

    #[test]
    fn small_product_matches_reference() {
        let out = run(8, 4).unwrap();
        let reference = reference(8);
        assert_eq!(out.c, reference, "blocked TAM product must equal reference");
    }

    #[test]
    fn twelve_by_twelve_on_various_node_counts() {
        let reference = reference(12);
        for nodes in [1, 3, 16] {
            let out = run(12, nodes).unwrap();
            assert_eq!(out.c, reference, "nodes={nodes}");
        }
    }

    #[test]
    fn message_mix_is_plausible() {
        let n = 8;
        let nb = (n / 4) as u64;
        let out = run(n, 4).unwrap();
        let m = &out.counts.msgs;
        // 32 PReads per block-job bk-iteration.
        assert_eq!(m.preads(), nb * nb * nb * 32);
        // Every element of A, B, C is PWritten exactly once.
        assert_eq!(m.pwrites(), 3 * (n * n) as u64);
        // Every PRead eventually produces exactly one value reply.
        assert_eq!(m.responses, m.preads());
        // Fine-grain ratio: a handful of FP ops per message (paper: ~3).
        let f = out.counts.flops_per_message();
        assert!(f > 1.0 && f < 8.0, "flops/message = {f}");
        // The consumer/producer race must actually defer some readers.
        assert!(
            m.pread_deferred + m.pread_empty > 0,
            "expected deferrals: {m:?}"
        );
        assert!(m.pwrite_deferred_events > 0);
    }

    #[test]
    fn deterministic_counts() {
        let a = run(8, 4).unwrap();
        let b = run(8, 4).unwrap();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn float_work_dominates_over_messages_modestly() {
        let out = run(8, 4).unwrap();
        // 128 FP ops per (block, bk) iteration.
        let nb = 2u64;
        assert!(out.counts.ops(TamClass::FloatAlu) >= nb * nb * nb * 128);
        // The paper: "dynamic frequency of executing a message sending
        // instruction … is under 10%".
        assert!(out.counts.message_op_fraction() < 0.25);
    }
}
