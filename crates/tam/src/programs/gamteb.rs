//! Gamteb — Monte Carlo photon transport, the paper's second Figure-12
//! benchmark.
//!
//! The original Gamteb (from the Los Alamos benchmark suite, written in Id)
//! tracks photons through a carbon cylinder. We reproduce its *computational
//! shape* rather than its physics (per the substitution policy in
//! DESIGN.md): photons carry an energy bin and undergo collisions; each
//! collision samples a random number and looks up a scattering probability
//! in a shared cross-section table (an I-structure, so lookups are `PRead`
//! messages and early photons defer behind the table producer); photons that
//! stop scattering consult a geometry constant (`Read` message) and either
//! escape or are absorbed; every terminated photon sends its weight to a
//! tally frame (`Send(1)`). The scale parameter — the paper runs "16
//! Gamteb" — is the number of source batches.
//!
//! The result is an irregular, data-dependent message mix over `Send`,
//! `Read`, `PRead`, and `PWrite` traffic, which is what Figure 12 needs.

use crate::block::TamProgram;
use crate::counts::TamCounts;
use crate::instr::{InletId, IntOp, TamOp};
use crate::runtime::{TamError, TamMachine};
use crate::FloatOp;

use super::util::{fimm, ii, imm};

/// Number of energy bins in the cross-section table.
pub const NBINS: u32 = 8;

/// Photons per source batch.
pub const PHOTONS_PER_BATCH: u32 = 64;

/// Scale of 2^-31: converts `Rand`'s 31-bit integers to [0, 1).
const RAND_SCALE: f32 = 4.656_613e-10;

/// Result of a Gamteb run.
#[derive(Debug, Clone)]
pub struct Output {
    /// Dynamic instruction counts and message mix.
    pub counts: TamCounts,
    /// Photons absorbed in the medium.
    pub absorbed: u32,
    /// Photons that escaped the cylinder.
    pub escaped: u32,
    /// Photons sourced.
    pub total: u32,
}

const TALLY_ABSORB: InletId = InletId(0);
const TALLY_ESCAPE: InletId = InletId(1);
const TALLY_ARGS: InletId = InletId(2);
const MAIN_DONE: InletId = InletId(0);
const ARGS0: InletId = InletId(0);
const PHOTON_SIGMA: InletId = InletId(1);
const PHOTON_GEOM: InletId = InletId(2);

/// Builds the program for `batches` source batches.
pub fn build(batches: u32) -> TamProgram {
    assert!(batches > 0, "need at least one batch");
    let total = batches * PHOTONS_PER_BATCH;
    let mut p = TamProgram::new();

    // ---- xsfill: produces the cross-section table -------------------------
    // xs[e] = 0.3 + 0.08 e — scattering probability per energy bin.
    // slots: 0 SELF, 1 xs, 2 i, 3 sigma, 4 tmp, 5 cmp
    let xsfill = p.block("xsfill", 6, |b| {
        let t_loop = b.declare_thread();
        let t_end = b.declare_thread();
        let t_entry = b.thread(vec![imm(2, 0), TamOp::Fork { thread: t_loop }]);
        b.define_thread(
            t_loop,
            vec![
                TamOp::Float {
                    op: FloatOp::FromInt,
                    dst: 3,
                    a: 2,
                    b: 2,
                },
                fimm(4, 0.08),
                TamOp::Float {
                    op: FloatOp::Mul,
                    dst: 3,
                    a: 3,
                    b: 4,
                },
                fimm(4, 0.3),
                TamOp::Float {
                    op: FloatOp::Add,
                    dst: 3,
                    a: 3,
                    b: 4,
                },
                TamOp::IStore {
                    arr: 1,
                    idx: 2,
                    val: 3,
                },
                ii(IntOp::Add, 2, 2, 1),
                ii(IntOp::Lt, 5, 2, NBINS as i32),
                TamOp::Switch {
                    cond: 5,
                    if_true: t_loop,
                    if_false: t_end,
                },
            ],
        );
        b.define_thread(t_end, vec![TamOp::Mov { dst: 5, src: 5 }]);
        let args = b.inlet(vec![1], t_entry);
        assert_eq!(args, ARGS0);
    });

    // ---- tally: accumulates photon fates, reports to main -----------------
    // slots: 0 SELF, 1 main fp, 2 absorbed, 3 escaped, 4 remaining, 5 wtmp
    let tally = p.block("tally", 6, |b| {
        b.init(4, total + 1); // all photons + the argument message
        let t_a = b.declare_thread();
        let t_e = b.declare_thread();
        let t_arg = b.declare_thread();
        let t_done = b.declare_thread();
        b.define_thread(
            t_a,
            vec![
                ii(IntOp::Add, 2, 2, 1),
                TamOp::Join {
                    counter: 4,
                    thread: t_done,
                },
            ],
        );
        b.define_thread(
            t_e,
            vec![
                ii(IntOp::Add, 3, 3, 1),
                TamOp::Join {
                    counter: 4,
                    thread: t_done,
                },
            ],
        );
        b.define_thread(
            t_arg,
            vec![TamOp::Join {
                counter: 4,
                thread: t_done,
            }],
        );
        b.define_thread(
            t_done,
            vec![TamOp::SendArgs {
                fp: 1,
                inlet: MAIN_DONE,
                args: vec![],
            }],
        );
        let absorb = b.inlet(vec![5], t_a);
        let escape = b.inlet(vec![5], t_e);
        let args = b.inlet(vec![1], t_arg);
        assert_eq!(
            (absorb, escape, args),
            (TALLY_ABSORB, TALLY_ESCAPE, TALLY_ARGS)
        );
    });

    // ---- photon: one history --------------------------------------------
    // slots: 0 SELF, 1 tally, 2 e, 3 weight, 4 r, 5 sigma, 6 rf, 7 cmp,
    //        8 const, 9 pesc, 10 handle
    let photon = p.block("photon", 11, |b| {
        let t_track = b.declare_thread();
        let t_decide = b.declare_thread();
        let t_scatter = b.declare_thread();
        let t_exit_try = b.declare_thread();
        let t_exit_decide = b.declare_thread();
        let t_absorb = b.declare_thread();
        let t_escape = b.declare_thread();

        let args = b.inlet(vec![1, 2], t_track);
        let sigma_in = b.inlet(vec![5], t_decide);
        let geom_in = b.inlet(vec![9], t_exit_decide);
        assert_eq!(
            (args, sigma_in, geom_in),
            (ARGS0, PHOTON_SIGMA, PHOTON_GEOM)
        );

        // Collision: sample r, look up σ_s(e) in the shared table (PRead).
        b.define_thread(
            t_track,
            vec![
                TamOp::Rand { dst: 4 },
                TamOp::Float {
                    op: FloatOp::FromInt,
                    dst: 6,
                    a: 4,
                    b: 4,
                },
                fimm(8, RAND_SCALE),
                TamOp::Float {
                    op: FloatOp::Mul,
                    dst: 6,
                    a: 6,
                    b: 8,
                },
                imm(10, XS_HANDLE),
                TamOp::IFetch {
                    arr: 10,
                    idx: 2,
                    inlet: sigma_in,
                },
            ],
        );
        b.define_thread(
            t_decide,
            vec![
                TamOp::Float {
                    op: FloatOp::Lt,
                    dst: 7,
                    a: 6,
                    b: 5,
                },
                TamOp::Switch {
                    cond: 7,
                    if_true: t_scatter,
                    if_false: t_exit_try,
                },
            ],
        );
        // Compton scattering: lose one energy bin; full absorption at e < 0.
        b.define_thread(
            t_scatter,
            vec![
                ii(IntOp::Sub, 2, 2, 1),
                ii(IntOp::Lt, 7, 2, 0),
                TamOp::Switch {
                    cond: 7,
                    if_true: t_absorb,
                    if_false: t_track,
                },
            ],
        );
        // No scatter: consult the geometry (plain Read) for the escape
        // probability.
        b.define_thread(
            t_exit_try,
            vec![
                imm(10, GEOM_HANDLE),
                imm(8, 0),
                TamOp::ReadG {
                    arr: 10,
                    idx: 8,
                    inlet: geom_in,
                },
            ],
        );
        b.define_thread(
            t_exit_decide,
            vec![
                TamOp::Rand { dst: 4 },
                TamOp::Float {
                    op: FloatOp::FromInt,
                    dst: 6,
                    a: 4,
                    b: 4,
                },
                fimm(8, RAND_SCALE),
                TamOp::Float {
                    op: FloatOp::Mul,
                    dst: 6,
                    a: 6,
                    b: 8,
                },
                TamOp::Float {
                    op: FloatOp::Lt,
                    dst: 7,
                    a: 6,
                    b: 9,
                },
                TamOp::Switch {
                    cond: 7,
                    if_true: t_escape,
                    if_false: t_absorb,
                },
            ],
        );
        b.define_thread(
            t_absorb,
            vec![
                fimm(3, 1.0),
                TamOp::SendArgs {
                    fp: 1,
                    inlet: TALLY_ABSORB,
                    args: vec![3],
                },
            ],
        );
        b.define_thread(
            t_escape,
            vec![
                fimm(3, 1.0),
                TamOp::SendArgs {
                    fp: 1,
                    inlet: TALLY_ESCAPE,
                    args: vec![3],
                },
            ],
        );
    });

    // ---- batch: sources PHOTONS_PER_BATCH photons -------------------------
    // slots: 0 SELF, 1 tally, 2 batch#, 3 p, 4 child, 5 cmp, 6 e0
    let batch = p.block("batch", 7, |b| {
        let t_loop = b.declare_thread();
        let t_end = b.declare_thread();
        let t_entry = b.thread(vec![imm(3, 0), TamOp::Fork { thread: t_loop }]);
        b.define_thread(
            t_loop,
            vec![
                TamOp::Falloc {
                    block: photon,
                    dst_fp: 4,
                },
                imm(6, NBINS - 1), // source photons at the highest energy
                TamOp::SendArgs {
                    fp: 4,
                    inlet: ARGS0,
                    args: vec![1, 6],
                },
                ii(IntOp::Add, 3, 3, 1),
                ii(IntOp::Lt, 5, 3, PHOTONS_PER_BATCH as i32),
                TamOp::Switch {
                    cond: 5,
                    if_true: t_loop,
                    if_false: t_end,
                },
            ],
        );
        b.define_thread(t_end, vec![TamOp::Mov { dst: 5, src: 5 }]);
        let args = b.inlet(vec![1, 2], t_entry);
        assert_eq!(args, ARGS0);
    });

    // ---- main -------------------------------------------------------------
    // slots: 0 SELF, 1 xs, 2 geom, 3 tally, 4 child, 5 tmp, 6 done, 7 len,
    //        8 b, 9 cmp
    p.block("main", 10, |b| {
        let t_entry = b.declare_thread();
        let t_spawn = b.declare_thread();
        let t_spawned = b.declare_thread();
        let t_done = b.declare_thread();
        b.define_thread(
            t_entry,
            vec![
                imm(7, NBINS),
                TamOp::HAlloc { dst: 1, len: 7 }, // handle 0 = XS_HANDLE
                imm(7, 4),
                TamOp::GAlloc { dst: 2, len: 7 }, // handle 0x8000_0000 = GEOM
                fimm(5, 0.4),                     // escape probability
                imm(7, 0),
                TamOp::WriteG {
                    arr: 2,
                    idx: 7,
                    val: 5,
                },
                TamOp::Falloc {
                    block: tally,
                    dst_fp: 3,
                },
                TamOp::SendArgs {
                    fp: 3,
                    inlet: TALLY_ARGS,
                    args: vec![0],
                },
                TamOp::Falloc {
                    block: xsfill,
                    dst_fp: 4,
                },
                TamOp::SendArgs {
                    fp: 4,
                    inlet: ARGS0,
                    args: vec![1],
                },
                imm(8, 0),
                TamOp::Fork { thread: t_spawn },
            ],
        );
        b.define_thread(
            t_spawn,
            vec![
                TamOp::Falloc {
                    block: batch,
                    dst_fp: 4,
                },
                TamOp::SendArgs {
                    fp: 4,
                    inlet: ARGS0,
                    args: vec![3, 8],
                },
                ii(IntOp::Add, 8, 8, 1),
                ii(IntOp::Lt, 9, 8, batches as i32),
                TamOp::Switch {
                    cond: 9,
                    if_true: t_spawn,
                    if_false: t_spawned,
                },
            ],
        );
        b.define_thread(t_spawned, vec![TamOp::Mov { dst: 9, src: 9 }]);
        b.define_thread(t_done, vec![imm(6, 1)]);
        let done = b.inlet(vec![], t_done);
        assert_eq!(done, MAIN_DONE);
    });

    let _ = xsfill;
    p
}

/// The cross-section table is the program's first I-structure allocation.
const XS_HANDLE: u32 = 0;
/// The geometry table is the program's first plain-global allocation.
const GEOM_HANDLE: u32 = 0x8000_0000;

/// Runs Gamteb with the given batch count (the paper's figure uses 16).
///
/// # Errors
///
/// Propagates [`TamError`].
pub fn run(batches: u32, nodes: usize, seed: u64) -> Result<Output, TamError> {
    let program = build(batches);
    let main = program.lookup("main").expect("main exists");
    let mut m = TamMachine::new(program, nodes, seed);
    let root = m.spawn_main(main);
    let budget = u64::from(batches) * 2_000_000 + 1_000_000;
    m.run(budget)?;
    assert_eq!(m.frame_slot(root, 6), 1, "tally must complete");
    let tally_fp = m.frame_slot(root, 3);
    let absorbed = m.frame_slot(tally_fp, 2);
    let escaped = m.frame_slot(tally_fp, 3);
    Ok(Output {
        counts: *m.counts(),
        absorbed,
        escaped,
        total: batches * PHOTONS_PER_BATCH,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_photon_is_accounted_for() {
        let out = run(4, 8, 42).unwrap();
        assert_eq!(out.absorbed + out.escaped, out.total);
        assert!(out.absorbed > 0, "some photons must be absorbed");
        assert!(out.escaped > 0, "some photons must escape");
    }

    #[test]
    fn deterministic_for_a_seed_and_sensitive_to_it() {
        let a = run(2, 4, 7).unwrap();
        let b = run(2, 4, 7).unwrap();
        assert_eq!(a.counts, b.counts);
        assert_eq!((a.absorbed, a.escaped), (b.absorbed, b.escaped));
        let c = run(2, 4, 8).unwrap();
        assert_ne!(
            (a.absorbed, a.counts.msgs.preads()),
            (c.absorbed, c.counts.msgs.preads()),
            "different seed should change photon histories"
        );
    }

    #[test]
    fn message_mix_is_irregular_and_complete() {
        let out = run(4, 8, 1).unwrap();
        let m = &out.counts.msgs;
        assert_eq!(m.pwrites(), u64::from(NBINS), "one PWrite per table entry");
        assert!(
            m.preads() >= u64::from(out.total),
            "≥1 collision per photon"
        );
        assert!(m.read > 0, "geometry consultations are plain Reads");
        assert_eq!(m.write, 1, "one geometry write");
        assert!(m.send[1] >= u64::from(out.total), "every photon tallies");
        // Early photons race the table producer: deferrals must occur.
        assert!(m.pread_empty + m.pread_deferred > 0);
    }
}
