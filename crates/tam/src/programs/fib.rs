//! Recursive Fibonacci — an extra, send-dominated fine-grain program.
//!
//! The paper reports results for two programs and notes "the rest give
//! similar results"; `fib` stands in for those: pure call/return traffic
//! (`Send(1)`/`Send(2)` messages), no heap, maximal frame churn. It also
//! exercises the general continuation form: children reply through an
//! `(fp, inlet)` pair passed in their argument message.

use crate::block::TamProgram;
use crate::counts::TamCounts;
use crate::instr::{InletId, IntOp, TamOp};
use crate::runtime::{TamError, TamMachine};

use super::util::imm;

/// Result of a fib run.
#[derive(Debug, Clone)]
pub struct Output {
    /// Dynamic instruction counts and message mix.
    pub counts: TamCounts,
    /// The computed value (fib(0) = fib(1) = 1).
    pub value: u32,
}

/// The reference value.
pub fn reference(n: u32) -> u32 {
    let (mut a, mut b) = (1u32, 1u32);
    for _ in 0..n {
        let t = a + b;
        a = b;
        b = t;
    }
    a
}

/// Builds the TAM program.
pub fn build(n: u32) -> TamProgram {
    let mut p = TamProgram::new();

    // fib slots: 0 SELF, 1 parent fp, 2 return inlet, 3 n, 4 arg counter,
    //            5 child1, 6 child2, 7 r1, 8 r2, 9 result counter,
    //            10 tmp, 11 cmp, 12 const
    let fib_self = p.next_block_id();
    let fib = p.block("fib", 13, |b| {
        b.init(4, 2); // two argument messages
        b.init(9, 2); // two child results
        let t_arg = b.declare_thread();
        let t_start = b.declare_thread();
        let t_base = b.declare_thread();
        let t_rec = b.declare_thread();
        let t_res = b.declare_thread();
        let t_sum = b.declare_thread();

        let cont = b.inlet(vec![1, 2], t_arg);
        let n_in = b.inlet(vec![3], t_arg);
        let r1 = b.inlet(vec![7], t_res);
        let r2 = b.inlet(vec![8], t_res);
        assert_eq!(
            (cont, n_in, r1, r2),
            (FIB_CONT_INLET, FIB_N_INLET, InletId(2), InletId(3))
        );

        b.define_thread(
            t_arg,
            vec![TamOp::Join {
                counter: 4,
                thread: t_start,
            }],
        );
        b.define_thread(
            t_start,
            vec![
                TamOp::IntI {
                    op: IntOp::Lt,
                    dst: 11,
                    a: 3,
                    imm: 2,
                },
                TamOp::Switch {
                    cond: 11,
                    if_true: t_base,
                    if_false: t_rec,
                },
            ],
        );
        b.define_thread(
            t_base,
            vec![
                imm(10, 1),
                TamOp::SendArgsDyn {
                    fp: 1,
                    inlet_slot: 2,
                    args: vec![10],
                },
            ],
        );
        b.define_thread(
            t_rec,
            vec![
                TamOp::Falloc {
                    block: fib_self,
                    dst_fp: 5,
                },
                TamOp::Falloc {
                    block: fib_self,
                    dst_fp: 6,
                },
                imm(12, 2), // reply to inlet r1
                TamOp::SendArgs {
                    fp: 5,
                    inlet: FIB_CONT_INLET,
                    args: vec![0, 12],
                },
                TamOp::IntI {
                    op: IntOp::Sub,
                    dst: 10,
                    a: 3,
                    imm: 1,
                },
                TamOp::SendArgs {
                    fp: 5,
                    inlet: FIB_N_INLET,
                    args: vec![10],
                },
                imm(12, 3), // reply to inlet r2
                TamOp::SendArgs {
                    fp: 6,
                    inlet: FIB_CONT_INLET,
                    args: vec![0, 12],
                },
                TamOp::IntI {
                    op: IntOp::Sub,
                    dst: 10,
                    a: 3,
                    imm: 2,
                },
                TamOp::SendArgs {
                    fp: 6,
                    inlet: FIB_N_INLET,
                    args: vec![10],
                },
            ],
        );
        b.define_thread(
            t_res,
            vec![TamOp::Join {
                counter: 9,
                thread: t_sum,
            }],
        );
        b.define_thread(
            t_sum,
            vec![
                TamOp::Int {
                    op: IntOp::Add,
                    dst: 10,
                    a: 7,
                    b: 8,
                },
                TamOp::SendArgsDyn {
                    fp: 1,
                    inlet_slot: 2,
                    args: vec![10],
                },
            ],
        );
    });

    // main slots: 0 SELF, 1 result, 2 child, 3 tmp, 4 done flag
    p.block("main", 5, |b| {
        let t_entry = b.declare_thread();
        let t_got = b.declare_thread();
        b.define_thread(
            t_entry,
            vec![
                TamOp::Falloc {
                    block: fib,
                    dst_fp: 2,
                },
                imm(3, 0), // main's result inlet number
                TamOp::SendArgs {
                    fp: 2,
                    inlet: FIB_CONT_INLET,
                    args: vec![0, 3],
                },
                imm(3, n),
                TamOp::SendArgs {
                    fp: 2,
                    inlet: FIB_N_INLET,
                    args: vec![3],
                },
            ],
        );
        b.define_thread(t_got, vec![imm(4, 1)]);
        let result = b.inlet(vec![1], t_got);
        assert_eq!(result, InletId(0));
    });

    debug_assert_eq!(fib, fib_self);
    let _ = fib;
    p
}

/// `fib` replies through inlet numbers passed as data; these are the
/// argument inlets.
const FIB_CONT_INLET: InletId = InletId(0);
const FIB_N_INLET: InletId = InletId(1);

/// Runs fib(n) on `nodes` logical nodes.
///
/// # Errors
///
/// Propagates [`TamError`].
pub fn run(n: u32, nodes: usize) -> Result<Output, TamError> {
    let program = build(n);
    let main = program.lookup("main").expect("main exists");
    let mut m = TamMachine::new(program, nodes, 1);
    let root = m.spawn_main(main);
    m.run(200_000_000)?;
    assert_eq!(m.frame_slot(root, 4), 1, "main must receive the result");
    Ok(Output {
        counts: *m.counts(),
        value: m.frame_slot(root, 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_reference() {
        for n in 0..12 {
            let out = run(n, 4).unwrap();
            assert_eq!(out.value, reference(n), "fib({n})");
        }
    }

    #[test]
    fn traffic_is_all_sends() {
        let out = run(10, 4).unwrap();
        let m = &out.counts.msgs;
        assert!(m.send[1] > 0 && m.send[2] > 0);
        assert_eq!(m.preads() + m.pwrites() + m.read + m.write, 0);
        assert_eq!(m.responses, 0);
    }

    #[test]
    fn frame_count_matches_call_tree() {
        // Calls(n) = 1 + calls(n-1) + calls(n-2), calls(0)=calls(1)=1; +1 main.
        fn calls(n: u32) -> u64 {
            if n < 2 {
                1
            } else {
                1 + calls(n - 1) + calls(n - 2)
            }
        }
        let out = run(9, 2).unwrap();
        assert_eq!(out.counts.frames, calls(9) + 1);
    }
}
