//! N-Queens — a second extra fine-grain program (the paper reports two of
//! "several scientific programs"; this one adds an irregular search tree
//! with *dynamic* fan-out to the mix).
//!
//! Every tree node is a code-block invocation (three argument `Send`s, per
//! the everything-is-a-message convention) that either reports a solution
//! leaf or spawns a child per safe column. The classic bitmask formulation
//! is used: a placement is `(cols, d1, d2)` and a child's masks are
//! `(cols|bit, (d1|bit)<<1, (d2|bit)>>1)`.
//!
//! Dynamic fan-out needs a synchronization idiom TAM's static entry counts
//! do not directly give: a frame cannot know how many children it will spawn
//! until it has scanned its row. The counter trick used here initializes the
//! counter to `n + 1` and spends one join per *non*-spawning column, one per
//! child result, and one when the scan finishes — always `n + 1` in total,
//! firing exactly after the last event.

use crate::block::TamProgram;
use crate::counts::TamCounts;
use crate::instr::{InletId, IntOp, TamOp, ThreadId};
use crate::runtime::{TamError, TamMachine};

use super::util::{ii, imm};

/// Result of an N-Queens run.
#[derive(Debug, Clone)]
pub struct Output {
    /// Dynamic instruction counts and message mix.
    pub counts: TamCounts,
    /// Number of solutions found.
    pub solutions: u32,
}

/// Known solution counts for validation.
pub fn reference(n: u32) -> u32 {
    match n {
        1 => 1,
        2 | 3 => 0,
        4 => 2,
        5 => 10,
        6 => 4,
        7 => 40,
        8 => 92,
        9 => 352,
        _ => panic!("reference table covers n ≤ 9"),
    }
}

const NQ_CONT: InletId = InletId(0); // [parent fp, return inlet]
const NQ_MASKS: InletId = InletId(1); // [cols, d1]
const NQ_D2: InletId = InletId(2); // [d2]
const NQ_RESULT: InletId = InletId(3); // [child count]

/// Builds the program for an `n×n` board.
pub fn build(n: u32) -> TamProgram {
    assert!((1..=9).contains(&n), "n must be 1..=9");
    let full: u32 = (1 << n) - 1;
    let mut p = TamProgram::new();

    // search slots:
    //  0 SELF, 1 parent, 2 ret inlet, 3 cols, 4 d1, 5 d2, 6 argj,
    //  7 c (column), 8 bit, 9 acc, 10 pending (n+1 trick), 11 result-in,
    //  12 tmp, 13 child fp, 14..16 child masks, 17 cmp
    let search_self = p.next_block_id();
    let search = p.block("search", 18, |b| {
        b.init(6, 3); // three argument messages
        b.init(10, n + 1); // the dynamic-fan-out counter
        let t_arg = b.declare_thread();
        let t_start = b.declare_thread();
        let t_leaf = b.declare_thread();
        let t_scan = b.declare_thread();
        let t_try = b.declare_thread();
        let t_spawn = b.declare_thread();
        let t_skip = b.declare_thread();
        let t_scan_done = b.declare_thread();
        let t_acc = b.declare_thread();
        let t_reply = b.declare_thread();

        let cont = b.inlet(vec![1, 2], t_arg);
        let masks = b.inlet(vec![3, 4], t_arg);
        let d2in = b.inlet(vec![5], t_arg);
        let result = b.inlet(vec![11], t_acc);
        assert_eq!(
            (cont, masks, d2in, result),
            (NQ_CONT, NQ_MASKS, NQ_D2, NQ_RESULT)
        );

        b.define_thread(
            t_arg,
            vec![TamOp::Join {
                counter: 6,
                thread: t_start,
            }],
        );
        b.define_thread(
            t_start,
            vec![
                ii(IntOp::Eq, 17, 3, full as i32),
                TamOp::Switch {
                    cond: 17,
                    if_true: t_leaf,
                    if_false: t_scan,
                },
            ],
        );
        b.define_thread(
            t_leaf,
            vec![
                imm(12, 1),
                TamOp::SendArgsDyn {
                    fp: 1,
                    inlet_slot: 2,
                    args: vec![12],
                },
            ],
        );
        b.define_thread(t_scan, vec![imm(7, 0), TamOp::Fork { thread: t_try }]);
        // t_try: bit = 1 << c; occupied = (cols | d1 | d2) & bit
        b.define_thread(
            t_try,
            vec![
                imm(8, 1),
                TamOp::Int {
                    op: IntOp::Shl,
                    dst: 8,
                    a: 8,
                    b: 7,
                },
                TamOp::Int {
                    op: IntOp::Or,
                    dst: 12,
                    a: 3,
                    b: 4,
                },
                TamOp::Int {
                    op: IntOp::Or,
                    dst: 12,
                    a: 12,
                    b: 5,
                },
                TamOp::Int {
                    op: IntOp::And,
                    dst: 12,
                    a: 12,
                    b: 8,
                },
                TamOp::Switch {
                    cond: 12,
                    if_true: t_skip,
                    if_false: t_spawn,
                },
            ],
        );
        b.define_thread(
            t_spawn,
            vec![
                // Child masks: cols|bit, ((d1|bit)<<1) & full, (d2|bit)>>1.
                TamOp::Int {
                    op: IntOp::Or,
                    dst: 14,
                    a: 3,
                    b: 8,
                },
                TamOp::Int {
                    op: IntOp::Or,
                    dst: 15,
                    a: 4,
                    b: 8,
                },
                ii(IntOp::Shl, 15, 15, 1),
                ii(IntOp::And, 15, 15, full as i32),
                TamOp::Int {
                    op: IntOp::Or,
                    dst: 16,
                    a: 5,
                    b: 8,
                },
                ii(IntOp::Shr, 16, 16, 1),
                TamOp::Falloc {
                    block: search_self,
                    dst_fp: 13,
                },
                imm(12, NQ_RESULT.0 as u32),
                TamOp::SendArgs {
                    fp: 13,
                    inlet: NQ_CONT,
                    args: vec![0, 12],
                },
                TamOp::SendArgs {
                    fp: 13,
                    inlet: NQ_MASKS,
                    args: vec![14, 15],
                },
                TamOp::SendArgs {
                    fp: 13,
                    inlet: NQ_D2,
                    args: vec![16],
                },
                // advance the column scan
                ii(IntOp::Add, 7, 7, 1),
                ii(IntOp::Lt, 17, 7, n as i32),
                TamOp::Switch {
                    cond: 17,
                    if_true: t_try,
                    if_false: t_scan_done,
                },
            ],
        );
        b.define_thread(
            t_skip,
            vec![
                // One join per non-spawning column (the n+1 trick).
                TamOp::Join {
                    counter: 10,
                    thread: t_reply,
                },
                ii(IntOp::Add, 7, 7, 1),
                ii(IntOp::Lt, 17, 7, n as i32),
                TamOp::Switch {
                    cond: 17,
                    if_true: t_try,
                    if_false: t_scan_done,
                },
            ],
        );
        b.define_thread(
            t_scan_done,
            vec![TamOp::Join {
                counter: 10,
                thread: t_reply,
            }],
        );
        b.define_thread(
            t_acc,
            vec![
                TamOp::Int {
                    op: IntOp::Add,
                    dst: 9,
                    a: 9,
                    b: 11,
                },
                TamOp::Join {
                    counter: 10,
                    thread: t_reply,
                },
            ],
        );
        b.define_thread(
            t_reply,
            vec![TamOp::SendArgsDyn {
                fp: 1,
                inlet_slot: 2,
                args: vec![9],
            }],
        );
    });
    debug_assert_eq!(search, search_self);

    // main slots: 0 SELF, 1 solutions, 2 root fp, 3 tmp, 4 done
    p.block("main", 5, |b| {
        let t_entry = b.declare_thread();
        let t_got = b.declare_thread();
        b.define_thread(
            t_entry,
            vec![
                TamOp::Falloc {
                    block: search,
                    dst_fp: 2,
                },
                imm(3, 0), // main's result inlet
                TamOp::SendArgs {
                    fp: 2,
                    inlet: NQ_CONT,
                    args: vec![0, 3],
                },
                imm(3, 0), // cols = 0
                TamOp::SendArgs {
                    fp: 2,
                    inlet: NQ_MASKS,
                    args: vec![3, 3],
                },
                TamOp::SendArgs {
                    fp: 2,
                    inlet: NQ_D2,
                    args: vec![3],
                },
            ],
        );
        b.define_thread(t_got, vec![imm(4, 1)]);
        let got = b.inlet(vec![1], t_got);
        assert_eq!(got, InletId(0));
        let _ = ThreadId(0);
    });

    p
}

/// Runs N-Queens on `nodes` logical nodes.
///
/// # Errors
///
/// Propagates [`TamError`].
pub fn run(n: u32, nodes: usize) -> Result<Output, TamError> {
    let program = build(n);
    let main = program.lookup("main").expect("main exists");
    let mut m = TamMachine::new(program, nodes, 3);
    let root = m.spawn_main(main);
    m.run(50_000_000)?;
    assert_eq!(m.frame_slot(root, 4), 1, "main must receive the count");
    Ok(Output {
        counts: *m.counts(),
        solutions: m.frame_slot(root, 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_counts_match_reference() {
        for n in 1..=7 {
            let out = run(n, 8).unwrap();
            assert_eq!(out.solutions, reference(n), "n = {n}");
        }
    }

    #[test]
    fn eight_queens_on_many_nodes() {
        let out = run(8, 64).unwrap();
        assert_eq!(out.solutions, 92);
        // Search is pure call/return: no heap traffic.
        assert_eq!(out.counts.msgs.preads() + out.counts.msgs.pwrites(), 0);
        assert!(out.counts.msgs.send[2] > 0 && out.counts.msgs.send[1] > 0);
    }

    #[test]
    fn frame_count_equals_tree_size() {
        // Frames = expanded nodes + main; solutions for n=6 is 4 with a
        // known tree; just check determinism and plausibility.
        let a = run(6, 4).unwrap();
        let b = run(6, 4).unwrap();
        assert_eq!(a.counts, b.counts);
        assert!(a.counts.frames > u64::from(a.solutions));
    }
}
