//! The benchmark programs of the paper's §4.2, expressed directly in TAM
//! bytecode.
//!
//! Each program follows the paper's compilation convention: every procedure
//! invocation gets its own frame, all arguments/results travel as `Send`
//! messages, and all heap traffic is split-phase `PRead`/`PWrite` (or plain
//! `Read`/`Write`) messages. The returned [`Output`](matmul::Output)s carry
//! the dynamic [`crate::TamCounts`] that the Figure-12 cost model consumes,
//! plus enough of the computed result to validate correctness.

pub mod fib;
pub mod gamteb;
pub mod matmul;
pub mod nqueens;

pub(crate) mod util {
    use crate::instr::{IntOp, Slot, TamOp};

    /// `dst = op(a, imm)`.
    pub fn ii(op: IntOp, dst: Slot, a: Slot, imm: i32) -> TamOp {
        TamOp::IntI {
            op,
            dst,
            a,
            imm: imm as u32,
        }
    }

    /// Integer constant.
    pub fn imm(dst: Slot, value: u32) -> TamOp {
        TamOp::Imm { dst, value }
    }

    /// Float constant.
    pub fn fimm(dst: Slot, value: f32) -> TamOp {
        TamOp::Imm {
            dst,
            value: value.to_bits(),
        }
    }
}
