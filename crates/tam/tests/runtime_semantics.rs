//! Direct semantics tests of the TAM interpreter: scheduling, frames,
//! synchronization, split-phase heap, and error paths.

use tcni_tam::{
    CodeBlockId, FloatOp, InletId, IntOp, TamClass, TamError, TamMachine, TamOp, TamProgram,
};

fn machine_with(f: impl FnOnce(&mut TamProgram) -> CodeBlockId, nodes: usize) -> (TamMachine, u32) {
    let mut p = TamProgram::new();
    let main = f(&mut p);
    let mut m = TamMachine::new(p, nodes, 1);
    let root = m.spawn_main(main);
    (m, root)
}

#[test]
fn fork_runs_lifo_within_a_node() {
    // The entry thread forks A then B; per-node LIFO runs B first. Each
    // thread appends its id to slot 1 through a shift, so the order is
    // observable: B-then-A yields (1 << 4) | 2 = 0x12.
    let (mut m, root) = machine_with(
        |p| {
            p.block("main", 3, |b| {
                let t0 = b.declare_thread(); // entry
                let t_a = b.declare_thread();
                let t_b = b.declare_thread();
                b.define_thread(
                    t0,
                    vec![TamOp::Fork { thread: t_a }, TamOp::Fork { thread: t_b }],
                );
                for (t, id) in [(t_a, 2u32), (t_b, 1)] {
                    b.define_thread(
                        t,
                        vec![
                            TamOp::IntI {
                                op: IntOp::Shl,
                                dst: 1,
                                a: 1,
                                imm: 4,
                            },
                            TamOp::IntI {
                                op: IntOp::Or,
                                dst: 1,
                                a: 1,
                                imm: id,
                            },
                        ],
                    );
                }
            })
        },
        1,
    );
    m.run(1000).unwrap();
    assert_eq!(m.frame_slot(root, 1), 0x12, "LIFO: B then A");
}

#[test]
fn switch_selects_by_condition() {
    let (mut m, root) = machine_with(
        |p| {
            p.block("main", 3, |b| {
                let t0 = b.declare_thread();
                let t_true = b.declare_thread();
                let t_false = b.declare_thread();
                b.define_thread(
                    t0,
                    vec![
                        TamOp::Imm { dst: 1, value: 5 },
                        TamOp::Switch {
                            cond: 1,
                            if_true: t_true,
                            if_false: t_false,
                        },
                    ],
                );
                b.define_thread(
                    t_true,
                    vec![TamOp::Imm {
                        dst: 2,
                        value: 0xAA,
                    }],
                );
                b.define_thread(
                    t_false,
                    vec![TamOp::Imm {
                        dst: 2,
                        value: 0xBB,
                    }],
                );
            })
        },
        1,
    );
    m.run(100).unwrap();
    assert_eq!(m.frame_slot(root, 2), 0xAA);
}

#[test]
fn join_fires_exactly_at_zero() {
    let (mut m, root) = machine_with(
        |p| {
            p.block("main", 3, |b| {
                b.init(1, 3);
                let t0 = b.declare_thread();
                let t_j = b.declare_thread();
                let t_fire = b.declare_thread();
                b.define_thread(
                    t0,
                    vec![
                        TamOp::Fork { thread: t_j },
                        TamOp::Fork { thread: t_j },
                        TamOp::Fork { thread: t_j },
                    ],
                );
                b.define_thread(
                    t_j,
                    vec![TamOp::Join {
                        counter: 1,
                        thread: t_fire,
                    }],
                );
                b.define_thread(
                    t_fire,
                    vec![TamOp::IntI {
                        op: IntOp::Add,
                        dst: 2,
                        a: 2,
                        imm: 1,
                    }],
                );
            })
        },
        1,
    );
    m.run(100).unwrap();
    assert_eq!(m.frame_slot(root, 2), 1, "fires once, not per decrement");
    assert_eq!(m.counts().ops(TamClass::Join), 3);
}

#[test]
fn self_convention_and_falloc_round_robin() {
    let (mut m, root) = machine_with(
        |p| {
            let _leaf = p.block("leaf", 1, |b| {
                b.thread(vec![TamOp::Mov { dst: 0, src: 0 }]);
            });
            p.block("main", 5, |b| {
                b.thread(vec![
                    TamOp::Falloc {
                        block: CodeBlockId(0),
                        dst_fp: 1,
                    },
                    TamOp::Falloc {
                        block: CodeBlockId(0),
                        dst_fp: 2,
                    },
                    TamOp::Falloc {
                        block: CodeBlockId(0),
                        dst_fp: 3,
                    },
                ]);
            })
        },
        4,
    );
    m.run(100).unwrap();
    assert_eq!(m.frame_slot(root, 0), root, "slot 0 holds SELF");
    let fps: Vec<u32> = (1..4).map(|s| m.frame_slot(root, s)).collect();
    assert_eq!(fps, vec![root + 1, root + 2, root + 3], "arena order");
    assert_eq!(m.counts().frames, 4);
}

#[test]
fn send_deposits_and_enables_inlet_thread() {
    let (mut m, root) = machine_with(
        |p| {
            let _child = p.block("child", 4, |b| {
                let t = b.declare_thread();
                let got = b.inlet(vec![1, 2], t);
                assert_eq!(got, InletId(0));
                b.define_thread(
                    t,
                    vec![TamOp::Int {
                        op: IntOp::Add,
                        dst: 3,
                        a: 1,
                        b: 2,
                    }],
                );
            });
            p.block("main", 4, |b| {
                b.thread(vec![
                    TamOp::Falloc {
                        block: CodeBlockId(0),
                        dst_fp: 1,
                    },
                    TamOp::Imm { dst: 2, value: 30 },
                    TamOp::Imm { dst: 3, value: 12 },
                    TamOp::SendArgs {
                        fp: 1,
                        inlet: InletId(0),
                        args: vec![2, 3],
                    },
                ]);
            })
        },
        2,
    );
    m.run(100).unwrap();
    let child_fp = m.frame_slot(root, 1);
    assert_eq!(m.frame_slot(child_fp, 3), 42);
    assert_eq!(m.counts().msgs.send[2], 1);
}

#[test]
fn halt_stops_before_queue_drain() {
    let (mut m, root) = machine_with(
        |p| {
            p.block("main", 2, |b| {
                let t0 = b.declare_thread();
                let t_never = b.declare_thread();
                b.define_thread(
                    t0,
                    vec![TamOp::Fork { thread: t_never }, TamOp::HaltMachine],
                );
                b.define_thread(t_never, vec![TamOp::Imm { dst: 1, value: 9 }]);
            })
        },
        1,
    );
    let report = m.run(100).unwrap();
    assert!(report.halted_explicitly);
    assert_eq!(m.frame_slot(root, 1), 0, "forked thread never ran");
}

#[test]
fn step_limit_is_an_error() {
    let (mut m, _root) = machine_with(
        |p| {
            p.block("main", 2, |b| {
                let t0 = b.declare_thread();
                b.define_thread(t0, vec![TamOp::Fork { thread: t0 }]); // forever
            })
        },
        1,
    );
    assert_eq!(m.run(50), Err(TamError::StepLimit));
}

#[test]
fn multiple_istore_is_reported() {
    let (mut m, _root) = machine_with(
        |p| {
            p.block("main", 3, |b| {
                b.thread(vec![
                    TamOp::Imm { dst: 1, value: 4 },
                    TamOp::HAlloc { dst: 2, len: 1 },
                    TamOp::Imm { dst: 1, value: 7 },
                    TamOp::IStore {
                        arr: 2,
                        idx: 0,
                        val: 1,
                    }, // idx slot 0 = SELF = 0 ✓
                    TamOp::IStore {
                        arr: 2,
                        idx: 0,
                        val: 1,
                    },
                ]);
            })
        },
        1,
    );
    let err = m.run(100).unwrap_err();
    assert!(matches!(err, TamError::MultipleWrite { .. }), "{err}");
}

#[test]
fn bad_frame_pointer_is_reported() {
    let (mut m, _root) = machine_with(
        |p| {
            p.block("main", 2, |b| {
                b.thread(vec![
                    TamOp::Imm { dst: 1, value: 999 },
                    TamOp::SendArgs {
                        fp: 1,
                        inlet: InletId(0),
                        args: vec![],
                    },
                ]);
            })
        },
        1,
    );
    assert!(matches!(m.run(100), Err(TamError::BadReference { .. })));
}

#[test]
fn rand_is_deterministic_per_seed() {
    let prog = |p: &mut TamProgram| {
        p.block("main", 3, |b| {
            b.thread(vec![TamOp::Rand { dst: 1 }, TamOp::Rand { dst: 2 }]);
        })
    };
    let (mut a, ra) = machine_with(prog, 1);
    a.run(10).unwrap();
    let mut p2 = TamProgram::new();
    let main2 = prog(&mut p2);
    let mut b = TamMachine::new(p2, 1, 1);
    let rb = b.spawn_main(main2);
    b.run(10).unwrap();
    assert_eq!(a.frame_slot(ra, 1), b.frame_slot(rb, 1));
    assert_eq!(a.frame_slot(ra, 2), b.frame_slot(rb, 2));
    assert_ne!(a.frame_slot(ra, 1), a.frame_slot(ra, 2));
}

#[test]
fn float_ops_on_frame_slots() {
    let (mut m, root) = machine_with(
        |p| {
            p.block("main", 4, |b| {
                b.thread(vec![
                    TamOp::Imm {
                        dst: 1,
                        value: 1.5f32.to_bits(),
                    },
                    TamOp::Imm {
                        dst: 2,
                        value: 2.5f32.to_bits(),
                    },
                    TamOp::Float {
                        op: FloatOp::Add,
                        dst: 3,
                        a: 1,
                        b: 2,
                    },
                ]);
            })
        },
        1,
    );
    m.run(10).unwrap();
    assert_eq!(f32::from_bits(m.frame_slot(root, 3)), 4.0);
}

#[test]
fn plain_global_memory_read_writes_in_order() {
    let (mut m, root) = machine_with(
        |p| {
            p.block("main", 6, |b| {
                let t0 = b.declare_thread();
                let t_got = b.declare_thread();
                let got = b.inlet(vec![4], t_got);
                b.define_thread(
                    t0,
                    vec![
                        TamOp::Imm { dst: 1, value: 8 },
                        TamOp::GAlloc { dst: 2, len: 1 },
                        TamOp::Imm {
                            dst: 3,
                            value: 0x77,
                        },
                        TamOp::Imm { dst: 5, value: 2 }, // index
                        TamOp::WriteG {
                            arr: 2,
                            idx: 5,
                            val: 3,
                        },
                        TamOp::ReadG {
                            arr: 2,
                            idx: 5,
                            inlet: got,
                        },
                    ],
                );
                b.define_thread(t_got, vec![TamOp::Mov { dst: 1, src: 4 }]);
            })
        },
        3,
    );
    m.run(100).unwrap();
    assert_eq!(m.frame_slot(root, 1), 0x77, "read observes preceding write");
    assert_eq!(m.counts().msgs.read, 1);
    assert_eq!(m.counts().msgs.write, 1);
    assert_eq!(m.counts().msgs.responses, 1);
}
