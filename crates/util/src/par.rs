//! Thread-count resolution, the scoped parallel map, and the persistent
//! worker pool (no external crates).
//!
//! Thread count resolution (first match wins):
//!
//! 1. [`set_threads`] — a process-wide programmatic override (`1` forces the
//!    serial path, used by benches to measure the serial/parallel ratio);
//! 2. the `TCNI_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Two execution primitives share that resolution:
//!
//! * [`par_map`] — fan independent whole jobs (Table-1 cells, sweep points)
//!   over scoped threads; jobs are coarse, so spawning per call is fine;
//! * [`run_tasks`] — run one short fork/join region (a machine-cycle phase)
//!   over a *persistent* pool. The region is microseconds long and fires
//!   hundreds of thousands of times per run, so workers are spawned once
//!   and rendezvous at cycle boundaries by spinning briefly on a lock-free
//!   epoch hint before parking on a condvar (see [`SPIN_ITERS`]).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Process-wide override; 0 = resolve automatically.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for all subsequent [`par_map`]/[`run_tasks`]
/// calls in this process. `1` forces serial in-place execution (no threads
/// spawned); `0` restores automatic resolution.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`par_map`] and [`run_tasks`] would use right now.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    if let Ok(s) = std::env::var("TCNI_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Contiguous partition of `0..len` into (at most) `parts` near-equal
/// ranges: returns ascending boundaries `b` with `b[0] == 0`,
/// `b[last] == len`, and domain `d` covering `b[d]..b[d + 1]`. With
/// `len < parts` the partition degrades to one-element domains; `parts == 0`
/// is treated as 1.
pub fn domain_bounds(len: usize, parts: usize) -> Vec<usize> {
    let parts = parts.clamp(1, len.max(1));
    (0..=parts).map(|k| k * len / parts).collect()
}

/// Applies `f` to every item, in parallel, returning results in input order.
///
/// Work is distributed dynamically (a shared queue), so unevenly-sized items
/// — e.g. the six Table-1 models, whose handler programs differ in length —
/// balance across workers. With one worker (or one item) it degrades to a
/// plain serial map with no thread spawned, which is the tested fallback for
/// single-core hosts.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // A LIFO queue of (index, item); results carry the index back so the
    // output preserves input order regardless of completion order.
    let queue = Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>());
    let results = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop();
                let Some((i, item)) = job else { break };
                let out = f(item);
                results.lock().expect("results poisoned").push((i, out));
            });
        }
    });
    let mut out = results.into_inner().expect("results poisoned");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, u)| u).collect()
}

/// [`par_map`] over a fixed-size array, preserving the array shape.
pub fn par_map_array<T, U, F, const N: usize>(items: [T; N], f: F) -> [U; N]
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let v = par_map(Vec::from(items), f);
    match v.try_into() {
        Ok(arr) => arr,
        Err(_) => unreachable!("par_map preserves length"),
    }
}

// --- persistent fork/join pool -------------------------------------------

/// The published job, shared under [`Pool::state`]'s mutex.
struct PoolState {
    /// Bumped per job so a worker never re-enters one it already left.
    epoch: u64,
    /// Whether a job is currently published.
    active: bool,
    /// The type-erased task, valid exactly while the publishing
    /// [`pool_run`] call is still blocked (see the safety comment there).
    task: Option<&'static (dyn Fn(usize) + Sync)>,
    /// Next unclaimed task index.
    next: usize,
    /// Total task count of the current job.
    total: usize,
    /// Completed task count of the current job.
    done: usize,
    /// Whether any task of the current job panicked.
    panicked: bool,
    /// Helper threads spawned so far (grow-only; they park between jobs).
    spawned: usize,
}

/// How long a thread spins watching a lock-free hint before parking on its
/// condvar. Cycle-boundary rendezvous fire hundreds of thousands of times
/// per run and each region is microseconds long, so at steady state the
/// next job (or the last task's completion) almost always lands inside the
/// spin window — the condvar round trip, with its syscall and scheduler
/// wakeup latency, is the slow path reserved for genuinely idle periods.
const SPIN_ITERS: u32 = 4096;

struct Pool {
    state: Mutex<PoolState>,
    /// Wakes parked helpers when a job is published.
    work: Condvar,
    /// Wakes the submitter when the last task completes.
    idle: Condvar,
    /// Held for the duration of one job. `try_lock` — a nested or
    /// concurrent fork/join region falls back to serial execution instead
    /// of queueing (results are identical either way; see [`run_tasks`]).
    submit: Mutex<()>,
    /// Lock-free copy of [`PoolState::epoch`], stored under the state mutex
    /// right before `work` is notified. Helpers spin on it between jobs so
    /// a back-to-back region is picked up without a park/notify round trip.
    /// The mutex state stays authoritative — the hint only ends a spin.
    epoch_hint: AtomicU64,
    /// Tasks of the current job not yet completed, decremented (under the
    /// state mutex) alongside `done`. The submitter spins on it reaching
    /// zero before parking on `idle`.
    remaining: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            epoch: 0,
            active: false,
            task: None,
            next: 0,
            total: 0,
            done: 0,
            panicked: false,
            spawned: 0,
        }),
        work: Condvar::new(),
        idle: Condvar::new(),
        submit: Mutex::new(()),
        epoch_hint: AtomicU64::new(0),
        remaining: AtomicUsize::new(0),
    })
}

/// One task call with panic containment: a panicking task must not strand
/// the submitter on the `idle` condvar, so the unwind is caught, counted,
/// and re-raised by the submitter after the join.
fn call_task(task: &(dyn Fn(usize) + Sync), i: usize) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i))).is_ok()
}

fn worker_loop() {
    let pool = pool();
    let mut seen = 0u64;
    let mut g = pool.state.lock().expect("pool poisoned");
    loop {
        if g.active && g.epoch != seen {
            seen = g.epoch;
            let task = g.task.expect("active job has a task");
            while g.next < g.total {
                let i = g.next;
                g.next += 1;
                drop(g);
                let ok = call_task(task, i);
                g = pool.state.lock().expect("pool poisoned");
                g.panicked |= !ok;
                g.done += 1;
                pool.remaining.fetch_sub(1, Ordering::Release);
                if g.done == g.total {
                    pool.idle.notify_all();
                }
            }
        } else {
            // Spin-then-park: watch the lock-free epoch hint for a freshly
            // published job before paying for a condvar park. The re-check
            // under the mutex makes the hint advisory only — a hint missed
            // during the lock/unlock gap is caught by the predicate, and a
            // spurious spin exit just loops back here.
            drop(g);
            let mut hinted = false;
            for _ in 0..SPIN_ITERS {
                if pool.epoch_hint.load(Ordering::Acquire) != seen {
                    hinted = true;
                    break;
                }
                std::hint::spin_loop();
            }
            g = pool.state.lock().expect("pool poisoned");
            if !(hinted || (g.active && g.epoch != seen)) {
                g = pool.work.wait(g).expect("pool poisoned");
            }
        }
    }
}

/// Runs `task(0..total)` across this thread plus up to `helpers` pool
/// threads; blocks until every index completed. Returns `false` without
/// running anything if the pool is already mid-job (the caller then runs
/// serially).
fn pool_run(total: usize, helpers: usize, task: &(dyn Fn(usize) + Sync)) -> bool {
    let pool = pool();
    let Ok(_job) = pool.submit.try_lock() else {
        return false;
    };
    // SAFETY (lifetime erasure): the `'static` is a lie told only to the
    // parked workers. The reference is published under `state`'s mutex,
    // dereferenced by workers exclusively for claimed indices `< total`,
    // and every claim is followed by a `done` increment after the call
    // returns. This function does not return until `done == total` and the
    // job is unpublished (`active = false`, `task = None`) under the same
    // mutex, so no worker can observe the reference after `task`'s real
    // lifetime ends.
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let mut g = pool.state.lock().expect("pool poisoned");
    while g.spawned < helpers {
        let spawned = std::thread::Builder::new()
            .name("tcni-par".into())
            .spawn(worker_loop)
            .is_ok();
        if !spawned {
            break; // degrade to fewer helpers; the submitter still works
        }
        g.spawned += 1;
    }
    g.epoch = g.epoch.wrapping_add(1);
    g.active = true;
    g.task = Some(task);
    g.next = 0;
    g.total = total;
    g.done = 0;
    g.panicked = false;
    // Hints go out under the lock, before the notify: spinning helpers see
    // the new epoch without touching the mutex, parked ones get the condvar.
    pool.epoch_hint.store(g.epoch, Ordering::Release);
    pool.remaining.store(total, Ordering::Release);
    pool.work.notify_all();
    // The submitter is a worker too.
    while g.next < g.total {
        let i = g.next;
        g.next += 1;
        drop(g);
        let ok = call_task(task, i);
        g = pool.state.lock().expect("pool poisoned");
        g.panicked |= !ok;
        g.done += 1;
        pool.remaining.fetch_sub(1, Ordering::Release);
    }
    if g.done < g.total {
        // The helpers are on the job's tail. Spin on the remaining-task
        // count — it usually hits zero within the window — and only then
        // park on `idle`. The mutex-guarded count is re-checked either way.
        drop(g);
        for _ in 0..SPIN_ITERS {
            if pool.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            std::hint::spin_loop();
        }
        g = pool.state.lock().expect("pool poisoned");
        while g.done < g.total {
            g = pool.idle.wait(g).expect("pool poisoned");
        }
    }
    g.active = false;
    g.task = None;
    let panicked = g.panicked;
    drop(g);
    if panicked {
        panic!("a parallel task panicked (original payload on its worker's stderr)");
    }
    true
}

/// Runs `f(i, &mut views[i])` for every view, in parallel across the
/// persistent pool, and returns when all are done (a fork/join barrier).
///
/// This is the machine simulator's per-cycle primitive: each view is one
/// spatial domain's mutable state, `f` is one phase of the cycle, and the
/// join is the cycle-boundary exchange point. Guarantees:
///
/// * every index runs exactly once, with exclusive `&mut` access to its
///   view — callers need no interior synchronization;
/// * with a resolved thread count of 1 (or a single view) no pool is
///   touched and the views run in index order on the caller's thread;
/// * nested or concurrent regions (e.g. a machine stepped from inside a
///   [`par_map`] job) never deadlock: the inner region runs serially.
///
/// No ordering between concurrently-running views is promised — callers
/// keep bit-determinism by buffering cross-view effects and applying them
/// in index order after the join.
pub fn run_tasks<V: Send>(views: &mut [V], f: impl Fn(usize, &mut V) + Sync) {
    let total = views.len();
    let workers = threads().min(total);
    if workers <= 1 {
        for (i, v) in views.iter_mut().enumerate() {
            f(i, v);
        }
        return;
    }
    struct SendPtr<T>(*mut T);
    // SAFETY: the pointer is only used to derive per-index `&mut` borrows,
    // and the pool claims each index exactly once.
    unsafe impl<T: Send> Send for SendPtr<T> {}
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    let base = SendPtr(views.as_mut_ptr());
    let task = |i: usize| {
        // Capture the whole `SendPtr` (not its raw-pointer field) so the
        // closure is `Sync` via the wrapper.
        let base = &base;
        // SAFETY: `i < total` (pool contract) and each index is claimed by
        // exactly one worker, so this is the sole `&mut` to element `i`;
        // `V: Send` allows the element to be touched from the worker.
        let v = unsafe { &mut *base.0.add(i) };
        f(i, v);
    };
    if !pool_run(total, workers - 1, &task) {
        for (i, v) in views.iter_mut().enumerate() {
            f(i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_length() {
        let out = par_map((0..100).collect::<Vec<_>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_override_matches_parallel() {
        let items: Vec<u64> = (0..40).collect();
        set_threads(1);
        let serial = par_map(items.clone(), |i| i * i);
        set_threads(0);
        let auto = par_map(items, |i| i * i);
        assert_eq!(serial, auto);
    }

    #[test]
    fn array_map_keeps_shape() {
        let out = par_map_array([1, 2, 3, 4, 5, 6], |i| i + 10);
        assert_eq!(out, [11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn domain_bounds_partition() {
        assert_eq!(domain_bounds(10, 4), vec![0, 2, 5, 7, 10]);
        assert_eq!(domain_bounds(3, 8), vec![0, 1, 2, 3]);
        assert_eq!(domain_bounds(5, 1), vec![0, 5]);
        assert_eq!(domain_bounds(0, 4), vec![0, 0]);
        assert_eq!(domain_bounds(7, 0), vec![0, 7]);
        for (len, parts) in [(100, 7), (1, 1), (64, 64), (13, 5)] {
            let b = domain_bounds(len, parts);
            assert_eq!(*b.first().unwrap(), 0);
            assert_eq!(*b.last().unwrap(), len);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            assert!(b
                .windows(2)
                .all(|w| w[1] - w[0] <= len.div_ceil(parts.max(1))));
        }
    }

    #[test]
    fn run_tasks_touches_every_view_once() {
        // Deliberately many more views than workers so the claim loop wraps.
        for threads_n in [1usize, 2, 3, 8] {
            set_threads(threads_n);
            let mut views: Vec<u64> = vec![0; 97];
            run_tasks(&mut views, |i, v| *v += (i as u64) + 1);
            set_threads(0);
            let want: Vec<u64> = (0..97).map(|i| i + 1).collect();
            assert_eq!(views, want, "threads={threads_n}");
        }
    }

    #[test]
    fn run_tasks_repeated_regions_reuse_the_pool() {
        set_threads(4);
        let mut views: Vec<u64> = vec![0; 8];
        for _ in 0..1000 {
            run_tasks(&mut views, |_, v| *v += 1);
        }
        set_threads(0);
        assert!(views.iter().all(|&v| v == 1000), "{views:?}");
    }

    #[test]
    fn run_tasks_nested_falls_back_to_serial() {
        set_threads(4);
        let mut outer: Vec<u64> = vec![0; 4];
        run_tasks(&mut outer, |i, v| {
            let mut inner: Vec<u64> = vec![0; 6];
            // The pool is busy with the outer region: this must complete
            // serially rather than deadlock.
            run_tasks(&mut inner, |j, w| *w = (i * 10 + j) as u64);
            *v = inner.iter().sum();
        });
        set_threads(0);
        for (i, v) in outer.iter().enumerate() {
            let want: u64 = (0..6).map(|j| (i * 10 + j) as u64).sum();
            assert_eq!(*v, want);
        }
    }
}
