//! Verified disjoint access to scattered slice elements.
//!
//! The mesh's parallel tick partitions the per-cycle *active* channels into
//! conflict components (channel-disjoint groups that can move packets
//! independently). Each worker then needs `&mut` access to its component's
//! channels, which are scattered across one `Vec` — something safe Rust
//! cannot express with `split_at_mut` because the groups interleave.
//!
//! [`split_groups`] closes that gap: it *verifies* at runtime that the
//! requested index groups are in-bounds, sorted, and mutually disjoint, and
//! only then hands out one [`GroupMut`] per group. Every subsequent element
//! access re-checks membership (a binary search over the group's index
//! list), so a buggy caller panics instead of aliasing. The checks are
//! always on — they are the soundness argument, not a debug aid — and cheap
//! next to the packet movement they guard.

use std::marker::PhantomData;

/// Reusable overlap-detection scratch for [`split_groups`].
///
/// Epoch-stamped so clearing between calls is O(1); one instance per
/// long-lived scratch structure avoids reallocating the stamp vector every
/// cycle.
#[derive(Debug, Default)]
pub struct SlotClaims {
    stamp: Vec<u32>,
    epoch: u32,
}

impl SlotClaims {
    /// Creates an empty claim set; it grows to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a new claim round covering indices `0..len`.
    fn begin(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could collide with the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Claims `i`; returns `false` if it was already claimed this round.
    fn claim(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            return false;
        }
        self.stamp[i] = self.epoch;
        true
    }
}

/// Exclusive access to a verified-disjoint group of `data` elements.
///
/// Obtained from [`split_groups`]; movable to another thread (`T: Send`).
/// All accessors panic on an index outside the group — that check is what
/// makes two `GroupMut`s over the same slice sound to use concurrently.
pub struct GroupMut<'a, T> {
    base: *mut T,
    len: usize,
    allowed: &'a [u32],
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a `GroupMut` only ever dereferences `base` at indices contained in
// `allowed`, and `split_groups` verified the `allowed` lists of coexisting
// groups to be mutually disjoint and in-bounds. Exclusive access to each
// element therefore follows from `&mut self` on the accessors, and moving
// the group to another thread is safe whenever the elements themselves are.
unsafe impl<T: Send> Send for GroupMut<'_, T> {}

impl<'a, T> GroupMut<'a, T> {
    /// The sorted element indices this group owns.
    pub fn indices(&self) -> &'a [u32] {
        self.allowed
    }

    #[inline]
    fn check(&self, i: u32) {
        assert!(
            self.allowed.binary_search(&i).is_ok(),
            "index {i} is not in this disjoint group"
        );
        debug_assert!((i as usize) < self.len);
    }

    /// Shared access to element `i`; panics if `i` is not in the group.
    #[inline]
    pub fn get(&self, i: u32) -> &T {
        self.check(i);
        // SAFETY: `i` is in `allowed` (checked above), `allowed` indices are
        // in-bounds (verified by `split_groups`), and no other group may
        // touch this element.
        unsafe { &*self.base.add(i as usize) }
    }

    /// Exclusive access to element `i`; panics if `i` is not in the group.
    #[inline]
    pub fn get_mut(&mut self, i: u32) -> &mut T {
        self.check(i);
        // SAFETY: as in `get`, plus `&mut self` guarantees no other borrow
        // derived from this group is live.
        unsafe { &mut *self.base.add(i as usize) }
    }
}

/// Splits `data` into independently-usable mutable groups.
///
/// Each entry of `groups` lists the element indices that group owns and
/// must be sorted in strictly ascending order. Returns `None` (touching
/// nothing) if any index is out of bounds, any group is unsorted or has
/// duplicates, or two groups overlap. On success the returned [`GroupMut`]s
/// can be handed to different workers — e.g. via
/// [`crate::par::run_tasks`] — and used concurrently.
pub fn split_groups<'a, T: Send>(
    data: &'a mut [T],
    groups: &'a [Vec<u32>],
    claims: &mut SlotClaims,
) -> Option<Vec<GroupMut<'a, T>>> {
    let len = data.len();
    claims.begin(len);
    for g in groups {
        let mut prev: Option<u32> = None;
        for &i in g {
            if (i as usize) >= len || prev.is_some_and(|p| p >= i) || !claims.claim(i as usize) {
                return None;
            }
            prev = Some(i);
        }
    }
    let base = data.as_mut_ptr();
    Some(
        groups
            .iter()
            .map(|g| GroupMut {
                base,
                len,
                allowed: g.as_slice(),
                _marker: PhantomData,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::run_tasks;

    #[test]
    fn disjoint_groups_split_and_access() {
        let mut data: Vec<u64> = (0..10).collect();
        let groups = vec![vec![0, 2, 4], vec![1, 3], vec![5, 6, 7, 8, 9]];
        let mut claims = SlotClaims::new();
        let mut gs = split_groups(&mut data, &groups, &mut claims).unwrap();
        for g in &mut gs {
            for &i in g.indices().to_vec().iter() {
                *g.get_mut(i) += 100;
                assert_eq!(*g.get(i), i as u64 + 100);
            }
        }
        drop(gs);
        assert_eq!(data, (100..110).collect::<Vec<u64>>());
    }

    #[test]
    fn overlap_out_of_range_and_unsorted_are_rejected() {
        let mut data = [0u8; 4];
        let mut claims = SlotClaims::new();
        let overlap = vec![vec![0, 1], vec![1, 2]];
        assert!(split_groups(&mut data, &overlap, &mut claims).is_none());
        let oob = vec![vec![0, 4]];
        assert!(split_groups(&mut data, &oob, &mut claims).is_none());
        let unsorted = vec![vec![2, 1]];
        assert!(split_groups(&mut data, &unsorted, &mut claims).is_none());
        let dup = vec![vec![1, 1]];
        assert!(split_groups(&mut data, &dup, &mut claims).is_none());
        // The claim set is reusable after a rejection.
        let ok = vec![vec![0, 1], vec![2, 3]];
        assert!(split_groups(&mut data, &ok, &mut claims).is_some());
    }

    #[test]
    #[should_panic(expected = "not in this disjoint group")]
    fn foreign_index_panics() {
        let mut data = [0u32; 8];
        let groups = vec![vec![0, 1], vec![6, 7]];
        let mut claims = SlotClaims::new();
        let mut gs = split_groups(&mut data, &groups, &mut claims).unwrap();
        *gs[0].get_mut(6) = 1;
    }

    #[test]
    fn groups_are_usable_across_worker_threads() {
        crate::par::set_threads(4);
        let mut data: Vec<u64> = vec![0; 64];
        let groups: Vec<Vec<u32>> = (0..4u32)
            .map(|g| (0..16u32).map(|k| k * 4 + g).collect())
            .collect();
        let mut claims = SlotClaims::new();
        let mut gs = split_groups(&mut data, &groups, &mut claims).unwrap();
        run_tasks(&mut gs, |gi, g| {
            for &i in g.indices().to_vec().iter() {
                *g.get_mut(i) = (gi as u64 + 1) * 1000 + i as u64;
            }
        });
        drop(gs);
        crate::par::set_threads(0);
        for (i, &v) in data.iter().enumerate() {
            let gi = (i % 4) as u64;
            assert_eq!(v, (gi + 1) * 1000 + i as u64);
        }
    }
}
