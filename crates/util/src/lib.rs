//! # tcni-util — shared threading substrate
//!
//! The one place the workspace reads and clamps `TCNI_THREADS`, and the one
//! place it spawns worker threads. Two layers consume it:
//!
//! * the evaluation pipeline (`tcni-eval` and the bench bins) fans
//!   independent measurements out with [`par::par_map`];
//! * the machine simulator (`tcni-sim`/`tcni-net`) shards a *single*
//!   machine's cycle across spatial domains with [`par::run_tasks`], which
//!   keeps a persistent pool alive so the per-cycle fork/join costs
//!   microseconds, not a thread spawn.
//!
//! This crate deliberately contains the workspace's only `unsafe` code: the
//! lifetime erasure inside the worker pool and the aliasing core of
//! [`disjoint`]. Everything it exports is a safe API with the soundness
//! argument documented at the `unsafe` block, so `tcni-net` and `tcni-sim`
//! can stay `#![forbid(unsafe_code)]`-free of their own unsafe while sharing
//! one audited substrate.
#![warn(missing_docs)]

pub mod disjoint;
pub mod par;
