//! Property tests: binary encoding round-trips for arbitrary well-formed
//! instructions, and the NI command bits survive every triadic encoding.

use proptest::prelude::*;
use tcni_isa::{decode, encode, AluOp, Cond, FpOp, Instr, MsgType, NiCmd, Operand, Reg, SendMode};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::try_from(i).unwrap())
}

fn arb_ni() -> impl Strategy<Value = NiCmd> {
    (0u8..4, 0u8..16, any::<bool>()).prop_map(|(mode, ty, next)| NiCmd {
        mode: SendMode::from_bits(mode),
        mtype: MsgType::new(ty).unwrap(),
        next,
    })
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg(), arb_ni()).prop_map(
            |(op, rd, rs1, rs2, ni)| Instr::Alu {
                op,
                rd,
                rs1,
                rs2: Operand::Reg(rs2),
                ni,
            }
        ),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<u16>()).prop_map(|(op, rd, rs1, imm)| {
            Instr::Alu {
                op,
                rd,
                rs1,
                rs2: Operand::Imm(imm),
                ni: NiCmd::NONE,
            }
        }),
        (
            prop::sample::select(FpOp::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            arb_reg(),
            arb_ni()
        )
            .prop_map(|(op, rd, rs1, rs2, ni)| Instr::Fp { op, rd, rs1, rs2, ni }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rd, base, imm)| Instr::Ld {
            rd,
            base,
            off: Operand::Imm(imm),
            ni: NiCmd::NONE,
        }),
        (arb_reg(), arb_reg(), arb_reg(), arb_ni()).prop_map(|(rd, base, off, ni)| Instr::Ld {
            rd,
            base,
            off: Operand::Reg(off),
            ni,
        }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rs, base, imm)| Instr::St {
            rs,
            base,
            off: Operand::Imm(imm),
            ni: NiCmd::NONE,
        }),
        (arb_reg(), arb_reg(), arb_reg(), arb_ni()).prop_map(|(rs, base, off, ni)| Instr::St {
            rs,
            base,
            off: Operand::Reg(off),
            ni,
        }),
        (0u32..(1 << 26)).prop_map(|w| Instr::Br { target: w * 4 }),
        (
            prop::sample::select(Cond::ALL.to_vec()),
            arb_reg(),
            0u32..(1 << 18)
        )
            .prop_map(|(cond, rs, w)| Instr::Bcnd {
                cond,
                rs,
                target: w * 4
            }),
        (arb_reg(), arb_ni()).prop_map(|(rs, ni)| Instr::Jmp { rs, ni }),
        (0u32..(1 << 26)).prop_map(|w| Instr::Bsr { target: w * 4 }),
        arb_reg().prop_map(|rs| Instr::Jsr { rs }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let w = encode(&instr).expect("well-formed instructions always encode");
        let back = decode(w).expect("encoded words always decode");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn decode_never_panics(w in any::<u32>()) {
        let _ = decode(w);
    }

    #[test]
    fn decode_encode_fixpoint(w in any::<u32>()) {
        // Any word that decodes must re-encode to a word that decodes to the
        // same instruction (the encoding may canonicalize ignored bits).
        if let Ok(i) = decode(w) {
            let w2 = encode(&i).expect("decoded instructions re-encode");
            prop_assert_eq!(decode(w2).unwrap(), i);
        }
    }

    #[test]
    fn ni_cmd_survives_triadic(bits in 0u8..0x80, rd in arb_reg(), rs in arb_reg()) {
        let ni = NiCmd::from_bits(bits);
        let i = Instr::Alu {
            op: AluOp::Or,
            rd,
            rs1: rs,
            rs2: Operand::Reg(Reg::R0),
            ni,
        };
        let back = decode(encode(&i).unwrap()).unwrap();
        prop_assert_eq!(back.ni_cmd(), ni);
    }
}
