//! Randomized tests (tcni-check): binary encoding round-trips for arbitrary
//! well-formed instructions, and the NI command bits survive every triadic
//! encoding.

use tcni_check::{check, Rng};
use tcni_isa::{decode, encode, AluOp, Cond, FpOp, Instr, MsgType, NiCmd, Operand, Reg, SendMode};

const CASES: u64 = 256;

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::try_from(rng.below(32) as u8).unwrap()
}

fn arb_ni(rng: &mut Rng) -> NiCmd {
    NiCmd {
        mode: SendMode::from_bits(rng.below(4) as u8),
        mtype: MsgType::new(rng.below(16) as u8).unwrap(),
        next: rng.bool(),
    }
}

fn arb_alu_op(rng: &mut Rng) -> AluOp {
    *rng.pick(&AluOp::ALL)
}

fn arb_instr(rng: &mut Rng) -> Instr {
    match rng.below(15) {
        0 => Instr::Nop,
        1 => Instr::Halt,
        2 => Instr::Alu {
            op: arb_alu_op(rng),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: Operand::Reg(arb_reg(rng)),
            ni: arb_ni(rng),
        },
        3 => Instr::Alu {
            op: arb_alu_op(rng),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: Operand::Imm(rng.u16()),
            ni: NiCmd::NONE,
        },
        4 => Instr::Fp {
            op: *rng.pick(&FpOp::ALL),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
            ni: arb_ni(rng),
        },
        5 => Instr::Lui {
            rd: arb_reg(rng),
            imm: rng.u16(),
        },
        6 => Instr::Ld {
            rd: arb_reg(rng),
            base: arb_reg(rng),
            off: Operand::Imm(rng.u16()),
            ni: NiCmd::NONE,
        },
        7 => Instr::Ld {
            rd: arb_reg(rng),
            base: arb_reg(rng),
            off: Operand::Reg(arb_reg(rng)),
            ni: arb_ni(rng),
        },
        8 => Instr::St {
            rs: arb_reg(rng),
            base: arb_reg(rng),
            off: Operand::Imm(rng.u16()),
            ni: NiCmd::NONE,
        },
        9 => Instr::St {
            rs: arb_reg(rng),
            base: arb_reg(rng),
            off: Operand::Reg(arb_reg(rng)),
            ni: arb_ni(rng),
        },
        10 => Instr::Br {
            target: rng.below(1 << 26) as u32 * 4,
        },
        11 => Instr::Bcnd {
            cond: *rng.pick(&Cond::ALL),
            rs: arb_reg(rng),
            target: rng.below(1 << 18) as u32 * 4,
        },
        12 => Instr::Jmp {
            rs: arb_reg(rng),
            ni: arb_ni(rng),
        },
        13 => Instr::Bsr {
            target: rng.below(1 << 26) as u32 * 4,
        },
        _ => Instr::Jsr { rs: arb_reg(rng) },
    }
}

#[test]
fn encode_decode_roundtrip() {
    check("encode_decode_roundtrip", CASES, |rng| {
        let instr = arb_instr(rng);
        let w = encode(&instr).expect("well-formed instructions always encode");
        let back = decode(w).expect("encoded words always decode");
        assert_eq!(back, instr);
    });
}

#[test]
fn decode_never_panics() {
    check("decode_never_panics", CASES, |rng| {
        let _ = decode(rng.u32());
    });
}

#[test]
fn decode_encode_fixpoint() {
    check("decode_encode_fixpoint", CASES, |rng| {
        // Any word that decodes must re-encode to a word that decodes to the
        // same instruction (the encoding may canonicalize ignored bits).
        if let Ok(i) = decode(rng.u32()) {
            let w2 = encode(&i).expect("decoded instructions re-encode");
            assert_eq!(decode(w2).unwrap(), i);
        }
    });
}

#[test]
fn ni_cmd_survives_triadic() {
    check("ni_cmd_survives_triadic", CASES, |rng| {
        let ni = NiCmd::from_bits(rng.below(0x80) as u8);
        let i = Instr::Alu {
            op: AluOp::Or,
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: Operand::Reg(Reg::R0),
            ni,
        };
        let back = decode(encode(&i).unwrap()).unwrap();
        assert_eq!(back.ni_cmd(), ni);
    });
}
