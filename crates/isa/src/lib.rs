//! # tcni-isa — an 88100-flavoured RISC instruction set
//!
//! This crate is the instruction-set substrate for the TCNI reproduction of
//! Henry & Joerg, *A Tightly-Coupled Processor-Network Interface* (ASPLOS
//! 1992). The paper hand-writes message handlers for "the 88100 Motorola RISC
//! processor — a typical RISC processor" and counts dynamic cycles; we instead
//! define a compact, self-consistent RISC ISA in the same style, an assembler
//! for it, and a binary encoding, so that handler costs can be *measured* by
//! execution rather than hand-counted.
//!
//! The one architecturally novel feature, straight from §3.3 of the paper, is
//! that every *triadic* (three-register) instruction carries an optional
//! 7-bit **network-interface command field** ([`NiCmd`]): a 2-bit send mode
//! (none / send / reply / forward), a 4-bit message type, and a NEXT bit.
//! On the register-mapped NI implementation this lets a single instruction
//! such as
//!
//! ```text
//! add o1, i1, i2, SEND type=5, NEXT
//! ```
//!
//! compute into an output register, send a message, and advance the input
//! registers — the paper's headline mechanism.
//!
//! ## Example
//!
//! ```
//! use tcni_isa::{Assembler, Reg};
//!
//! let mut a = Assembler::new();
//! a.label("start");
//! a.addi(Reg::R2, Reg::R0, 41);
//! a.addi(Reg::R2, Reg::R2, 1);
//! a.halt();
//! let program = a.assemble().expect("assembles");
//! assert_eq!(program.len(), 3);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod encode;
mod instr;
mod ni;
mod program;
mod reg;

pub use asm::{AsmError, Assembler};
pub use encode::{decode, encode, DecodeError, EncodeError};
pub use instr::{AluOp, Cond, CostClass, FpOp, Instr, Operand};
pub use ni::{MsgType, NiCmd, SendMode};
pub use program::{Program, Region};
pub use reg::Reg;
