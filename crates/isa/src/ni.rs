//! The network-interface command surface shared between the instruction set
//! and the NI device model.
//!
//! §3.3 of the paper encodes NI commands "into the unused bits of every
//! triadic (three-register) 88100 instruction". The command occupies seven
//! bits: a 2-bit send mode, a 4-bit message type, and a NEXT bit. The same
//! seven bits of information are encoded into low-order *address* bits for the
//! memory-mapped implementations (Figure 9); that encoding lives in
//! `tcni-core` next to the device it controls.

use std::fmt;

/// A 4-bit message type, `0..=15`.
///
/// Types carry dispatch meaning in the optimized architecture (§2.2.1):
/// type 0 marks messages that carry their handler's instruction pointer in
/// word 1 (e.g. `Send` messages), and type 1 is architecturally disallowed —
/// the dispatch hardware uses it to report exceptions (§2.2.4).
///
/// # Example
///
/// ```
/// use tcni_isa::MsgType;
/// let t = MsgType::new(7).unwrap();
/// assert_eq!(t.bits(), 7);
/// assert!(MsgType::new(16).is_none());
/// assert!(MsgType::HANDLER_IN_MSG.is_handler_in_msg());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MsgType(u8);

impl MsgType {
    /// Type 0: the handler instruction pointer travels in word 1 of the
    /// message itself (the paper's `Send` convention, §2.2.3).
    pub const HANDLER_IN_MSG: MsgType = MsgType(0);

    /// Type 1: reserved by the dispatch hardware for exception reporting
    /// (§2.2.4). Messages of this type must never be sent.
    pub const EXCEPTION: MsgType = MsgType(1);

    /// Type 14: a collective-protocol message (barrier / broadcast /
    /// reduce). The encoded-type dispatch of §3 is exactly the hook that
    /// lets the NI recognize and combine these without processor help;
    /// the payload layout lives in `tcni-core::collective`.
    pub const COLLECTIVE: MsgType = MsgType(14);

    /// Creates a message type from its 4-bit encoding, or `None` if
    /// `bits > 15`.
    pub fn new(bits: u8) -> Option<MsgType> {
        (bits <= 0xF).then_some(MsgType(bits))
    }

    /// The 4-bit encoding.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether this is type 0 (handler IP supplied by the message).
    pub fn is_handler_in_msg(self) -> bool {
        self == Self::HANDLER_IN_MSG
    }

    /// Whether this is the architecturally disallowed exception type.
    pub fn is_reserved_exception(self) -> bool {
        self == Self::EXCEPTION
    }

    /// All sixteen message types.
    pub fn all() -> impl Iterator<Item = MsgType> {
        (0..16).map(MsgType)
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The send mode of an NI command (§2.2.2).
///
/// `Reply` and `Forward` are the paper's *fast reply/forward* optimization:
/// the SEND command composes the outgoing message using certain **input**
/// registers in place of output registers, removing explicit copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SendMode {
    /// No send is performed.
    #[default]
    None,
    /// Plain send: all five words come from the output registers.
    Send,
    /// Reply mode: words 0 and 1 come from input registers `i1`/`i2`
    /// (the requester's continuation FP/IP), the rest from output registers.
    Reply,
    /// Forward mode: words 1..=4 come from input registers `i1..=i4`,
    /// word 0 from `o0` (the new destination).
    Forward,
}

impl SendMode {
    /// The 2-bit encoding used both in triadic instructions and in
    /// memory-mapped command addresses (Figure 9): `00` none, `01` send,
    /// `10` reply, `11` forward.
    pub fn bits(self) -> u8 {
        match self {
            SendMode::None => 0b00,
            SendMode::Send => 0b01,
            SendMode::Reply => 0b10,
            SendMode::Forward => 0b11,
        }
    }

    /// Decodes the 2-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    pub fn from_bits(bits: u8) -> SendMode {
        match bits {
            0b00 => SendMode::None,
            0b01 => SendMode::Send,
            0b10 => SendMode::Reply,
            0b11 => SendMode::Forward,
            _ => panic!("send mode encoding {bits} out of range"),
        }
    }

    /// Whether any message is emitted.
    pub fn sends(self) -> bool {
        self != SendMode::None
    }
}

impl fmt::Display for SendMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SendMode::None => "none",
            SendMode::Send => "SEND",
            SendMode::Reply => "SEND-reply",
            SendMode::Forward => "SEND-forward",
        };
        f.write_str(s)
    }
}

/// The 7-bit network-interface command carried by a triadic instruction
/// (register-mapped implementation, §3.3) or encoded into address bits
/// (memory-mapped implementations, Figure 9).
///
/// # Example
///
/// ```
/// use tcni_isa::{MsgType, NiCmd, SendMode};
///
/// let cmd = NiCmd::send(MsgType::new(5).unwrap()).with_next();
/// assert_eq!(cmd.mode, SendMode::Send);
/// assert!(cmd.next);
/// assert_eq!(NiCmd::from_bits(cmd.bits()), cmd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NiCmd {
    /// Send mode (2 bits).
    pub mode: SendMode,
    /// Message type transmitted with the message (4 bits). Ignored unless
    /// `mode` sends, and ignored by the *basic* architecture, which reads the
    /// 32-bit handler id from message word 4 instead (§2.1.4).
    pub mtype: MsgType,
    /// Whether to pop the next message into the input registers (NEXT).
    pub next: bool,
}

impl NiCmd {
    /// A command that does nothing (all bits zero).
    pub const NONE: NiCmd = NiCmd {
        mode: SendMode::None,
        mtype: MsgType(0),
        next: false,
    };

    /// A plain SEND of the given type.
    pub fn send(mtype: MsgType) -> NiCmd {
        NiCmd {
            mode: SendMode::Send,
            mtype,
            next: false,
        }
    }

    /// A SEND in reply mode (§2.2.2).
    pub fn reply(mtype: MsgType) -> NiCmd {
        NiCmd {
            mode: SendMode::Reply,
            mtype,
            next: false,
        }
    }

    /// A SEND in forward mode (§2.2.2).
    pub fn forward(mtype: MsgType) -> NiCmd {
        NiCmd {
            mode: SendMode::Forward,
            mtype,
            next: false,
        }
    }

    /// A bare NEXT command.
    pub fn next() -> NiCmd {
        NiCmd {
            mode: SendMode::None,
            mtype: MsgType(0),
            next: true,
        }
    }

    /// Adds the NEXT bit to this command.
    pub fn with_next(mut self) -> NiCmd {
        self.next = true;
        self
    }

    /// Whether the command has any effect.
    pub fn is_noop(self) -> bool {
        self == Self::NONE || (self.mode == SendMode::None && !self.next)
    }

    /// Packs the command into its 7-bit encoding:
    /// bit 6 = NEXT, bits 5:4 = send mode, bits 3:0 = type.
    pub fn bits(self) -> u8 {
        (u8::from(self.next) << 6) | (self.mode.bits() << 4) | self.mtype.bits()
    }

    /// Unpacks a 7-bit encoding produced by [`NiCmd::bits`].
    ///
    /// Bits above 6 are ignored.
    pub fn from_bits(bits: u8) -> NiCmd {
        NiCmd {
            next: bits & 0x40 != 0,
            mode: SendMode::from_bits((bits >> 4) & 0b11),
            mtype: MsgType(bits & 0xF),
        }
    }
}

impl fmt::Display for NiCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if self.mode.sends() {
            write!(f, "{} type={}", self.mode, self.mtype)?;
            first = false;
        }
        if self.next {
            if !first {
                f.write_str(", ")?;
            }
            f.write_str("NEXT")?;
            first = false;
        }
        if first {
            f.write_str("no-op")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_type_bounds() {
        assert_eq!(MsgType::new(15).unwrap().bits(), 15);
        assert!(MsgType::new(16).is_none());
        assert_eq!(MsgType::all().count(), 16);
    }

    #[test]
    fn send_mode_roundtrip() {
        for mode in [
            SendMode::None,
            SendMode::Send,
            SendMode::Reply,
            SendMode::Forward,
        ] {
            assert_eq!(SendMode::from_bits(mode.bits()), mode);
        }
    }

    #[test]
    fn ni_cmd_bits_roundtrip() {
        for next in [false, true] {
            for mode_bits in 0..4u8 {
                for ty in 0..16u8 {
                    let cmd = NiCmd {
                        next,
                        mode: SendMode::from_bits(mode_bits),
                        mtype: MsgType::new(ty).unwrap(),
                    };
                    assert_eq!(NiCmd::from_bits(cmd.bits()), cmd);
                }
            }
        }
    }

    #[test]
    fn noop_detection() {
        assert!(NiCmd::NONE.is_noop());
        assert!(!NiCmd::next().is_noop());
        assert!(!NiCmd::send(MsgType::HANDLER_IN_MSG).is_noop());
    }

    #[test]
    fn display_formats() {
        let cmd = NiCmd::reply(MsgType::new(7).unwrap()).with_next();
        assert_eq!(cmd.to_string(), "SEND-reply type=7, NEXT");
        assert_eq!(NiCmd::NONE.to_string(), "no-op");
    }
}
