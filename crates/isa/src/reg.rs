//! General-purpose register names.

use std::fmt;

/// One of the 32 general-purpose registers.
///
/// `R0` is hardwired to zero, as on the 88100. On the register-mapped network
/// interface implementation (§3.3 of the paper) registers `R16..=R30` alias
/// the fifteen interface registers; that aliasing is defined by `tcni-core`
/// and enforced by `tcni-sim` — at the ISA level they are ordinary registers.
///
/// # Example
///
/// ```
/// use tcni_isa::Reg;
/// let r = Reg::try_from(5u8).unwrap();
/// assert_eq!(r, Reg::R5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
#[derive(Default)]
pub enum Reg {
    #[default]
    R0 = 0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 32] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
        Reg::R28,
        Reg::R29,
        Reg::R30,
        Reg::R31,
    ];

    /// The register's index, `0..=31`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns `true` for `R0`, whose value is architecturally always zero.
    pub fn is_zero(self) -> bool {
        self == Reg::R0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Error returned when converting an out-of-range index into a [`Reg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryFromRegError(pub(crate) u8);

impl fmt::Display for TryFromRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register index {} out of range (0..=31)", self.0)
    }
}

impl std::error::Error for TryFromRegError {}

impl TryFrom<u8> for Reg {
    type Error = TryFromRegError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        Reg::ALL
            .get(value as usize)
            .copied()
            .ok_or(TryFromRegError(value))
    }
}

impl From<Reg> for u8 {
    fn from(value: Reg) -> Self {
        value as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::try_from(i as u8).unwrap(), *r);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Reg::try_from(32).is_err());
        assert!(Reg::try_from(255).is_err());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R31.to_string(), "r31");
    }
}
