//! Instruction definitions.

use std::fmt;

use crate::ni::NiCmd;
use crate::reg::Reg;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two's-complement addition (wrapping).
    Add,
    /// Two's-complement subtraction (wrapping).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `rs2 & 31`.
    Shl,
    /// Logical shift right by `rs2 & 31`.
    Shr,
    /// Arithmetic shift right by `rs2 & 31`.
    Sar,
    /// Integer multiply (wrapping; multi-cycle per the timing model).
    Mul,
    /// Set-if-equal: `rd = (rs1 == rs2) as u32`.
    CmpEq,
    /// Set-if-less-than, signed.
    CmpLt,
    /// Set-if-less-than, unsigned.
    CmpLtu,
}

impl AluOp {
    /// All ALU operations, for exhaustive testing.
    pub const ALL: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Mul,
        AluOp::CmpEq,
        AluOp::CmpLt,
        AluOp::CmpLtu,
    ];

    /// Applies the operation to two 32-bit values.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b & 31),
            AluOp::Shr => a.wrapping_shr(b & 31),
            AluOp::Sar => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::CmpEq => u32::from(a == b),
            AluOp::CmpLt => u32::from((a as i32) < (b as i32)),
            AluOp::CmpLtu => u32::from(a < b),
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Mul => "mul",
            AluOp::CmpEq => "cmpeq",
            AluOp::CmpLt => "cmplt",
            AluOp::CmpLtu => "cmpltu",
        }
    }
}

/// Floating-point operations over IEEE-754 single precision, stored in GPRs
/// as raw bit patterns (the 88100 likewise shares its register file between
/// integer and floating-point values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Single-precision addition.
    FAdd,
    /// Single-precision subtraction.
    FSub,
    /// Single-precision multiplication.
    FMul,
    /// Single-precision division.
    FDiv,
    /// Set-if-less-than over single-precision values.
    FCmpLt,
}

impl FpOp {
    /// All floating-point operations, for exhaustive testing.
    pub const ALL: [FpOp; 5] = [FpOp::FAdd, FpOp::FSub, FpOp::FMul, FpOp::FDiv, FpOp::FCmpLt];

    /// Applies the operation to two values given as raw f32 bit patterns,
    /// returning a raw bit pattern (or a 0/1 flag for comparisons).
    pub fn apply(self, a: u32, b: u32) -> u32 {
        let (x, y) = (f32::from_bits(a), f32::from_bits(b));
        match self {
            FpOp::FAdd => (x + y).to_bits(),
            FpOp::FSub => (x - y).to_bits(),
            FpOp::FMul => (x * y).to_bits(),
            FpOp::FDiv => (x / y).to_bits(),
            FpOp::FCmpLt => u32::from(x < y),
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            FpOp::FAdd => "fadd",
            FpOp::FSub => "fsub",
            FpOp::FMul => "fmul",
            FpOp::FDiv => "fdiv",
            FpOp::FCmpLt => "fcmplt",
        }
    }
}

/// Branch conditions, evaluated against a single source register
/// (88100 `bcnd` style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if the register is zero.
    Eq0,
    /// Branch if the register is non-zero.
    Ne0,
    /// Branch if the register is negative (signed).
    Lt0,
    /// Branch if the register is non-negative (signed).
    Ge0,
    /// Branch if the register is strictly positive (signed).
    Gt0,
    /// Branch if the register is zero or negative (signed).
    Le0,
}

impl Cond {
    /// All branch conditions, for exhaustive testing.
    pub const ALL: [Cond; 6] = [
        Cond::Eq0,
        Cond::Ne0,
        Cond::Lt0,
        Cond::Ge0,
        Cond::Gt0,
        Cond::Le0,
    ];

    /// Evaluates the condition against a register value.
    pub fn eval(self, v: u32) -> bool {
        let s = v as i32;
        match self {
            Cond::Eq0 => s == 0,
            Cond::Ne0 => s != 0,
            Cond::Lt0 => s < 0,
            Cond::Ge0 => s >= 0,
            Cond::Gt0 => s > 0,
            Cond::Le0 => s <= 0,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq0 => "eq0",
            Cond::Ne0 => "ne0",
            Cond::Lt0 => "lt0",
            Cond::Ge0 => "ge0",
            Cond::Gt0 => "gt0",
            Cond::Le0 => "le0",
        }
    }
}

/// The second source operand of an ALU instruction: a register (making the
/// instruction *triadic*, and therefore able to carry an [`NiCmd`]) or a
/// 16-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand (triadic form).
    Reg(Reg),
    /// 16-bit immediate, zero-extended for logical operations and
    /// sign-extended for arithmetic ones (see `Operand::extend`).
    Imm(u16),
}

impl Operand {
    /// Resolves the operand: immediates are extended according to the
    /// consuming operation (arithmetic sign-extends, logical zero-extends,
    /// as on the 88100).
    pub fn extend(self, op: AluOp, regs: &dyn Fn(Reg) -> u32) -> u32 {
        match self {
            Operand::Reg(r) => regs(r),
            Operand::Imm(imm) => match op {
                AluOp::Add | AluOp::Sub | AluOp::Mul | AluOp::CmpLt => imm as i16 as i32 as u32,
                _ => imm as u32,
            },
        }
    }

    /// Whether this operand makes the instruction triadic.
    pub fn is_reg(self) -> bool {
        matches!(self, Operand::Reg(_))
    }
}

impl From<Reg> for Operand {
    fn from(value: Reg) -> Self {
        Operand::Reg(value)
    }
}

impl From<u16> for Operand {
    fn from(value: u16) -> Self {
        Operand::Imm(value)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i:#x}"),
        }
    }
}

/// Cycle-attribution class for a region of code, used by the evaluation
/// harness to split program time into the three components of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostClass {
    /// Ordinary (non-message-passing) work.
    #[default]
    Compute,
    /// Message dispatch: polling for and jumping to the handler.
    Dispatch,
    /// All other communication work: composing, sending, and receiving
    /// message values.
    Communication,
}

impl CostClass {
    /// All cost classes.
    pub const ALL: [CostClass; 3] = [
        CostClass::Compute,
        CostClass::Dispatch,
        CostClass::Communication,
    ];
}

impl fmt::Display for CostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CostClass::Compute => "compute",
            CostClass::Dispatch => "dispatch",
            CostClass::Communication => "communication",
        };
        f.write_str(s)
    }
}

/// A decoded instruction.
///
/// Branch and jump targets are absolute byte addresses (the assembler resolves
/// labels). Every instruction occupies 4 bytes. Taken control transfers have a
/// single architectural **delay slot**, as on the 88100; the `.n` (nullify)
/// form is modelled by the assembler inserting an explicit `Nop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Integer ALU operation, optionally carrying an NI command when triadic.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source operand.
        rs2: Operand,
        /// NI command (register-mapped implementation only; must be
        /// [`NiCmd::NONE`] unless `rs2` is a register).
        ni: NiCmd,
    },
    /// Floating-point operation (always triadic).
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
        /// NI command (register-mapped implementation only).
        ni: NiCmd,
    },
    /// Load upper immediate: `rd = imm << 16` (88100 `or.u` with r0).
    Lui {
        /// Destination register.
        rd: Reg,
        /// Immediate placed in the upper half-word.
        imm: u16,
    },
    /// Word load: `rd = mem[rs1 + offset]`. The register-offset form is
    /// triadic and may carry an NI command.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Offset: immediate (sign-extended) or register.
        off: Operand,
        /// NI command (register-offset form only).
        ni: NiCmd,
    },
    /// Word store: `mem[rs1 + offset] = rs`. Register-offset form is triadic.
    St {
        /// Source register (store data).
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Offset: immediate (sign-extended) or register.
        off: Operand,
        /// NI command (register-offset form only).
        ni: NiCmd,
    },
    /// Unconditional branch to an absolute byte address; one delay slot.
    Br {
        /// Absolute byte address of the target.
        target: u32,
    },
    /// Conditional branch; one delay slot when taken and when not taken
    /// (the slot instruction always executes, as on the 88100 non-`.n` form).
    Bcnd {
        /// Condition evaluated on `rs`.
        cond: Cond,
        /// Register tested.
        rs: Reg,
        /// Absolute byte address of the target.
        target: u32,
    },
    /// Indirect jump to the byte address in `rs`; one delay slot. Triadic
    /// (it reads a register), so it may carry an NI command — this is how the
    /// register-mapped model dispatches with `jmp MsgIp` in one instruction.
    Jmp {
        /// Register holding the target byte address.
        rs: Reg,
        /// NI command (register-mapped implementation only).
        ni: NiCmd,
    },
    /// Branch-and-link: saves the return address (next instruction after the
    /// delay slot) into `r1` and branches; one delay slot.
    Bsr {
        /// Absolute byte address of the target.
        target: u32,
    },
    /// Jump-and-link through a register; one delay slot.
    Jsr {
        /// Register holding the target byte address.
        rs: Reg,
    },
    /// No operation.
    Nop,
    /// Stops the processor (simulation artifact; real hardware would idle).
    Halt,
}

impl Instr {
    /// The NI command attached to the instruction, if any.
    pub fn ni_cmd(&self) -> NiCmd {
        match self {
            Instr::Alu { ni, .. }
            | Instr::Fp { ni, .. }
            | Instr::Ld { ni, .. }
            | Instr::St { ni, .. }
            | Instr::Jmp { ni, .. } => *ni,
            _ => NiCmd::NONE,
        }
    }

    /// Whether the instruction is triadic (three-register form) and may
    /// therefore legally carry an NI command in the register-mapped model.
    pub fn is_triadic(&self) -> bool {
        match self {
            Instr::Alu { rs2, .. } => rs2.is_reg(),
            Instr::Fp { .. } | Instr::Jmp { .. } => true,
            Instr::Ld { off, .. } | Instr::St { off, .. } => off.is_reg(),
            _ => false,
        }
    }

    /// Whether the instruction transfers control (and therefore has a delay
    /// slot).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Br { .. }
                | Instr::Bcnd { .. }
                | Instr::Jmp { .. }
                | Instr::Bsr { .. }
                | Instr::Jsr { .. }
        )
    }

    /// The destination register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instr::Alu { rd, .. }
            | Instr::Fp { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Ld { rd, .. } => Some(*rd),
            Instr::Bsr { .. } | Instr::Jsr { .. } => Some(Reg::R1),
            _ => None,
        }
    }

    /// Source registers read by this instruction, in evaluation order.
    /// Store data counts as a *late* operand (see `tcni-cpu` timing); it is
    /// reported last.
    pub fn sources(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(3);
        match self {
            Instr::Alu { rs1, rs2, .. } => {
                v.push(*rs1);
                if let Operand::Reg(r) = rs2 {
                    v.push(*r);
                }
            }
            Instr::Fp { rs1, rs2, .. } => {
                v.push(*rs1);
                v.push(*rs2);
            }
            Instr::Ld { base, off, .. } => {
                v.push(*base);
                if let Operand::Reg(r) = off {
                    v.push(*r);
                }
            }
            Instr::St { rs, base, off, .. } => {
                v.push(*base);
                if let Operand::Reg(r) = off {
                    v.push(*r);
                }
                v.push(*rs); // late operand
            }
            Instr::Bcnd { rs, .. } => v.push(*rs),
            Instr::Jmp { rs, .. } | Instr::Jsr { rs, .. } => v.push(*rs),
            _ => {}
        }
        v
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ni_suffix(f: &mut fmt::Formatter<'_>, ni: &NiCmd) -> fmt::Result {
            if !ni.is_noop() {
                write!(f, ", {ni}")?;
            }
            Ok(())
        }
        match self {
            Instr::Alu {
                op,
                rd,
                rs1,
                rs2,
                ni,
            } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())?;
                ni_suffix(f, ni)
            }
            Instr::Fp {
                op,
                rd,
                rs1,
                rs2,
                ni,
            } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())?;
                ni_suffix(f, ni)
            }
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instr::Ld { rd, base, off, ni } => {
                write!(f, "ld {rd}, [{base} + {off}]")?;
                ni_suffix(f, ni)
            }
            Instr::St { rs, base, off, ni } => {
                write!(f, "st {rs}, [{base} + {off}]")?;
                ni_suffix(f, ni)
            }
            Instr::Br { target } => write!(f, "br {target:#x}"),
            Instr::Bcnd { cond, rs, target } => {
                write!(f, "bcnd.{} {rs}, {target:#x}", cond.mnemonic())
            }
            Instr::Jmp { rs, ni } => {
                write!(f, "jmp {rs}")?;
                ni_suffix(f, ni)
            }
            Instr::Bsr { target } => write!(f, "bsr {target:#x}"),
            Instr::Jsr { rs } => write!(f, "jsr {rs}"),
            Instr::Nop => f.write_str("nop"),
            Instr::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgType;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, u32::MAX), 2);
        assert_eq!(AluOp::Sub.apply(3, 5), (-2i32) as u32);
        assert_eq!(AluOp::Shl.apply(1, 33), 2); // shift amount masked
        assert_eq!(AluOp::Sar.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::CmpLt.apply((-1i32) as u32, 0), 1);
        assert_eq!(AluOp::CmpLtu.apply((-1i32) as u32, 0), 0);
    }

    #[test]
    fn fp_semantics() {
        let two = 2.0f32.to_bits();
        let three = 3.0f32.to_bits();
        assert_eq!(f32::from_bits(FpOp::FMul.apply(two, three)), 6.0);
        assert_eq!(FpOp::FCmpLt.apply(two, three), 1);
        assert_eq!(FpOp::FCmpLt.apply(three, two), 0);
    }

    #[test]
    fn cond_semantics() {
        let neg = (-5i32) as u32;
        assert!(Cond::Lt0.eval(neg));
        assert!(!Cond::Ge0.eval(neg));
        assert!(Cond::Eq0.eval(0));
        assert!(Cond::Le0.eval(0));
        assert!(Cond::Gt0.eval(7));
    }

    #[test]
    fn triadic_detection() {
        let triadic = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R2,
            rs1: Reg::R3,
            rs2: Operand::Reg(Reg::R4),
            ni: NiCmd::NONE,
        };
        assert!(triadic.is_triadic());
        let dyadic = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R2,
            rs1: Reg::R3,
            rs2: Operand::Imm(1),
            ni: NiCmd::NONE,
        };
        assert!(!dyadic.is_triadic());
        assert!(Instr::Jmp {
            rs: Reg::R2,
            ni: NiCmd::NONE
        }
        .is_triadic());
    }

    #[test]
    fn sources_and_dest() {
        let st = Instr::St {
            rs: Reg::R5,
            base: Reg::R6,
            off: Operand::Imm(4),
            ni: NiCmd::NONE,
        };
        assert_eq!(st.sources(), vec![Reg::R6, Reg::R5]);
        assert_eq!(st.dest(), None);
        let bsr = Instr::Bsr { target: 0x100 };
        assert_eq!(bsr.dest(), Some(Reg::R1));
    }

    #[test]
    fn ni_cmd_accessor() {
        let i = Instr::Jmp {
            rs: Reg::R29,
            ni: NiCmd::next(),
        };
        assert!(i.ni_cmd().next);
        assert_eq!(Instr::Nop.ni_cmd(), NiCmd::NONE);
    }

    #[test]
    fn display_with_ni() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R17,
            rs1: Reg::R21,
            rs2: Operand::Reg(Reg::R22),
            ni: NiCmd::send(MsgType::new(5).unwrap()).with_next(),
        };
        assert_eq!(i.to_string(), "add r17, r21, r22, SEND type=5, NEXT");
    }
}
