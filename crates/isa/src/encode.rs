//! Binary instruction encoding.
//!
//! The paper's interface commands "take up only seven bits" and "could be
//! incorporated into the unused bits of many existing instructions" (§3).
//! This module demonstrates that claim concretely: every triadic instruction
//! of our 32-bit encoding has exactly seven unused bits, and the [`NiCmd`]
//! packs into them. The encoding is not the real 88100 one — it is a clean
//! fixed-width format sufficient to show the bits fit and to round-trip
//! programs.
//!
//! Layout (bit 31 is the MSB):
//!
//! ```text
//! opcode[31:26] | fields...
//! ALU-reg : op4 | rd5 | rs1_5 | rs2_5 | ni7
//! ALU-imm : (per-op opcode) rd5 | rs1_5 | imm16
//! FP      : op3 | rd5 | rs1_5 | rs2_5 | ni7 | pad1
//! LUI     : rd5 | imm16
//! LD/ST-imm: r5 | base5 | imm16
//! LD/ST-reg: r5 | base5 | off5 | ni7
//! BR/BSR  : word-target26
//! BCND    : cond3 | rs5 | word-target18
//! JMP     : rs5 | ni7        JSR: rs5
//! ```

use std::fmt;

use crate::instr::{AluOp, Cond, FpOp, Instr, Operand};
use crate::ni::NiCmd;
use crate::reg::Reg;

const OP_NOP: u32 = 0x00;
const OP_HALT: u32 = 0x01;
const OP_ALU_REG: u32 = 0x02;
const OP_FP: u32 = 0x04;
const OP_LUI: u32 = 0x05;
const OP_LD_IMM: u32 = 0x06;
const OP_LD_REG: u32 = 0x07;
const OP_ST_IMM: u32 = 0x08;
const OP_ST_REG: u32 = 0x09;
const OP_BR: u32 = 0x0A;
const OP_BCND: u32 = 0x0B;
const OP_JMP: u32 = 0x0C;
const OP_BSR: u32 = 0x0D;
const OP_JSR: u32 = 0x0E;
/// ALU-immediate opcodes occupy `0x10 + alu_op_index`.
const OP_ALU_IMM_BASE: u32 = 0x10;

fn alu_index(op: AluOp) -> u32 {
    AluOp::ALL.iter().position(|o| *o == op).expect("op in ALL") as u32
}

fn fp_index(op: FpOp) -> u32 {
    FpOp::ALL.iter().position(|o| *o == op).expect("op in ALL") as u32
}

fn cond_index(c: Cond) -> u32 {
    Cond::ALL.iter().position(|x| *x == c).expect("cond in ALL") as u32
}

/// Errors from [`encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A branch target does not fit in the instruction's target field or is
    /// misaligned.
    TargetOutOfRange(u32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TargetOutOfRange(t) => {
                write!(
                    f,
                    "branch target {t:#x} unencodable (misaligned or too far)"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode or a sub-field is not a defined encoding.
    Illegal(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Illegal(w) => write!(f, "illegal instruction word {w:#010x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn reg_field(r: Reg, shift: u32) -> u32 {
    (r.index() as u32) << shift
}

fn word_target(target: u32, bits: u32) -> Result<u32, EncodeError> {
    if !target.is_multiple_of(4) {
        return Err(EncodeError::TargetOutOfRange(target));
    }
    let w = target / 4;
    if w >> bits != 0 {
        return Err(EncodeError::TargetOutOfRange(target));
    }
    Ok(w)
}

/// Encodes an instruction into a 32-bit word.
///
/// # Errors
///
/// Returns [`EncodeError::TargetOutOfRange`] if a branch target is misaligned
/// or beyond the reach of its target field (`br`/`bsr`: 256 MiB;
/// `bcnd`: 1 MiB).
pub fn encode(instr: &Instr) -> Result<u32, EncodeError> {
    let w = match *instr {
        Instr::Nop => OP_NOP << 26,
        Instr::Halt => OP_HALT << 26,
        Instr::Alu {
            op,
            rd,
            rs1,
            rs2,
            ni,
        } => match rs2 {
            Operand::Reg(r2) => {
                (OP_ALU_REG << 26)
                    | (alu_index(op) << 22)
                    | reg_field(rd, 17)
                    | reg_field(rs1, 12)
                    | reg_field(r2, 7)
                    | u32::from(ni.bits())
            }
            Operand::Imm(imm) => {
                ((OP_ALU_IMM_BASE + alu_index(op)) << 26)
                    | reg_field(rd, 21)
                    | reg_field(rs1, 16)
                    | u32::from(imm)
            }
        },
        Instr::Fp {
            op,
            rd,
            rs1,
            rs2,
            ni,
        } => {
            (OP_FP << 26)
                | (fp_index(op) << 23)
                | reg_field(rd, 18)
                | reg_field(rs1, 13)
                | reg_field(rs2, 8)
                | (u32::from(ni.bits()) << 1)
        }
        Instr::Lui { rd, imm } => (OP_LUI << 26) | reg_field(rd, 21) | u32::from(imm),
        Instr::Ld { rd, base, off, ni } => match off {
            Operand::Imm(imm) => {
                (OP_LD_IMM << 26) | reg_field(rd, 21) | reg_field(base, 16) | u32::from(imm)
            }
            Operand::Reg(r) => {
                (OP_LD_REG << 26)
                    | reg_field(rd, 21)
                    | reg_field(base, 16)
                    | reg_field(r, 11)
                    | u32::from(ni.bits())
            }
        },
        Instr::St { rs, base, off, ni } => match off {
            Operand::Imm(imm) => {
                (OP_ST_IMM << 26) | reg_field(rs, 21) | reg_field(base, 16) | u32::from(imm)
            }
            Operand::Reg(r) => {
                (OP_ST_REG << 26)
                    | reg_field(rs, 21)
                    | reg_field(base, 16)
                    | reg_field(r, 11)
                    | u32::from(ni.bits())
            }
        },
        Instr::Br { target } => (OP_BR << 26) | word_target(target, 26)?,
        Instr::Bcnd { cond, rs, target } => {
            (OP_BCND << 26)
                | (cond_index(cond) << 23)
                | reg_field(rs, 18)
                | word_target(target, 18)?
        }
        Instr::Jmp { rs, ni } => (OP_JMP << 26) | reg_field(rs, 21) | u32::from(ni.bits()),
        Instr::Bsr { target } => (OP_BSR << 26) | word_target(target, 26)?,
        Instr::Jsr { rs } => (OP_JSR << 26) | reg_field(rs, 21),
    };
    Ok(w)
}

fn reg_at(w: u32, shift: u32) -> Reg {
    Reg::try_from(((w >> shift) & 0x1F) as u8).expect("5-bit field in range")
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError::Illegal`] for undefined opcodes or sub-operations.
pub fn decode(w: u32) -> Result<Instr, DecodeError> {
    let opcode = w >> 26;
    let instr = match opcode {
        OP_NOP => Instr::Nop,
        OP_HALT => Instr::Halt,
        OP_ALU_REG => {
            let op = *AluOp::ALL
                .get(((w >> 22) & 0xF) as usize)
                .ok_or(DecodeError::Illegal(w))?;
            Instr::Alu {
                op,
                rd: reg_at(w, 17),
                rs1: reg_at(w, 12),
                rs2: Operand::Reg(reg_at(w, 7)),
                ni: NiCmd::from_bits((w & 0x7F) as u8),
            }
        }
        OP_FP => {
            let op = *FpOp::ALL
                .get(((w >> 23) & 0x7) as usize)
                .ok_or(DecodeError::Illegal(w))?;
            Instr::Fp {
                op,
                rd: reg_at(w, 18),
                rs1: reg_at(w, 13),
                rs2: reg_at(w, 8),
                ni: NiCmd::from_bits(((w >> 1) & 0x7F) as u8),
            }
        }
        OP_LUI => Instr::Lui {
            rd: reg_at(w, 21),
            imm: w as u16,
        },
        OP_LD_IMM => Instr::Ld {
            rd: reg_at(w, 21),
            base: reg_at(w, 16),
            off: Operand::Imm(w as u16),
            ni: NiCmd::NONE,
        },
        OP_LD_REG => Instr::Ld {
            rd: reg_at(w, 21),
            base: reg_at(w, 16),
            off: Operand::Reg(reg_at(w, 11)),
            ni: NiCmd::from_bits((w & 0x7F) as u8),
        },
        OP_ST_IMM => Instr::St {
            rs: reg_at(w, 21),
            base: reg_at(w, 16),
            off: Operand::Imm(w as u16),
            ni: NiCmd::NONE,
        },
        OP_ST_REG => Instr::St {
            rs: reg_at(w, 21),
            base: reg_at(w, 16),
            off: Operand::Reg(reg_at(w, 11)),
            ni: NiCmd::from_bits((w & 0x7F) as u8),
        },
        OP_BR => Instr::Br {
            target: (w & 0x03FF_FFFF) * 4,
        },
        OP_BCND => {
            let cond = *Cond::ALL
                .get(((w >> 23) & 0x7) as usize)
                .ok_or(DecodeError::Illegal(w))?;
            Instr::Bcnd {
                cond,
                rs: reg_at(w, 18),
                target: (w & 0x3_FFFF) * 4,
            }
        }
        OP_JMP => Instr::Jmp {
            rs: reg_at(w, 21),
            ni: NiCmd::from_bits((w & 0x7F) as u8),
        },
        OP_BSR => Instr::Bsr {
            target: (w & 0x03FF_FFFF) * 4,
        },
        OP_JSR => Instr::Jsr { rs: reg_at(w, 21) },
        op if (OP_ALU_IMM_BASE..OP_ALU_IMM_BASE + 12).contains(&op) => {
            let alu = AluOp::ALL[(op - OP_ALU_IMM_BASE) as usize];
            Instr::Alu {
                op: alu,
                rd: reg_at(w, 21),
                rs1: reg_at(w, 16),
                rs2: Operand::Imm(w as u16),
                ni: NiCmd::NONE,
            }
        }
        _ => return Err(DecodeError::Illegal(w)),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgType;

    fn roundtrip(i: Instr) {
        let w = encode(&i).expect("encodes");
        assert_eq!(decode(w).expect("decodes"), i, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        roundtrip(Instr::Nop);
        roundtrip(Instr::Halt);
        roundtrip(Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R17,
            rs1: Reg::R21,
            rs2: Operand::Reg(Reg::R22),
            ni: NiCmd::send(MsgType::new(5).unwrap()).with_next(),
        });
        roundtrip(Instr::Alu {
            op: AluOp::CmpLtu,
            rd: Reg::R3,
            rs1: Reg::R4,
            rs2: Operand::Imm(0xBEEF),
            ni: NiCmd::NONE,
        });
        roundtrip(Instr::Fp {
            op: FpOp::FMul,
            rd: Reg::R9,
            rs1: Reg::R10,
            rs2: Reg::R11,
            ni: NiCmd::next(),
        });
        roundtrip(Instr::Lui {
            rd: Reg::R31,
            imm: 0xFFFF,
        });
        roundtrip(Instr::Ld {
            rd: Reg::R2,
            base: Reg::R3,
            off: Operand::Imm(0xFFFC),
            ni: NiCmd::NONE,
        });
        roundtrip(Instr::St {
            rs: Reg::R2,
            base: Reg::R3,
            off: Operand::Reg(Reg::R4),
            ni: NiCmd::reply(MsgType::new(7).unwrap()),
        });
        roundtrip(Instr::Br { target: 0x1000 });
        roundtrip(Instr::Bcnd {
            cond: Cond::Ne0,
            rs: Reg::R5,
            target: 0x40,
        });
        roundtrip(Instr::Jmp {
            rs: Reg::R29,
            ni: NiCmd::next(),
        });
        roundtrip(Instr::Bsr { target: 0x200 });
        roundtrip(Instr::Jsr { rs: Reg::R1 });
    }

    #[test]
    fn misaligned_target_rejected() {
        assert_eq!(
            encode(&Instr::Br { target: 6 }),
            Err(EncodeError::TargetOutOfRange(6))
        );
    }

    #[test]
    fn bcnd_reach_limited() {
        assert!(encode(&Instr::Bcnd {
            cond: Cond::Eq0,
            rs: Reg::R0,
            target: 4 << 18,
        })
        .is_err());
    }

    #[test]
    fn illegal_word_rejected() {
        assert_eq!(decode(0xFFFF_FFFF), Err(DecodeError::Illegal(0xFFFF_FFFF)));
        // ALU-reg with sub-op 12 (out of range)
        let bad = (OP_ALU_REG << 26) | (12 << 22);
        assert_eq!(decode(bad), Err(DecodeError::Illegal(bad)));
    }

    #[test]
    fn ni_bits_fit_in_triadic_encodings() {
        // The paper's claim: 7 NI bits fit in unused bits of triadic forms.
        for bits in [0u8, 0x7F, 0x55] {
            let ni = NiCmd::from_bits(bits);
            roundtrip(Instr::Alu {
                op: AluOp::Or,
                rd: Reg::R16,
                rs1: Reg::R0,
                rs2: Operand::Reg(Reg::R0),
                ni,
            });
            roundtrip(Instr::Jmp { rs: Reg::R30, ni });
        }
    }
}
