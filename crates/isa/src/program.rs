//! Assembled programs.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use crate::instr::{CostClass, Instr};

/// A half-open byte-address range tagged with a cycle-attribution class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Byte addresses covered by the region.
    pub range: Range<u32>,
    /// The class charged for cycles spent at these addresses.
    pub class: CostClass,
}

/// An assembled program: a contiguous block of instructions, the label map,
/// and cost-attribution regions.
///
/// Instructions are 4 bytes each; `base` is the byte address of the first
/// instruction.
///
/// # Example
///
/// ```
/// use tcni_isa::{Assembler, Reg};
/// let mut a = Assembler::new();
/// a.label("entry");
/// a.nop();
/// a.halt();
/// let p = a.assemble().unwrap();
/// assert_eq!(p.resolve("entry"), Some(0));
/// assert!(p.fetch(0).is_some());
/// assert!(p.fetch(8).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    base: u32,
    instrs: Vec<Instr>,
    labels: BTreeMap<String, u32>,
    regions: Vec<Region>,
}

impl Program {
    pub(crate) fn new(
        base: u32,
        instrs: Vec<Instr>,
        labels: BTreeMap<String, u32>,
        regions: Vec<Region>,
    ) -> Program {
        Program {
            base,
            instrs,
            labels,
            regions,
        }
    }

    /// The byte address of the first instruction.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> u32 {
        (self.instrs.len() as u32) * 4
    }

    /// One past the last instruction's byte address.
    pub fn end(&self) -> u32 {
        self.base + self.byte_len()
    }

    /// Fetches the instruction at byte address `addr`, or `None` if the
    /// address is outside the program or misaligned.
    pub fn fetch(&self, addr: u32) -> Option<&Instr> {
        if addr < self.base || !addr.is_multiple_of(4) {
            return None;
        }
        self.instrs.get(((addr - self.base) / 4) as usize)
    }

    /// The byte address of a label, if defined.
    pub fn resolve(&self, label: &str) -> Option<u32> {
        self.labels.get(label).copied()
    }

    /// All labels with their addresses, in name order.
    pub fn labels(&self) -> impl Iterator<Item = (&str, u32)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The cost class of a byte address (last matching region wins;
    /// [`CostClass::Compute`] when untagged).
    pub fn cost_class(&self, addr: u32) -> CostClass {
        self.regions
            .iter()
            .rev()
            .find(|r| r.range.contains(&addr))
            .map(|r| r.class)
            .unwrap_or_default()
    }

    /// All attribution regions in definition order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Iterates over `(byte address, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Instr)> {
        self.instrs
            .iter()
            .enumerate()
            .map(move |(i, ins)| (self.base + (i as u32) * 4, ins))
    }

    /// The raw instruction slice.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let by_addr: BTreeMap<u32, &str> =
            self.labels.iter().map(|(k, v)| (*v, k.as_str())).collect();
        for (addr, ins) in self.iter() {
            if let Some(name) = by_addr.get(&addr) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "  {addr:#06x}: {ins}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Assembler, CostClass, Reg};

    #[test]
    fn fetch_and_bounds() {
        let mut a = Assembler::with_base(0x100);
        a.nop();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.base(), 0x100);
        assert_eq!(p.end(), 0x108);
        assert!(p.fetch(0x100).is_some());
        assert!(p.fetch(0x104).is_some());
        assert!(p.fetch(0x108).is_none());
        assert!(p.fetch(0x0).is_none());
        assert!(p.fetch(0x102).is_none()); // misaligned
    }

    #[test]
    fn cost_class_regions() {
        let mut a = Assembler::new();
        a.set_class(CostClass::Dispatch);
        a.nop();
        a.set_class(CostClass::Communication);
        a.nop();
        a.set_class(CostClass::Compute);
        a.addi(Reg::R2, Reg::R0, 1);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.cost_class(0), CostClass::Dispatch);
        assert_eq!(p.cost_class(4), CostClass::Communication);
        assert_eq!(p.cost_class(8), CostClass::Compute);
        assert_eq!(p.cost_class(12), CostClass::Compute);
    }

    #[test]
    fn display_lists_labels() {
        let mut a = Assembler::new();
        a.label("top");
        a.nop();
        a.halt();
        let p = a.assemble().unwrap();
        let text = p.to_string();
        assert!(text.contains("top:"));
        assert!(text.contains("nop"));
    }
}
