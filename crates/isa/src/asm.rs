//! A small structured assembler.
//!
//! The assembler is the way handler code is written throughout this
//! repository: the evaluation crate builds every Table-1 handler with it, and
//! the machine simulator loads the resulting [`Program`]s. It supports labels
//! with forward references, `org` placement (used to lay out the 16-byte
//! dispatch-table slots of §2.2.3), and cost-class region tagging for the
//! Figure-12 cycle breakdown.

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::{AluOp, Cond, CostClass, FpOp, Instr, Operand};
use crate::ni::NiCmd;
use crate::program::{Program, Region};
use crate::reg::Reg;

/// A branch target that may be a not-yet-defined label.
#[derive(Debug, Clone)]
enum TargetRef {
    Label(String),
}

/// Errors reported by [`Assembler::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch referenced an undefined label.
    UndefinedLabel(String),
    /// `org` tried to move the location counter backwards.
    OrgBackwards {
        /// Current location counter.
        at: u32,
        /// Requested (earlier) address.
        requested: u32,
    },
    /// `org` target was not 4-byte aligned.
    Misaligned(u32),
    /// An NI command was attached to a non-triadic instruction.
    NiOnNonTriadic(usize),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
            AsmError::UndefinedLabel(l) => write!(f, "branch to undefined label `{l}`"),
            AsmError::OrgBackwards { at, requested } => {
                write!(
                    f,
                    "org {requested:#x} is behind the location counter {at:#x}"
                )
            }
            AsmError::Misaligned(a) => write!(f, "address {a:#x} is not 4-byte aligned"),
            AsmError::NiOnNonTriadic(i) => {
                write!(
                    f,
                    "instruction #{i} carries an NI command but is not triadic"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

enum Item {
    Instr(Instr),
    /// A control-flow instruction whose target still needs resolution.
    Branch {
        kind: BranchKind,
        target: TargetRef,
    },
}

enum BranchKind {
    Br,
    Bcnd(Cond, Reg),
    Bsr,
}

/// Builds a [`Program`] incrementally.
///
/// All emit methods return `&mut Self` so short sequences can be chained.
///
/// # Example
///
/// ```
/// use tcni_isa::{Assembler, Cond, Reg};
///
/// let mut a = Assembler::new();
/// a.label("loop");
/// a.addi(Reg::R2, Reg::R2, 0xFFFF); // r2 -= 1 (sign-extended -1)
/// a.bcnd(Cond::Ne0, Reg::R2, "loop");
/// a.nop(); // delay slot
/// a.halt();
/// let p = a.assemble().unwrap();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Default)]
pub struct Assembler {
    base: u32,
    items: Vec<Item>,
    labels: BTreeMap<String, u32>,
    regions: Vec<Region>,
    open_class: Option<(u32, CostClass)>,
    error: Option<AsmError>,
}

impl Assembler {
    /// Creates an assembler with base address 0.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Creates an assembler whose first instruction lives at `base`.
    pub fn with_base(base: u32) -> Assembler {
        Assembler {
            base,
            ..Assembler::default()
        }
    }

    /// The current location counter (byte address of the next instruction).
    pub fn pc(&self) -> u32 {
        self.base + (self.items.len() as u32) * 4
    }

    fn record_error(&mut self, e: AsmError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Defines a label at the current location counter.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_owned(), self.pc()).is_some() {
            self.record_error(AsmError::DuplicateLabel(name.to_owned()));
        }
        self
    }

    /// Pads with `halt` up to `addr` (must be 4-aligned and not behind the
    /// location counter). Used to place handler-table slots.
    pub fn org(&mut self, addr: u32) -> &mut Self {
        if !addr.is_multiple_of(4) {
            self.record_error(AsmError::Misaligned(addr));
            return self;
        }
        if addr < self.pc() {
            self.record_error(AsmError::OrgBackwards {
                at: self.pc(),
                requested: addr,
            });
            return self;
        }
        while self.pc() < addr {
            self.items.push(Item::Instr(Instr::Halt));
        }
        self
    }

    /// Starts a new cost-attribution region at the current location counter.
    pub fn set_class(&mut self, class: CostClass) -> &mut Self {
        let pc = self.pc();
        if let Some((start, prev)) = self.open_class.take() {
            if start < pc {
                self.regions.push(Region {
                    range: start..pc,
                    class: prev,
                });
            }
        }
        self.open_class = Some((pc, class));
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Instr(instr));
        self
    }

    // --- integer ALU -----------------------------------------------------

    /// Emits an ALU instruction with an explicit NI command.
    pub fn alu_ni(
        &mut self,
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: impl Into<Operand>,
        ni: NiCmd,
    ) -> &mut Self {
        self.emit(Instr::Alu {
            op,
            rd,
            rs1,
            rs2: rs2.into(),
            ni,
        })
    }

    /// Emits an ALU instruction.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: impl Into<Operand>) -> &mut Self {
        self.alu_ni(op, rd, rs1, rs2, NiCmd::NONE)
    }

    /// `rd = rs1 + rs2` (triadic).
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `rd = rs1 + rs2` with an NI command.
    pub fn add_ni(&mut self, rd: Reg, rs1: Reg, rs2: Reg, ni: NiCmd) -> &mut Self {
        self.alu_ni(AluOp::Add, rd, rs1, rs2, ni)
    }

    /// `rd = rs1 + sext(imm)`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: u16) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// `rd = rs1 | zext(imm)`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: u16) -> &mut Self {
        self.alu(AluOp::Or, rd, rs1, imm)
    }

    /// `rd = rs1 & zext(imm)` (88100 `mask`).
    pub fn maski(&mut self, rd: Reg, rs1: Reg, imm: u16) -> &mut Self {
        self.alu(AluOp::And, rd, rs1, imm)
    }

    /// `rd = rs1 << sh`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, sh: u16) -> &mut Self {
        self.alu(AluOp::Shl, rd, rs1, sh)
    }

    /// `rd = rs1 >> sh` (logical).
    pub fn shri(&mut self, rd: Reg, rs1: Reg, sh: u16) -> &mut Self {
        self.alu(AluOp::Shr, rd, rs1, sh)
    }

    /// Register move: `rd = rs` (triadic `or rd, rs, r0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.alu(AluOp::Or, rd, rs, Reg::R0)
    }

    /// Register move carrying an NI command.
    pub fn mov_ni(&mut self, rd: Reg, rs: Reg, ni: NiCmd) -> &mut Self {
        self.alu_ni(AluOp::Or, rd, rs, Reg::R0, ni)
    }

    /// `rd = imm << 16`.
    pub fn lui(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.emit(Instr::Lui { rd, imm })
    }

    /// Loads an arbitrary 32-bit constant, in one instruction when the upper
    /// half is zero and two otherwise.
    pub fn li(&mut self, rd: Reg, value: u32) -> &mut Self {
        let hi = (value >> 16) as u16;
        let lo = value as u16;
        if hi == 0 {
            self.ori(rd, Reg::R0, lo)
        } else {
            self.lui(rd, hi);
            if lo != 0 {
                self.ori(rd, rd, lo);
            }
            self
        }
    }

    // --- floating point ---------------------------------------------------

    /// Emits a floating-point instruction.
    pub fn fp(&mut self, op: FpOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::Fp {
            op,
            rd,
            rs1,
            rs2,
            ni: NiCmd::NONE,
        })
    }

    /// Emits a floating-point instruction with an NI command.
    pub fn fp_ni(&mut self, op: FpOp, rd: Reg, rs1: Reg, rs2: Reg, ni: NiCmd) -> &mut Self {
        self.emit(Instr::Fp {
            op,
            rd,
            rs1,
            rs2,
            ni,
        })
    }

    // --- memory -----------------------------------------------------------

    /// `rd = mem[base + sext(off)]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Ld {
            rd,
            base,
            off: Operand::Imm(off as u16),
            ni: NiCmd::NONE,
        })
    }

    /// `rd = mem[base + offr]` (triadic form).
    pub fn ld_r(&mut self, rd: Reg, base: Reg, offr: Reg) -> &mut Self {
        self.ld_r_ni(rd, base, offr, NiCmd::NONE)
    }

    /// Triadic load carrying an NI command.
    pub fn ld_r_ni(&mut self, rd: Reg, base: Reg, offr: Reg, ni: NiCmd) -> &mut Self {
        self.emit(Instr::Ld {
            rd,
            base,
            off: Operand::Reg(offr),
            ni,
        })
    }

    /// `mem[base + sext(off)] = rs`.
    pub fn st(&mut self, rs: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::St {
            rs,
            base,
            off: Operand::Imm(off as u16),
            ni: NiCmd::NONE,
        })
    }

    /// `mem[base + offr] = rs` (triadic form).
    pub fn st_r(&mut self, rs: Reg, base: Reg, offr: Reg) -> &mut Self {
        self.st_r_ni(rs, base, offr, NiCmd::NONE)
    }

    /// Triadic store carrying an NI command.
    pub fn st_r_ni(&mut self, rs: Reg, base: Reg, offr: Reg, ni: NiCmd) -> &mut Self {
        self.emit(Instr::St {
            rs,
            base,
            off: Operand::Reg(offr),
            ni,
        })
    }

    // --- control ----------------------------------------------------------

    /// Unconditional branch to a label.
    pub fn br(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Branch {
            kind: BranchKind::Br,
            target: TargetRef::Label(label.to_owned()),
        });
        self
    }

    /// Unconditional branch to an absolute byte address.
    pub fn br_abs(&mut self, target: u32) -> &mut Self {
        self.emit(Instr::Br { target })
    }

    /// Conditional branch to a label.
    pub fn bcnd(&mut self, cond: Cond, rs: Reg, label: &str) -> &mut Self {
        self.items.push(Item::Branch {
            kind: BranchKind::Bcnd(cond, rs),
            target: TargetRef::Label(label.to_owned()),
        });
        self
    }

    /// Branch-and-link to a label (return address in `r1`).
    pub fn bsr(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Branch {
            kind: BranchKind::Bsr,
            target: TargetRef::Label(label.to_owned()),
        });
        self
    }

    /// Indirect jump through a register.
    pub fn jmp(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Jmp {
            rs,
            ni: NiCmd::NONE,
        })
    }

    /// Indirect jump carrying an NI command (`jmp MsgIp, NEXT` style).
    pub fn jmp_ni(&mut self, rs: Reg, ni: NiCmd) -> &mut Self {
        self.emit(Instr::Jmp { rs, ni })
    }

    /// Jump-and-link through a register.
    pub fn jsr(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Jsr { rs })
    }

    /// Return: `jmp r1`.
    pub fn ret(&mut self) -> &mut Self {
        self.jmp(Reg::R1)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// Halt the processor.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    // --- finalization -------------------------------------------------------

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] encountered while building or resolving.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        // Close the trailing region.
        let end_pc = self.base + (self.items.len() as u32) * 4;
        if let Some((start, class)) = self.open_class.take() {
            if start < end_pc {
                self.regions.push(Region {
                    range: start..end_pc,
                    class,
                });
            }
        }
        let mut instrs = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.into_iter().enumerate() {
            let instr = match item {
                Item::Instr(instr) => {
                    if !instr.ni_cmd().is_noop() && !instr.is_triadic() {
                        return Err(AsmError::NiOnNonTriadic(i));
                    }
                    instr
                }
                Item::Branch { kind, target } => {
                    let target = match target {
                        TargetRef::Label(l) => self
                            .labels
                            .get(&l)
                            .copied()
                            .ok_or(AsmError::UndefinedLabel(l))?,
                    };
                    match kind {
                        BranchKind::Br => Instr::Br { target },
                        BranchKind::Bcnd(cond, rs) => Instr::Bcnd { cond, rs, target },
                        BranchKind::Bsr => Instr::Bsr { target },
                    }
                }
            };
            instrs.push(instr);
        }
        Ok(Program::new(self.base, instrs, self.labels, self.regions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_reference_resolves() {
        let mut a = Assembler::new();
        a.br("end");
        a.nop();
        a.nop();
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.resolve("end"), Some(12));
        assert_eq!(p.fetch(0), Some(&Instr::Br { target: 12 }));
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new();
        a.br("nowhere");
        a.nop();
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".to_owned())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".to_owned())
        );
    }

    #[test]
    fn org_pads_with_halt() {
        let mut a = Assembler::new();
        a.nop();
        a.org(16);
        a.label("slot1");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.resolve("slot1"), Some(16));
        assert_eq!(p.fetch(4), Some(&Instr::Halt)); // padding
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn org_backwards_errors() {
        let mut a = Assembler::new();
        a.nop();
        a.nop();
        a.org(4);
        assert!(matches!(a.assemble(), Err(AsmError::OrgBackwards { .. })));
    }

    #[test]
    fn org_misaligned_errors() {
        let mut a = Assembler::new();
        a.org(6);
        assert_eq!(a.assemble().unwrap_err(), AsmError::Misaligned(6));
    }

    #[test]
    fn li_single_or_pair() {
        let mut a = Assembler::new();
        a.li(Reg::R2, 0x1234);
        a.li(Reg::R3, 0xABCD_0000);
        a.li(Reg::R4, 0xABCD_1234);
        a.halt();
        let p = a.assemble().unwrap();
        // 1 + 1 + 2 + 1 instructions
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn base_offsets_labels() {
        let mut a = Assembler::with_base(0x1000);
        a.label("entry");
        a.nop();
        let p = a.assemble().unwrap();
        assert_eq!(p.resolve("entry"), Some(0x1000));
    }
}
