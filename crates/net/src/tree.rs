//! Topology-aware combining-tree construction for in-network collectives.
//!
//! A [`CombiningTree`] is the static routing skeleton the collective engine
//! (`tcni-sim::collective`) combines along: every member node knows its
//! parent (where partially-combined contributions go up) and its children
//! (where completed results fan down). Two shapes are provided:
//!
//! * [`CombiningTree::star`] — every node a direct child of the root; the
//!   right shape for [`IdealNetwork`](crate::IdealNetwork), where distance
//!   is uniform and depth only adds latency;
//! * [`CombiningTree::mesh`] — a k-ary tree embedded in a
//!   [`Mesh2d`](crate::Mesh2d)'s rows and columns: within each row a k-ary
//!   tree over the columns rooted at column 0, and a k-ary spine over the
//!   row heads in column 0. Every tree edge runs along a single mesh row
//!   or column, so combining traffic never takes a dog-leg through
//!   unrelated links.
//!
//! Trees are value objects: construction is pure, membership is explicit,
//! and the structure never changes after construction (faults are handled
//! by the delivery protocol underneath, not by re-rooting).

/// Sentinel for "no parent" in the dense parent table.
const NO_PARENT: u32 = u32::MAX;

/// A static combining tree over a machine's node index space.
///
/// Non-member nodes (possible with [`CombiningTree::star_of`]) have no
/// parent and no children; starting a collective on one is a typed
/// [`InjectError::NotParticipant`](crate::InjectError::NotParticipant)
/// error at the machine API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombiningTree {
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    member: Vec<bool>,
    members: usize,
    root: u32,
}

impl CombiningTree {
    /// A trivial star: node 0 is the root and every other node is a direct
    /// child. Optimal for contention-free uniform-latency fabrics.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn star(nodes: usize) -> CombiningTree {
        let members: Vec<usize> = (0..nodes).collect();
        CombiningTree::star_of(nodes, &members)
    }

    /// A star over an explicit member set; the first member is the root.
    /// Nodes outside `members` are non-participants.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, contains an index `>= nodes`, or
    /// contains duplicates.
    pub fn star_of(nodes: usize, members: &[usize]) -> CombiningTree {
        assert!(
            !members.is_empty(),
            "a collective needs at least one member"
        );
        let root = members[0];
        let mut tree = CombiningTree::empty(nodes);
        for &m in members {
            assert!(m < nodes, "member {m} out of range ({nodes} nodes)");
            assert!(!tree.member[m], "duplicate member {m}");
            tree.member[m] = true;
            tree.members += 1;
            if m != root {
                tree.parent[m] = root as u32;
                tree.children[root].push(m as u32);
            }
        }
        tree.root = root as u32;
        tree
    }

    /// A k-ary tree embedded in a `width × height` mesh's rows and columns,
    /// rooted at node 0 (row 0, column 0). All `width * height` nodes are
    /// members.
    ///
    /// Within each row, column `c > 0` parents to column `(c - 1) / radix`
    /// of the same row (a radix-ary tree whose root is the row head at
    /// column 0). Row heads with `r > 0` parent to the row head of row
    /// `(r - 1) / radix` (the column-0 spine). Every edge is therefore a
    /// straight run along one row or one column, matching the mesh's XY
    /// dimension-order routes.
    ///
    /// # Panics
    ///
    /// Panics if `width * height == 0` or `radix < 2`.
    pub fn mesh(width: usize, height: usize, radix: usize) -> CombiningTree {
        assert!(width > 0 && height > 0, "mesh tree needs a non-empty grid");
        assert!(radix >= 2, "combining radix must be at least 2");
        let nodes = width * height;
        let mut tree = CombiningTree::empty(nodes);
        tree.member = vec![true; nodes];
        tree.members = nodes;
        tree.root = 0;
        for r in 0..height {
            for c in 0..width {
                let i = r * width + c;
                let p = if c > 0 {
                    Some(r * width + (c - 1) / radix)
                } else if r > 0 {
                    Some(((r - 1) / radix) * width)
                } else {
                    None
                };
                if let Some(p) = p {
                    tree.parent[i] = p as u32;
                    tree.children[p].push(i as u32);
                }
            }
        }
        tree
    }

    fn empty(nodes: usize) -> CombiningTree {
        assert!(nodes > 0, "a combining tree needs at least one node");
        CombiningTree {
            parent: vec![NO_PARENT; nodes],
            children: vec![Vec::new(); nodes],
            member: vec![false; nodes],
            members: 0,
            root: 0,
        }
    }

    /// The size of the node index space the tree is built over (members
    /// and non-members alike).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the index space is empty (never true: construction demands
    /// at least one node).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of participating nodes.
    pub fn member_count(&self) -> usize {
        self.members
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root as usize
    }

    /// Whether `node` participates in the collective.
    pub fn is_member(&self, node: usize) -> bool {
        self.member.get(node).copied().unwrap_or(false)
    }

    /// The parent of `node`, or `None` for the root and for non-members.
    pub fn parent(&self, node: usize) -> Option<usize> {
        let p = self.parent[node];
        (p != NO_PARENT).then_some(p as usize)
    }

    /// The children of `node` (empty for leaves and non-members).
    pub fn children(&self, node: usize) -> &[u32] {
        &self.children[node]
    }

    /// The number of edges on the longest root-to-leaf path.
    pub fn depth(&self) -> usize {
        let mut deepest = 0;
        for i in 0..self.len() {
            if !self.is_member(i) {
                continue;
            }
            let (mut d, mut n) = (0, i);
            while let Some(p) = self.parent(n) {
                d += 1;
                n = p;
            }
            deepest = deepest.max(d);
        }
        deepest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every member must reach the root in finitely many parent hops, and
    /// the parent/children tables must mirror each other.
    fn check_spanning(tree: &CombiningTree) {
        let root = tree.root();
        assert!(tree.is_member(root));
        assert_eq!(tree.parent(root), None);
        let mut reached = 0;
        for i in 0..tree.len() {
            if !tree.is_member(i) {
                assert_eq!(tree.parent(i), None);
                assert!(tree.children(i).is_empty());
                continue;
            }
            reached += 1;
            let (mut hops, mut n) = (0, i);
            while let Some(p) = tree.parent(n) {
                assert!(tree.is_member(p));
                assert!(
                    tree.children(p).contains(&(n as u32)),
                    "parent {p} does not list child {n}"
                );
                hops += 1;
                assert!(hops <= tree.len(), "cycle through node {i}");
                n = p;
            }
            assert_eq!(n, root, "member {i} does not reach the root");
        }
        assert_eq!(reached, tree.member_count());
        let listed: usize = (0..tree.len()).map(|i| tree.children(i).len()).sum();
        assert_eq!(listed, tree.member_count() - 1, "edge count");
    }

    #[test]
    fn star_shape() {
        let t = CombiningTree::star(5);
        check_spanning(&t);
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0), &[1, 2, 3, 4]);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.member_count(), 5);
    }

    #[test]
    fn star_of_subset() {
        let t = CombiningTree::star_of(6, &[2, 4, 5]);
        check_spanning(&t);
        assert_eq!(t.root(), 2);
        assert!(!t.is_member(0));
        assert!(t.is_member(4));
        assert_eq!(t.parent(4), Some(2));
        assert_eq!(t.member_count(), 3);
    }

    #[test]
    fn single_node_tree() {
        let t = CombiningTree::star(1);
        check_spanning(&t);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn mesh_tree_spans_and_stays_in_rows_and_columns() {
        for (w, h, k) in [(4, 4, 2), (16, 16, 4), (5, 3, 3), (1, 7, 2), (7, 1, 2)] {
            let t = CombiningTree::mesh(w, h, k);
            check_spanning(&t);
            assert_eq!(t.root(), 0);
            assert_eq!(t.member_count(), w * h);
            for i in 0..t.len() {
                if let Some(p) = t.parent(i) {
                    let (r, c) = (i / w, i % w);
                    let (pr, pc) = (p / w, p % w);
                    assert!(
                        r == pr || c == pc,
                        "edge {i}->{p} is not row- or column-aligned"
                    );
                    // Fan-in bound: up to k row children plus, for a row
                    // head, k spine children.
                    assert!(t.children(p).len() <= 2 * k);
                }
            }
        }
    }

    #[test]
    fn mesh_tree_depth_is_logarithmic() {
        // 16×16 with radix 4: row trees depth 2 (15 columns under radix
        // 4), spine depth 2 — comfortably below the star's fan-in of 255.
        let t = CombiningTree::mesh(16, 16, 4);
        assert!(t.depth() <= 4, "depth {} too deep", t.depth());
        let star_fan = CombiningTree::star(256).children(0).len();
        assert_eq!(star_fan, 255);
        let max_fan = (0..t.len()).map(|i| t.children(i).len()).max().unwrap();
        assert!(max_fan <= 8, "fan-in {max_fan} too wide");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_member_set_panics() {
        CombiningTree::star_of(4, &[]);
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_member_panics() {
        CombiningTree::star_of(4, &[1, 1]);
    }
}
