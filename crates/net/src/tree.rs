//! Topology-aware combining-tree construction for in-network collectives.
//!
//! A [`CombiningTree`] is the static routing skeleton the collective engine
//! (`tcni-sim::collective`) combines along: every member node knows its
//! parent (where partially-combined contributions go up) and its children
//! (where completed results fan down). Three shapes are provided:
//!
//! * [`CombiningTree::star`] — every node a direct child of the root; the
//!   right shape for [`IdealNetwork`](crate::IdealNetwork) and the
//!   fully-connected fabric, where distance is uniform and depth only adds
//!   latency;
//! * [`CombiningTree::mesh`] — a k-ary tree embedded in a 2-D
//!   [`Mesh2d`](crate::Mesh2d)'s rows and columns: within each row a k-ary
//!   tree over the columns rooted at column 0, and a k-ary spine over the
//!   row heads in column 0. Every tree edge runs along a single mesh row
//!   or column, so combining traffic never takes a dog-leg through
//!   unrelated links;
//! * [`CombiningTree::torus`] — the same row/column embedding, but with
//!   coordinates ranked by *torus* distance from the root, so parent-child
//!   edges exploit the wrap links and total tree wire length shrinks
//!   relative to the mesh embedding on the same grid.
//!
//! Each tree records the [`TreeShape`] it was built for;
//! [`TreeShape::embeds_in`] is how the machine builder rejects a tree
//! mounted on a fabric whose links cannot carry its edges.
//!
//! Trees are value objects: construction is pure, membership is explicit,
//! and the structure never changes after construction (faults are handled
//! by the delivery protocol underneath, not by re-rooting).

use crate::topology::TopologyKind;

/// Sentinel for "no parent" in the dense parent table.
const NO_PARENT: u32 = u32::MAX;

/// The fabric geometry a [`CombiningTree`] was constructed for.
///
/// A star has no geometric assumptions; a grid tree assumes its edges run
/// along the rows and columns of a specific `width × height` fabric, and a
/// wrapped grid additionally assumes the wrap links of a torus exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeShape {
    /// Every member a direct child of the root; fabric-agnostic.
    Star,
    /// Row/column-aligned edges over a `width × height` grid; `wrap` means
    /// the edge set uses torus wrap links.
    Grid {
        /// Grid width the tree was built for.
        width: usize,
        /// Grid height the tree was built for.
        height: usize,
        /// Whether edges rely on wrap-around links (torus embedding).
        wrap: bool,
    },
}

impl TreeShape {
    /// Whether a tree of this shape can be mounted on `topo`: every tree
    /// edge must be carriable by the fabric's links without detours through
    /// unrelated dimensions. Stars embed everywhere; an unwrapped grid
    /// embeds in a mesh or torus of the same dimensions (a torus has every
    /// mesh link); a wrapped grid needs the torus's wrap links.
    pub fn embeds_in(&self, topo: &TopologyKind) -> bool {
        match *self {
            TreeShape::Star => true,
            TreeShape::Grid {
                width,
                height,
                wrap,
            } => match *topo {
                TopologyKind::Mesh(m) => !wrap && m.width == width && m.height == height,
                TopologyKind::Torus(t) => t.width == width && t.height == height,
                TopologyKind::Ring(_) | TopologyKind::Full(_) => false,
            },
        }
    }

    /// Short human-readable name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            TreeShape::Star => "star",
            TreeShape::Grid { wrap: false, .. } => "mesh grid",
            TreeShape::Grid { wrap: true, .. } => "torus grid",
        }
    }
}

/// The coordinate living at each rank when a wrapped dimension of `len`
/// positions is ordered by torus distance from coordinate 0:
/// `0, 1, len-1, 2, len-2, …` — nearest first, ties broken toward the
/// positive direction.
fn wrap_rank_coords(len: usize) -> Vec<usize> {
    (0..len)
        .map(|r| {
            if r % 2 == 1 {
                r.div_ceil(2)
            } else {
                len - r / 2
            }
        })
        .map(|c| c % len)
        .collect()
}

/// A static combining tree over a machine's node index space.
///
/// Non-member nodes (possible with [`CombiningTree::star_of`]) have no
/// parent and no children; starting a collective on one is a typed
/// [`InjectError::NotParticipant`](crate::InjectError::NotParticipant)
/// error at the machine API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombiningTree {
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    member: Vec<bool>,
    members: usize,
    root: u32,
    shape: TreeShape,
}

impl CombiningTree {
    /// A trivial star: node 0 is the root and every other node is a direct
    /// child. Optimal for contention-free uniform-latency fabrics.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn star(nodes: usize) -> CombiningTree {
        let members: Vec<usize> = (0..nodes).collect();
        CombiningTree::star_of(nodes, &members)
    }

    /// A star over an explicit member set; the first member is the root.
    /// Nodes outside `members` are non-participants.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, contains an index `>= nodes`, or
    /// contains duplicates.
    pub fn star_of(nodes: usize, members: &[usize]) -> CombiningTree {
        assert!(
            !members.is_empty(),
            "a collective needs at least one member"
        );
        let root = members[0];
        let mut tree = CombiningTree::empty(nodes);
        for &m in members {
            assert!(m < nodes, "member {m} out of range ({nodes} nodes)");
            assert!(!tree.member[m], "duplicate member {m}");
            tree.member[m] = true;
            tree.members += 1;
            if m != root {
                tree.parent[m] = root as u32;
                tree.children[root].push(m as u32);
            }
        }
        tree.root = root as u32;
        tree
    }

    /// A k-ary tree embedded in a `width × height` mesh's rows and columns,
    /// rooted at node 0 (row 0, column 0). All `width * height` nodes are
    /// members.
    ///
    /// Within each row, column `c > 0` parents to column `(c - 1) / radix`
    /// of the same row (a radix-ary tree whose root is the row head at
    /// column 0). Row heads with `r > 0` parent to the row head of row
    /// `(r - 1) / radix` (the column-0 spine). Every edge is therefore a
    /// straight run along one row or one column, matching the mesh's XY
    /// dimension-order routes.
    ///
    /// # Panics
    ///
    /// Panics if `width * height == 0` or `radix < 2`.
    pub fn mesh(width: usize, height: usize, radix: usize) -> CombiningTree {
        assert!(width > 0 && height > 0, "mesh tree needs a non-empty grid");
        assert!(radix >= 2, "combining radix must be at least 2");
        let nodes = width * height;
        let mut tree = CombiningTree::empty(nodes);
        tree.shape = TreeShape::Grid {
            width,
            height,
            wrap: false,
        };
        tree.member = vec![true; nodes];
        tree.members = nodes;
        tree.root = 0;
        for r in 0..height {
            for c in 0..width {
                let i = r * width + c;
                let p = if c > 0 {
                    Some(r * width + (c - 1) / radix)
                } else if r > 0 {
                    Some(((r - 1) / radix) * width)
                } else {
                    None
                };
                if let Some(p) = p {
                    tree.parent[i] = p as u32;
                    tree.children[p].push(i as u32);
                }
            }
        }
        tree
    }

    /// A k-ary tree embedded in a `width × height` torus's rows and
    /// columns, rooted at node 0. Same row-tree/column-spine structure as
    /// [`CombiningTree::mesh`], but the coordinates within each dimension
    /// are ranked by *torus* distance from the root's coordinate
    /// (`0, 1, width-1, 2, width-2, …`), so a node's parent is always one
    /// of the coordinates nearer the root under the wrap metric. Parent
    /// and child still share a row or a column, so every edge runs along
    /// one torus dimension — possibly over a wrap link — and the total
    /// wire length of the tree is no worse (usually strictly better) than
    /// the mesh embedding's length measured on the same torus.
    ///
    /// # Panics
    ///
    /// Panics if `width * height == 0` or `radix < 2`.
    pub fn torus(width: usize, height: usize, radix: usize) -> CombiningTree {
        assert!(width > 0 && height > 0, "torus tree needs a non-empty grid");
        assert!(radix >= 2, "combining radix must be at least 2");
        let nodes = width * height;
        let mut tree = CombiningTree::empty(nodes);
        tree.shape = TreeShape::Grid {
            width,
            height,
            wrap: true,
        };
        tree.member = vec![true; nodes];
        tree.members = nodes;
        tree.root = 0;
        let col_at = wrap_rank_coords(width);
        let row_at = wrap_rank_coords(height);
        for r in 0..height {
            // Within the row: the coordinate at rank `cr > 0` parents to
            // the coordinate at rank `(cr - 1) / radix` of the same row.
            for cr in 1..width {
                let i = r * width + col_at[cr];
                let p = r * width + col_at[(cr - 1) / radix];
                tree.parent[i] = p as u32;
                tree.children[p].push(i as u32);
            }
        }
        // Column-0 spine over the rows, ranked the same way.
        for rr in 1..height {
            let i = row_at[rr] * width;
            let p = row_at[(rr - 1) / radix] * width;
            tree.parent[i] = p as u32;
            tree.children[p].push(i as u32);
        }
        tree
    }

    fn empty(nodes: usize) -> CombiningTree {
        assert!(nodes > 0, "a combining tree needs at least one node");
        CombiningTree {
            parent: vec![NO_PARENT; nodes],
            children: vec![Vec::new(); nodes],
            member: vec![false; nodes],
            members: 0,
            root: 0,
            shape: TreeShape::Star,
        }
    }

    /// The fabric geometry this tree was built for (see [`TreeShape`]).
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// The size of the node index space the tree is built over (members
    /// and non-members alike).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the index space is empty (never true: construction demands
    /// at least one node).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of participating nodes.
    pub fn member_count(&self) -> usize {
        self.members
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root as usize
    }

    /// Whether `node` participates in the collective.
    pub fn is_member(&self, node: usize) -> bool {
        self.member.get(node).copied().unwrap_or(false)
    }

    /// The parent of `node`, or `None` for the root and for non-members.
    pub fn parent(&self, node: usize) -> Option<usize> {
        let p = self.parent[node];
        (p != NO_PARENT).then_some(p as usize)
    }

    /// The children of `node` (empty for leaves and non-members).
    pub fn children(&self, node: usize) -> &[u32] {
        &self.children[node]
    }

    /// The number of edges on the longest root-to-leaf path.
    pub fn depth(&self) -> usize {
        let mut deepest = 0;
        for i in 0..self.len() {
            if !self.is_member(i) {
                continue;
            }
            let (mut d, mut n) = (0, i);
            while let Some(p) = self.parent(n) {
                d += 1;
                n = p;
            }
            deepest = deepest.max(d);
        }
        deepest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every member must reach the root in finitely many parent hops, and
    /// the parent/children tables must mirror each other.
    fn check_spanning(tree: &CombiningTree) {
        let root = tree.root();
        assert!(tree.is_member(root));
        assert_eq!(tree.parent(root), None);
        let mut reached = 0;
        for i in 0..tree.len() {
            if !tree.is_member(i) {
                assert_eq!(tree.parent(i), None);
                assert!(tree.children(i).is_empty());
                continue;
            }
            reached += 1;
            let (mut hops, mut n) = (0, i);
            while let Some(p) = tree.parent(n) {
                assert!(tree.is_member(p));
                assert!(
                    tree.children(p).contains(&(n as u32)),
                    "parent {p} does not list child {n}"
                );
                hops += 1;
                assert!(hops <= tree.len(), "cycle through node {i}");
                n = p;
            }
            assert_eq!(n, root, "member {i} does not reach the root");
        }
        assert_eq!(reached, tree.member_count());
        let listed: usize = (0..tree.len()).map(|i| tree.children(i).len()).sum();
        assert_eq!(listed, tree.member_count() - 1, "edge count");
    }

    #[test]
    fn star_shape() {
        let t = CombiningTree::star(5);
        check_spanning(&t);
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0), &[1, 2, 3, 4]);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.member_count(), 5);
    }

    #[test]
    fn star_of_subset() {
        let t = CombiningTree::star_of(6, &[2, 4, 5]);
        check_spanning(&t);
        assert_eq!(t.root(), 2);
        assert!(!t.is_member(0));
        assert!(t.is_member(4));
        assert_eq!(t.parent(4), Some(2));
        assert_eq!(t.member_count(), 3);
    }

    #[test]
    fn single_node_tree() {
        let t = CombiningTree::star(1);
        check_spanning(&t);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn mesh_tree_spans_and_stays_in_rows_and_columns() {
        for (w, h, k) in [(4, 4, 2), (16, 16, 4), (5, 3, 3), (1, 7, 2), (7, 1, 2)] {
            let t = CombiningTree::mesh(w, h, k);
            check_spanning(&t);
            assert_eq!(t.root(), 0);
            assert_eq!(t.member_count(), w * h);
            for i in 0..t.len() {
                if let Some(p) = t.parent(i) {
                    let (r, c) = (i / w, i % w);
                    let (pr, pc) = (p / w, p % w);
                    assert!(
                        r == pr || c == pc,
                        "edge {i}->{p} is not row- or column-aligned"
                    );
                    // Fan-in bound: up to k row children plus, for a row
                    // head, k spine children.
                    assert!(t.children(p).len() <= 2 * k);
                }
            }
        }
    }

    #[test]
    fn mesh_tree_depth_is_logarithmic() {
        // 16×16 with radix 4: row trees depth 2 (15 columns under radix
        // 4), spine depth 2 — comfortably below the star's fan-in of 255.
        let t = CombiningTree::mesh(16, 16, 4);
        assert!(t.depth() <= 4, "depth {} too deep", t.depth());
        let star_fan = CombiningTree::star(256).children(0).len();
        assert_eq!(star_fan, 255);
        let max_fan = (0..t.len()).map(|i| t.children(i).len()).max().unwrap();
        assert!(max_fan <= 8, "fan-in {max_fan} too wide");
    }

    /// Torus distance between two node indices on a `w × h` torus.
    fn torus_dist(w: usize, h: usize, a: usize, b: usize) -> usize {
        let wrap = |len: usize, p: usize, q: usize| {
            let d = p.abs_diff(q);
            d.min(len - d)
        };
        wrap(w, a % w, b % w) + wrap(h, a / w, b / w)
    }

    #[test]
    fn torus_tree_spans_and_stays_in_rows_and_columns() {
        for (w, h, k) in [(4, 4, 2), (8, 8, 4), (5, 3, 3), (1, 7, 2), (7, 1, 2)] {
            let t = CombiningTree::torus(w, h, k);
            check_spanning(&t);
            assert_eq!(t.root(), 0);
            assert_eq!(t.member_count(), w * h);
            assert_eq!(
                t.shape(),
                TreeShape::Grid {
                    width: w,
                    height: h,
                    wrap: true
                }
            );
            for i in 0..t.len() {
                if let Some(p) = t.parent(i) {
                    let (r, c) = (i / w, i % w);
                    let (pr, pc) = (p / w, p % w);
                    assert!(
                        r == pr || c == pc,
                        "edge {i}->{p} is not row- or column-aligned"
                    );
                    // Every edge is carriable by real torus hops in a
                    // single dimension; the parent is strictly closer to
                    // the root under the wrap metric, so combining always
                    // makes progress.
                    assert!(
                        torus_dist(w, h, p, 0) < torus_dist(w, h, i, 0)
                            || torus_dist(w, h, i, 0) == 0,
                        "edge {i}->{p} moves away from the root"
                    );
                }
            }
        }
    }

    /// The point of the torus embedding: ranking coordinates by wrap
    /// distance makes parent-child edges use the wrap links, so the tree's
    /// total wire length on the torus beats the mesh embedding's.
    #[test]
    fn torus_tree_wrap_edges_shorten_the_wiring() {
        let (w, h, k) = (8, 8, 4);
        let wire = |t: &CombiningTree| -> usize {
            (0..t.len())
                .filter_map(|i| t.parent(i).map(|p| torus_dist(w, h, i, p)))
                .sum()
        };
        let torus = CombiningTree::torus(w, h, k);
        let mesh = CombiningTree::mesh(w, h, k);
        assert!(
            wire(&torus) < wire(&mesh),
            "torus wiring {} must beat the mesh embedding's {} on the torus",
            wire(&torus),
            wire(&mesh)
        );
        // And the torus tree's longest single edge is bounded by the wrap
        // radius of a dimension — no parent is ever further than half-way
        // around — while never exceeding the mesh embedding's worst edge.
        let longest = |t: &CombiningTree| {
            (0..t.len())
                .filter_map(|i| t.parent(i).map(|p| torus_dist(w, h, i, p)))
                .max()
                .unwrap()
        };
        assert!(longest(&torus) <= w.max(h) / 2);
        assert!(longest(&torus) <= longest(&mesh));
    }

    #[test]
    fn shapes_record_their_fabric_assumptions() {
        use crate::topology::TopologyKind;
        assert_eq!(CombiningTree::star(4).shape(), TreeShape::Star);
        assert_eq!(
            CombiningTree::mesh(4, 2, 2).shape(),
            TreeShape::Grid {
                width: 4,
                height: 2,
                wrap: false
            }
        );
        let star = TreeShape::Star;
        let grid = CombiningTree::mesh(4, 2, 2).shape();
        let wrapped = CombiningTree::torus(4, 2, 2).shape();
        let mesh42 = TopologyKind::mesh(4, 2);
        let torus42 = TopologyKind::torus(4, 2);
        let ring8 = TopologyKind::ring(8);
        let full8 = TopologyKind::full(8);
        for topo in [mesh42, torus42, ring8, full8] {
            assert!(star.embeds_in(&topo), "stars embed everywhere");
        }
        assert!(grid.embeds_in(&mesh42));
        assert!(grid.embeds_in(&torus42), "a torus has every mesh link");
        assert!(
            !grid.embeds_in(&TopologyKind::mesh(2, 4)),
            "dims must match"
        );
        assert!(!grid.embeds_in(&ring8) && !grid.embeds_in(&full8));
        assert!(wrapped.embeds_in(&torus42));
        assert!(!wrapped.embeds_in(&mesh42), "a mesh has no wrap links");
        assert!(!wrapped.embeds_in(&ring8) && !wrapped.embeds_in(&full8));
        assert_eq!(star.name(), "star");
        assert_eq!(grid.name(), "mesh grid");
        assert_eq!(wrapped.name(), "torus grid");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_member_set_panics() {
        CombiningTree::star_of(4, &[]);
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_member_panics() {
        CombiningTree::star_of(4, &[1, 1]);
    }
}
