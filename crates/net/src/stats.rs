//! Network delivery statistics.

use std::fmt;

/// A fixed-bucket latency histogram with power-of-two bucket boundaries.
///
/// Bucket `0` counts zero-cycle deliveries; bucket `i ≥ 1` counts latencies
/// in `[2^(i-1), 2^i - 1]`; the last bucket is open-ended. Recording is a
/// shift and an increment — no floats anywhere near the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHist {
    buckets: [u64; LatencyHist::BUCKETS],
}

impl LatencyHist {
    /// Number of buckets (the last one is open-ended).
    pub const BUCKETS: usize = 16;

    /// The bucket index a latency falls into.
    pub fn bucket_of(latency: u64) -> usize {
        match latency {
            0 => 0,
            l => ((64 - l.leading_zeros()) as usize).min(Self::BUCKETS - 1),
        }
    }

    /// The inclusive `(lo, hi)` latency range of bucket `i`; the final
    /// bucket's `hi` is `u64::MAX`.
    pub fn bounds(i: usize) -> (u64, u64) {
        assert!(i < Self::BUCKETS);
        match i {
            0 => (0, 0),
            i if i == Self::BUCKETS - 1 => (1 << (i - 1), u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Counts one delivery with the given latency.
    pub fn record(&mut self, latency: u64) {
        self.buckets[Self::bucket_of(latency)] += 1;
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }

    /// Total recorded deliveries (equals `NetStats::delivered` when the
    /// fabric maintains the histogram).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `pct`-th percentile latency under the **upper-bound-of-bucket
    /// convention**: the smallest bucket whose cumulative count reaches
    /// `ceil(total · pct / 100)` answers with its *inclusive upper bound*
    /// (a conservative estimate — the true percentile is never above it).
    /// The open-ended last bucket has no upper bound and answers with its
    /// lower bound instead, the only case where the estimate can be low.
    ///
    /// Returns `None` before any delivery.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= pct <= 100`.
    pub fn percentile(&self, pct: u32) -> Option<u64> {
        assert!((1..=100).contains(&pct), "percentile {pct} out of range");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = u64::try_from((u128::from(total) * u128::from(pct)).div_ceil(100))
            .expect("rank <= total");
        let mut cumulative = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let (lo, hi) = Self::bounds(i);
                return Some(if hi == u64::MAX { lo } else { hi });
            }
        }
        unreachable!("rank <= total implies some bucket reaches it")
    }

    /// Adds another histogram's counts into this one (per-bucket sum). Used
    /// by the parallel tick to reduce per-domain delivery histograms back
    /// into the fabric's aggregate in domain order.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (slot, add) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += add;
        }
    }

    /// The histogram of deliveries recorded since `baseline` was snapshotted
    /// from this same histogram (per-bucket subtraction). Used by measurement
    /// windows: snapshot before, subtract after, extract percentiles of the
    /// window alone.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any bucket of `baseline` exceeds this histogram's —
    /// i.e. `baseline` is not an earlier snapshot of the same counter stream.
    pub fn since(&self, baseline: &LatencyHist) -> LatencyHist {
        let mut out = LatencyHist::default();
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            debug_assert!(
                self.buckets[i] >= baseline.buckets[i],
                "baseline is not an earlier snapshot (bucket {i})"
            );
            *slot = self.buckets[i].saturating_sub(baseline.buckets[i]);
        }
        out
    }
}

impl fmt::Display for LatencyHist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        if total == 0 {
            return writeln!(f, "latency histogram: (no deliveries)");
        }
        writeln!(f, "latency histogram ({total} deliveries):")?;
        let peak = *self.buckets.iter().max().expect("non-empty");
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (lo, hi) = Self::bounds(i);
            let label = if hi == u64::MAX {
                format!("{lo}+")
            } else if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            };
            let bar = "#".repeat(((count * 40).div_ceil(peak)) as usize);
            writeln!(f, "  {label:>12} {count:>8}  {bar}")?;
        }
        Ok(())
    }
}

/// Injected-fault tallies, maintained by [`crate::FaultyFabric`] and all
/// zero on an unwrapped (fault-free) fabric.
///
/// Faulted-away messages are **not** `bad_dest` drops: a dropped message had
/// a valid destination and was accepted at the injection boundary (the
/// sender believes it was sent), whereas a `bad_dest` rejection hands the
/// message back. The conservation law under faults is
/// `injected - faults.dropped == delivered + in_flight`, where `injected`
/// includes the extra copies counted in `faults.duplicated`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Accepted injections silently discarded at the entry link.
    pub dropped: u64,
    /// Extra copies injected behind an accepted message.
    pub duplicated: u64,
    /// Accepted injections whose payload had one bit flipped in `m1..m4`
    /// (`m0` — and with it the destination — is never corrupted).
    pub corrupted: u64,
    /// Transient link-stall events scheduled (each blinds one node port for
    /// the configured stall length).
    pub stalls: u64,
}

impl FaultCounters {
    /// Whether any fault has been recorded.
    pub fn any(&self) -> bool {
        self.dropped > 0 || self.duplicated > 0 || self.corrupted > 0 || self.stalls > 0
    }

    /// Per-counter difference against an earlier snapshot of the same stream
    /// (measurement windows, like [`LatencyHist::since`]).
    pub fn since(&self, baseline: &FaultCounters) -> FaultCounters {
        FaultCounters {
            dropped: self.dropped - baseline.dropped,
            duplicated: self.duplicated - baseline.duplicated,
            corrupted: self.corrupted - baseline.corrupted,
            stalls: self.stalls - baseline.stalls,
        }
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults(dropped={} duplicated={} corrupted={} stalls={})",
            self.dropped, self.duplicated, self.corrupted, self.stalls
        )
    }
}

/// Simulator work-effort meters for the hot-set scheduler.
///
/// These count what the *simulator* did, not what the simulated machine
/// did: how many channel slots and delivery flows each per-cycle scan
/// actually visited, and how much of the dense (size-proportional) scan it
/// proved unnecessary. Two bit-identical simulations may legitimately differ
/// here (hot-set vs dense cross-check), which is why [`NetStats`] equality
/// deliberately ignores this field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Mesh channel slots examined by `tick` across all cycles.
    pub scanned_channels: u64,
    /// Delivery flows examined by the retransmission pump across all cycles.
    pub scanned_flows: u64,
    /// Dense-scan slots/flows the active-set frontier skipped (the saved
    /// work: dense cost minus what was scanned).
    pub skipped_work: u64,
    /// Live delivery flow-table entries (tx + rx) at sampling time — the
    /// sparse flow store's current footprint. Zero under the dense
    /// cross-check layout, whose rows are not entry-counted.
    pub active_flows: u64,
    /// Sum of the per-node flow-table high-water marks — an upper bound on
    /// the sparse store's peak footprint, deterministic at any worker count
    /// (each node's table evolves locally).
    pub peak_flows: u64,
    /// Open-addressing probe steps spent on flow-table lookups, inserts,
    /// and evictions (resize rehashes excluded). Zero under the dense
    /// cross-check layout.
    pub flow_probes: u64,
}

impl ScanStats {
    /// Adds another counter set into this one (used to merge the fabric's
    /// channel counters with the delivery layer's flow counters).
    pub fn merge(&mut self, other: ScanStats) {
        self.scanned_channels += other.scanned_channels;
        self.scanned_flows += other.scanned_flows;
        self.skipped_work += other.skipped_work;
        self.active_flows += other.active_flows;
        self.peak_flows += other.peak_flows;
        self.flow_probes += other.flow_probes;
    }
}

/// Counters common to all [`crate::Network`] implementations.
///
/// Equality compares the *simulated behaviour* only: every field except
/// [`scan`](NetStats::scan) (which measures simulator effort and differs
/// between the hot-set scheduler and its dense cross-check) participates in
/// `==`. The equivalence suites rely on this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Messages accepted for injection.
    pub injected: u64,
    /// Messages delivered (ejected).
    pub delivered: u64,
    /// Injections refused because the entry buffer was full.
    pub inject_refusals: u64,
    /// Injections rejected because the destination does not exist on this
    /// fabric (counted per attempt; see [`crate::InjectError::BadDest`]).
    pub bad_dest: u64,
    /// Sum of per-message latencies, in cycles.
    ///
    /// **Convention:** latency is the fabric residency of a message — from
    /// the cycle its injection was *accepted* (which, on the mesh, includes
    /// time spent queued in the injection FIFO) to the cycle it was ejected
    /// (including time spent deliverable but not yet drained by the
    /// receiver). Driven by the machine simulator, this equals
    /// `Delivered.cycle - Sent.cycle` of the corresponding trace events, and
    /// is never less than 1: the hand-off from the injection phase of one
    /// cycle is visible to the receiver no earlier than the next cycle, so a
    /// zero-latency ideal fabric reports latency 1.
    pub total_latency: u64,
    /// Packet moves blocked by a full downstream buffer (contention measure;
    /// always zero for the ideal network).
    pub blocked_hops: u64,
    /// High-water mark of in-flight messages.
    pub in_flight_hwm: usize,
    /// Per-delivery latency distribution (same convention as
    /// [`total_latency`](NetStats::total_latency)).
    pub latency_hist: LatencyHist,
    /// Injected-fault tallies; all zero unless the fabric is wrapped in a
    /// [`crate::FaultyFabric`].
    pub faults: FaultCounters,
    /// Hot-set scheduler work meters — **excluded from equality** (see the
    /// type-level docs).
    pub scan: ScanStats,
}

impl PartialEq for NetStats {
    fn eq(&self, other: &NetStats) -> bool {
        // `scan` intentionally omitted: it measures simulator effort, not
        // simulated behaviour (hot-set vs dense scans visit different
        // counts while producing identical traffic).
        self.injected == other.injected
            && self.delivered == other.delivered
            && self.inject_refusals == other.inject_refusals
            && self.bad_dest == other.bad_dest
            && self.total_latency == other.total_latency
            && self.blocked_hops == other.blocked_hops
            && self.in_flight_hwm == other.in_flight_hwm
            && self.latency_hist == other.latency_hist
            && self.faults == other.faults
    }
}

impl Eq for NetStats {}

impl NetStats {
    /// Mean delivery latency in cycles, or `None` before any delivery.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.total_latency as f64 / self.delivered as f64)
    }

    pub(crate) fn record_delivery(&mut self, latency: u64) {
        self.delivered += 1;
        self.total_latency += latency;
        self.latency_hist.record(latency);
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net(injected={} delivered={} refusals={} bad_dest={} mean_latency=",
            self.injected, self.delivered, self.inject_refusals, self.bad_dest,
        )?;
        // "No deliveries yet" and "zero mean latency" are different facts;
        // print n/a rather than a fake 0.00.
        match self.mean_latency() {
            Some(mean) => write!(f, "{mean:.2}")?,
            None => write!(f, "n/a")?,
        }
        write!(
            f,
            " blocked={} hwm={})",
            self.blocked_hops, self.in_flight_hwm,
        )?;
        // Fault-free fabrics print exactly what they always printed.
        if self.faults.any() {
            write!(f, " {}", self.faults)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_scan_counters() {
        let mut a = NetStats::default();
        a.injected = 5;
        let mut b = a;
        b.scan.scanned_channels = 100;
        b.scan.skipped_work = 900;
        b.scan.active_flows = 7;
        b.scan.peak_flows = 9;
        b.scan.flow_probes = 11;
        assert_eq!(a, b, "scan counters measure effort, not behaviour");
        b.injected = 6;
        assert_ne!(a, b, "behavioural fields still compare");
    }

    #[test]
    fn scan_merge_adds_counters() {
        let mut a = ScanStats {
            scanned_channels: 1,
            scanned_flows: 2,
            skipped_work: 3,
            active_flows: 4,
            peak_flows: 5,
            flow_probes: 6,
        };
        a.merge(ScanStats {
            scanned_channels: 10,
            scanned_flows: 20,
            skipped_work: 30,
            active_flows: 40,
            peak_flows: 50,
            flow_probes: 60,
        });
        assert_eq!(a.scanned_channels, 11);
        assert_eq!(a.scanned_flows, 22);
        assert_eq!(a.skipped_work, 33);
        assert_eq!(a.active_flows, 44);
        assert_eq!(a.peak_flows, 55);
        assert_eq!(a.flow_probes, 66);
    }

    #[test]
    fn mean_latency() {
        let mut s = NetStats::default();
        assert_eq!(s.mean_latency(), None);
        s.delivered = 4;
        s.total_latency = 10;
        assert_eq!(s.mean_latency(), Some(2.5));
    }

    #[test]
    fn display_prints_na_before_any_delivery() {
        let mut s = NetStats::default();
        s.injected = 3;
        let text = s.to_string();
        assert!(text.contains("mean_latency=n/a"), "{text}");
        s.delivered = 2;
        s.total_latency = 5;
        let text = s.to_string();
        assert!(text.contains("mean_latency=2.50"), "{text}");
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(LatencyHist::bucket_of(0), 0);
        assert_eq!(LatencyHist::bucket_of(1), 1);
        assert_eq!(LatencyHist::bucket_of(2), 2);
        assert_eq!(LatencyHist::bucket_of(3), 2);
        assert_eq!(LatencyHist::bucket_of(4), 3);
        assert_eq!(LatencyHist::bucket_of(7), 3);
        assert_eq!(LatencyHist::bucket_of(8), 4);
        assert_eq!(LatencyHist::bucket_of(1 << 20), LatencyHist::BUCKETS - 1);
        assert_eq!(LatencyHist::bucket_of(u64::MAX), LatencyHist::BUCKETS - 1);
        for i in 0..LatencyHist::BUCKETS {
            let (lo, hi) = LatencyHist::bounds(i);
            assert_eq!(LatencyHist::bucket_of(lo), i);
            if hi != u64::MAX {
                assert_eq!(LatencyHist::bucket_of(hi), i);
            }
        }
    }

    #[test]
    fn percentile_upper_bound_convention() {
        let mut h = LatencyHist::default();
        assert_eq!(h.percentile(50), None);
        // 10 deliveries: latencies 1..=10 land in buckets 1 (1), 2 (2,3),
        // 3 (4..7), 4 (8,9,10).
        for lat in 1..=10 {
            h.record(lat);
        }
        // p50 → rank 5 → cumulative 1+2+4=7 at bucket 3 → upper bound 7.
        assert_eq!(h.percentile(50), Some(7));
        // p10 → rank 1 → bucket 1 → upper bound 1.
        assert_eq!(h.percentile(10), Some(1));
        // p99/p100 → rank 10 → bucket 4 → upper bound 15.
        assert_eq!(h.percentile(99), Some(15));
        assert_eq!(h.percentile(100), Some(15));
        // A single sample answers every percentile with its bucket.
        let mut one = LatencyHist::default();
        one.record(3);
        assert_eq!(one.percentile(1), Some(3));
        assert_eq!(one.percentile(99), Some(3));
    }

    #[test]
    fn percentile_open_bucket_answers_lower_bound() {
        let mut h = LatencyHist::default();
        h.record(u64::MAX);
        let (lo, hi) = LatencyHist::bounds(LatencyHist::BUCKETS - 1);
        assert_eq!(hi, u64::MAX);
        assert_eq!(h.percentile(99), Some(lo));
    }

    #[test]
    #[should_panic(expected = "percentile 0 out of range")]
    fn percentile_rejects_zero() {
        let _ = LatencyHist::default().percentile(0);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut a = LatencyHist::default();
        a.record(1);
        a.record(300);
        let mut b = LatencyHist::default();
        b.record(1);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[1], 2);
    }

    #[test]
    fn since_isolates_a_window() {
        let mut h = LatencyHist::default();
        h.record(1);
        h.record(100);
        let snapshot = h;
        h.record(2);
        h.record(2);
        let window = h.since(&snapshot);
        assert_eq!(window.total(), 2);
        assert_eq!(window.percentile(99), Some(3)); // bucket of 2 is [2,3]
                                                    // The full histogram is unchanged by the subtraction.
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_totals_and_display() {
        let mut h = LatencyHist::default();
        for lat in [0, 1, 1, 5, 300] {
            h.record(lat);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        let text = h.to_string();
        assert!(text.contains("5 deliveries"), "{text}");
        assert!(LatencyHist::default().to_string().contains("no deliveries"));
    }
}
