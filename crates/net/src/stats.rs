//! Network delivery statistics.

use std::fmt;

/// Counters common to all [`crate::Network`] implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted for injection.
    pub injected: u64,
    /// Messages delivered (ejected).
    pub delivered: u64,
    /// Injections refused because the entry buffer was full.
    pub inject_refusals: u64,
    /// Sum of per-message latencies (inject→eject), in cycles.
    pub total_latency: u64,
    /// Packet moves blocked by a full downstream buffer (contention measure;
    /// always zero for the ideal network).
    pub blocked_hops: u64,
    /// High-water mark of in-flight messages.
    pub in_flight_hwm: usize,
}

impl NetStats {
    /// Mean delivery latency in cycles, or `None` before any delivery.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.total_latency as f64 / self.delivered as f64)
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net(injected={} delivered={} refusals={} mean_latency={:.2} blocked={} hwm={})",
            self.injected,
            self.delivered,
            self.inject_refusals,
            self.mean_latency().unwrap_or(0.0),
            self.blocked_hops,
            self.in_flight_hwm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency() {
        let mut s = NetStats::default();
        assert_eq!(s.mean_latency(), None);
        s.delivered = 4;
        s.total_latency = 10;
        assert_eq!(s.mean_latency(), Some(2.5));
    }
}
