//! Static dispatch over the fabric implementations.

use tcni_core::{Message, NodeId};

use crate::stats::NetStats;
use crate::topology::Topology as _;
use crate::{Fabric, FaultyFabric, IdealNetwork, InjectError, Network};

/// The fabrics, as a closed enum.
///
/// The machine simulator drives the network once per phase of every cycle;
/// with a `Box<dyn Network>` each of those calls is an indirect jump the
/// compiler cannot inline. This enum makes the dispatch a predictable branch
/// and lets the per-cycle fast paths (`tick`, `in_flight`, `peek_eject`)
/// inline into the stepping loop.
pub enum NetworkKind {
    /// Contention-free fixed-latency fabric.
    Ideal(IdealNetwork),
    /// Switched fabric (mesh/torus/ring/fully-connected) with finite
    /// buffers and backpressure.
    Fabric(Fabric),
    /// Either base fabric behind a deterministic fault-injection layer.
    Faulty(FaultyFabric),
}

impl NetworkKind {
    /// The ideal fabric — directly or behind a fault layer.
    pub fn as_ideal(&self) -> Option<&IdealNetwork> {
        match self {
            NetworkKind::Ideal(n) => Some(n),
            NetworkKind::Fabric(_) => None,
            NetworkKind::Faulty(f) => f.inner().as_ideal(),
        }
    }

    /// The switched fabric — directly or behind a fault layer.
    pub fn as_fabric(&self) -> Option<&Fabric> {
        match self {
            NetworkKind::Ideal(_) => None,
            NetworkKind::Fabric(n) => Some(n),
            NetworkKind::Faulty(f) => f.inner().as_fabric(),
        }
    }

    /// Mutable access to the switched fabric — directly or behind a fault
    /// layer (used to toggle per-link observability).
    pub fn as_fabric_mut(&mut self) -> Option<&mut Fabric> {
        match self {
            NetworkKind::Ideal(_) => None,
            NetworkKind::Fabric(n) => Some(n),
            NetworkKind::Faulty(f) => f.inner_mut().as_fabric_mut(),
        }
    }

    /// The fault layer, if this fabric has one.
    pub fn as_faulty(&self) -> Option<&FaultyFabric> {
        match self {
            NetworkKind::Faulty(f) => Some(f),
            _ => None,
        }
    }

    /// Short name of the *base* fabric (`"ideal"` or the topology name —
    /// `"mesh"`, `"torus"`, `"ring"`, `"full"`), looking through a fault
    /// layer: the fault wrapper changes the link behaviour, not the
    /// topology.
    pub fn base_name(&self) -> &'static str {
        match self {
            NetworkKind::Ideal(_) => "ideal",
            NetworkKind::Fabric(n) => n.config().topo.name(),
            NetworkKind::Faulty(f) => f.inner().base_name(),
        }
    }
}

impl From<IdealNetwork> for NetworkKind {
    fn from(n: IdealNetwork) -> NetworkKind {
        NetworkKind::Ideal(n)
    }
}

impl From<Fabric> for NetworkKind {
    fn from(n: Fabric) -> NetworkKind {
        NetworkKind::Fabric(n)
    }
}

impl From<FaultyFabric> for NetworkKind {
    fn from(n: FaultyFabric) -> NetworkKind {
        NetworkKind::Faulty(n)
    }
}

macro_rules! delegate {
    ($self:ident, $n:ident => $body:expr) => {
        match $self {
            NetworkKind::Ideal($n) => $body,
            NetworkKind::Fabric($n) => $body,
            NetworkKind::Faulty($n) => $body,
        }
    };
}

impl Network for NetworkKind {
    fn node_count(&self) -> usize {
        delegate!(self, n => n.node_count())
    }

    fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        delegate!(self, n => n.inject(src, msg))
    }

    fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        delegate!(self, n => n.peek_eject(dst))
    }

    fn eject(&mut self, dst: NodeId) -> Option<Message> {
        delegate!(self, n => n.eject(dst))
    }

    fn tick(&mut self) {
        delegate!(self, n => n.tick())
    }

    fn in_flight(&self) -> usize {
        delegate!(self, n => n.in_flight())
    }

    fn stats(&self) -> NetStats {
        delegate!(self, n => n.stats())
    }

    fn next_arrival(&self) -> Option<u64> {
        delegate!(self, n => n.next_arrival())
    }

    fn advance(&mut self, cycles: u64) {
        delegate!(self, n => n.advance(cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcni_isa::MsgType;

    #[test]
    fn delegates_to_the_wrapped_fabric() {
        let mut net = NetworkKind::from(IdealNetwork::new(2, 3));
        assert_eq!(net.node_count(), 2);
        assert!(net.as_ideal().is_some() && net.as_fabric().is_none());
        let m = Message::to(NodeId::new(1), [0, 7, 0, 0, 0], MsgType::new(2).unwrap());
        net.inject(NodeId::new(0), m).unwrap();
        assert_eq!(net.next_arrival(), Some(3));
        net.advance(3);
        assert_eq!(net.eject(NodeId::new(1)).unwrap().words[1], 7);

        let mesh = NetworkKind::from(Fabric::new(crate::FabricConfig::new(2, 2)));
        assert_eq!(mesh.node_count(), 4);
        assert_eq!(
            mesh.next_arrival(),
            None,
            "the mesh cannot predict arrivals"
        );
    }

    #[test]
    fn faulty_accessors_see_through_the_wrapper() {
        use crate::{FaultConfig, FaultyFabric};
        let mut net = NetworkKind::from(FaultyFabric::new(
            Fabric::new(crate::FabricConfig::new(2, 2)).into(),
            FaultConfig::quiet(9),
        ));
        assert_eq!(net.base_name(), "mesh");
        assert!(
            net.as_fabric().is_some(),
            "mesh visible through the wrapper"
        );
        assert!(net.as_fabric_mut().is_some());
        assert!(net.as_ideal().is_none());
        assert!(net.as_faulty().is_some());
        assert_eq!(net.node_count(), 4);

        let ideal = NetworkKind::from(FaultyFabric::new(
            IdealNetwork::new(2, 1).into(),
            FaultConfig::quiet(9),
        ));
        assert_eq!(ideal.base_name(), "ideal");
        assert!(ideal.as_ideal().is_some());
        assert!(NetworkKind::from(IdealNetwork::new(2, 1))
            .as_faulty()
            .is_none());
    }

    #[test]
    fn base_name_reports_the_topology() {
        use crate::{FaultConfig, FaultyFabric};
        for (cfg, name) in [
            (crate::FabricConfig::torus(2, 2), "torus"),
            (crate::FabricConfig::ring(4), "ring"),
            (crate::FabricConfig::full(4), "full"),
        ] {
            let direct = NetworkKind::from(Fabric::new(cfg));
            assert_eq!(direct.base_name(), name);
            let wrapped = NetworkKind::from(FaultyFabric::new(
                Fabric::new(cfg).into(),
                FaultConfig::quiet(1),
            ));
            assert_eq!(wrapped.base_name(), name, "seen through the fault layer");
        }
    }
}
