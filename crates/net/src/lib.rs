//! # tcni-net — interconnection-network substrate
//!
//! The network models for the TCNI reproduction of Henry & Joerg (ASPLOS
//! 1992). The paper's flow-control story (§2.1.1) needs a network with
//! finite buffering: "If the receiving processor does not process messages as
//! fast as the network delivers them, its input message queue backs up into
//! the network. As the network becomes clogged, processors can no longer
//! transmit messages and eventually their output queues fill up."
//!
//! Two implementations are provided behind the [`Network`] trait:
//!
//! * [`IdealNetwork`] — fixed-latency, contention-free delivery; used where
//!   the paper's methodology explicitly excludes network effects (the
//!   Figure-12 accounting) and for functional tests;
//! * [`Fabric`] — a switched fabric with dimension-order routing over a
//!   pluggable [`Topology`] (2-D mesh, wrap-around torus, ring, or
//!   fully-connected), one packet per link per cycle, finite per-channel
//!   FIFOs, and credit-style backpressure all the way into the sender's
//!   output queue; used by the saturation/boundary-condition experiments.
//!
//! Either fabric can additionally be wrapped in a [`FaultyFabric`], which
//! applies a seeded, deterministic schedule of link faults — transient
//! stalls, message drop, duplication, payload corruption — at configurable
//! per-mille rates (see the [`fault`](self) module docs). A zero-rate wrapper
//! is an exact pass-through, so the fault-free paper models are unaffected.
//!
//! Both preserve point-to-point ordering between any source/destination
//! pair, which the SCROLL (variable-length message) extension of §2.1.2
//! relies on.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod fault;
mod ideal;
mod kind;
mod stats;
mod topology;
mod tree;

pub use fabric::{
    Fabric, FabricConfig, FabricRange, FabricRangeDelta, FabricTickScratch, LinkReport, LinkStats,
};
pub use fault::{FaultConfig, FaultRange, FaultRangeDelta, FaultyFabric};
pub use ideal::IdealNetwork;
pub use kind::NetworkKind;
pub use stats::{FaultCounters, LatencyHist, NetStats, ScanStats};
pub use topology::{FullyConnected, Hop, Mesh2d, Ring, Topology, TopologyKind, Torus2d};
pub use tree::{CombiningTree, TreeShape};

use tcni_core::{Message, NodeId};

/// Why a [`Network::inject`] was not accepted. Every variant hands the
/// message back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectError {
    /// The entry buffer was full; keep the message queued and retry — this
    /// is the boundary where congestion backs up into the sender's output
    /// queue (§2.1.1).
    Refused(Message),
    /// The destination node does not exist on this fabric. The message can
    /// never be delivered; retrying is futile. The machine simulator drops
    /// such messages (counted in [`NetStats::bad_dest`]).
    BadDest(Message),
    /// A collective message was started on a node outside the collective's
    /// member set (the combining tree does not span it). Retrying is
    /// futile; the caller gets the message back instead of a silent drop.
    NotParticipant(Message),
}

impl InjectError {
    /// Recovers the rejected message regardless of the reason.
    pub fn into_message(self) -> Message {
        match self {
            InjectError::Refused(m) | InjectError::BadDest(m) | InjectError::NotParticipant(m) => m,
        }
    }

    /// Whether retrying the injection later can succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, InjectError::Refused(_))
    }
}

/// A message-delivery fabric connecting the nodes' network interfaces.
///
/// The machine simulator drives it with a three-phase cycle: `inject` drains
/// NI output queues (refusals back-pressure into them), [`tick`](Network::tick)
/// advances packets, and `peek_eject`/`eject` fill NI input queues (refusals
/// leave messages in the network).
pub trait Network {
    /// Number of attached nodes.
    fn node_count(&self) -> usize;

    /// Offers a message for injection at `src`.
    ///
    /// # Errors
    ///
    /// [`InjectError::Refused`] when the injection buffer is full (keep the
    /// message queued and retry — this is the boundary where congestion
    /// backs up into the sender's output queue);
    /// [`InjectError::BadDest`] when the destination is not a node of this
    /// fabric (retrying cannot help; the caller decides whether to drop).
    fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError>;

    /// The message ready for delivery at `dst` this cycle, if any.
    fn peek_eject(&self, dst: NodeId) -> Option<&Message>;

    /// Removes and returns the message ready at `dst`.
    fn eject(&mut self, dst: NodeId) -> Option<Message>;

    /// Advances the fabric by one cycle.
    fn tick(&mut self);

    /// Messages currently inside the fabric (injected, not yet ejected).
    fn in_flight(&self) -> usize;

    /// Delivery statistics.
    fn stats(&self) -> NetStats;

    /// The earliest cycle (in this network's own tick count) at which any
    /// in-flight message becomes deliverable, if the fabric can predict it.
    ///
    /// Contention-free fabrics like [`IdealNetwork`] know this exactly, which
    /// lets the machine simulator fast-forward a fully-stalled system in one
    /// jump. Fabrics with contention (the mesh) return `None` and must be
    /// ticked cycle by cycle.
    fn next_arrival(&self) -> Option<u64> {
        None
    }

    /// Advances the fabric by `cycles` cycles at once.
    ///
    /// Must be observably identical to calling [`tick`](Network::tick) that
    /// many times; the default does exactly that. Fabrics whose tick is pure
    /// time-keeping (the ideal network) override it with O(1) arithmetic.
    fn advance(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }
}
