//! The topology abstraction: route computation, link enumeration, and
//! distance metrics, factored out of the fabric so one switched simulator
//! core ([`Fabric`](crate::Fabric)) serves every interconnect shape.
//!
//! A [`Topology`] describes a fabric's static geometry as a set of
//! *ports* per node. Port `p` of node `n` names the outgoing link FIFO
//! from `n` to [`port_target(n, p)`](Topology::port_target); the fabric
//! adds one injection and one ejection FIFO per node around these. The
//! routing function [`route`](Topology::route) is deterministic and
//! per-hop: given a packet's current node and destination it names the
//! single next link (or [`Hop::Eject`] on arrival), so every
//! source/destination pair follows one fixed path of FIFOs and
//! point-to-point ordering is preserved on every topology.
//!
//! Four shapes are provided:
//!
//! * [`Mesh2d`] — the paper's fabric: XY dimension-order routing, four
//!   ports (east/west/north/south);
//! * [`Torus2d`] — wrap-around XY with tie-broken minimal routing and
//!   *dateline* virtual channels (two VCs per direction) for deadlock
//!   freedom;
//! * [`Ring`] — a 1-D torus: minimal clockwise/counter-clockwise routing
//!   with the same dateline discipline;
//! * [`FullyConnected`] — a dedicated link per ordered pair; the
//!   contention-bearing analogue of the ideal network.
//!
//! # Deadlock freedom
//!
//! Dimension-order routing breaks cycles *between* dimensions; within a
//! wrapped dimension the wrap link closes a channel cycle, which the
//! classical dateline scheme re-breaks: packets travel on VC 0 until they
//! cross the wrap edge and on VC 1 after it. Here the VC is a pure
//! function of position — e.g. eastbound, a packet at `x` bound for `dx`
//! is pre-wrap iff `x > dx` — so the routing function stays stateless and
//! the channel dependency graph within each VC class is ordered by
//! coordinate (acyclic), with VC 0 feeding VC 1, never back.

/// One routing step: the port to take, or delivery at the current node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// Forward on the given port of the current node.
    Port(usize),
    /// The packet has arrived; move to the ejection buffer.
    Eject,
}

/// A fabric's static geometry: nodes, per-node ports, the deterministic
/// per-hop routing function, and the induced distance metric.
///
/// Implementations must satisfy three contracts the test layer pins:
///
/// * **validity** — `route(at, dst)` returns a `Port(p)` with
///   `p < ports()`, and following `port_target` reaches a real node;
/// * **minimality** — iterating `route` from `src` to `dst` takes exactly
///   [`distance(src, dst)`](Topology::distance) link hops;
/// * **deadlock consistency** — the port sequence along any path obeys a
///   dimension order, and within a wrapped dimension the VC index never
///   decreases (dateline discipline).
pub trait Topology {
    /// Number of nodes.
    fn nodes(&self) -> usize;

    /// Number of outgoing link ports per node (uniform across nodes; a
    /// port may be unused, e.g. the self-port of [`FullyConnected`]).
    fn ports(&self) -> usize;

    /// The next hop for a packet located at `at` bound for `dst`.
    fn route(&self, at: usize, dst: usize) -> Hop;

    /// The node at the far end of `node`'s port `port`.
    fn port_target(&self, node: usize, port: usize) -> usize;

    /// Minimal hop count from `src` to `dst` (0 for `src == dst`).
    fn distance(&self, src: usize, dst: usize) -> usize;

    /// Short lowercase name (`"mesh"`, `"torus"`, `"ring"`, `"full"`).
    fn name(&self) -> &'static str;

    /// Display/export name of a port (e.g. `"east"`, `"cw0"`).
    fn port_name(&self, port: usize) -> &'static str;

    /// Channels per node in the fabric's layout: every port plus the
    /// injection and ejection FIFOs.
    fn stride(&self) -> usize {
        self.ports() + 2
    }

    /// Movable channels per node: every port plus injection (ejection
    /// drains via `eject`, never in `tick`).
    fn move_slots(&self) -> usize {
        self.ports() + 1
    }
}

/// The paper's 2-D mesh: XY dimension-order routing, no wrap links.
///
/// Ports: `0` east (+x), `1` west (−x), `2` north (+y), `3` south (−y).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2d {
    /// Columns.
    pub width: usize,
    /// Rows.
    pub height: usize,
}

const MESH_PORTS: [&str; 4] = ["east", "west", "north", "south"];

impl Mesh2d {
    /// A `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Mesh2d {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        Mesh2d { width, height }
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.width, node / self.width)
    }
}

impl Topology for Mesh2d {
    fn nodes(&self) -> usize {
        self.width * self.height
    }

    fn ports(&self) -> usize {
        4
    }

    fn route(&self, at: usize, dst: usize) -> Hop {
        let (x, y) = self.coords(at);
        let (dx, dy) = self.coords(dst);
        if dx > x {
            Hop::Port(0)
        } else if dx < x {
            Hop::Port(1)
        } else if dy > y {
            Hop::Port(2)
        } else if dy < y {
            Hop::Port(3)
        } else {
            Hop::Eject
        }
    }

    fn port_target(&self, node: usize, port: usize) -> usize {
        let (x, y) = self.coords(node);
        let (tx, ty) = match port {
            0 => (x + 1, y),
            1 => (x - 1, y),
            2 => (x, y + 1),
            _ => (x, y - 1),
        };
        ty * self.width + tx
    }

    fn distance(&self, src: usize, dst: usize) -> usize {
        let (x, y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        x.abs_diff(dx) + y.abs_diff(dy)
    }

    fn name(&self) -> &'static str {
        "mesh"
    }

    fn port_name(&self, port: usize) -> &'static str {
        MESH_PORTS[port]
    }
}

/// A 2-D torus: the mesh plus wrap links, tie-broken minimal XY routing,
/// and two dateline virtual channels per direction.
///
/// Ports are `direction * 2 + vc`: `0`/`1` east, `2`/`3` west, `4`/`5`
/// north, `6`/`7` south. Ties between the two ways around a dimension
/// (`right == left`, even extents) break toward east/north, so the choice
/// stays stable along the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus2d {
    /// Columns.
    pub width: usize,
    /// Rows.
    pub height: usize,
}

const TORUS_PORTS: [&str; 8] = [
    "east0", "east1", "west0", "west1", "north0", "north1", "south0", "south1",
];

/// Minimal travel around a wrapped extent: `(forward, backward)` hop
/// counts from `a` to `b` in a cycle of length `len`.
fn wrap_dist(len: usize, a: usize, b: usize) -> (usize, usize) {
    let fwd = (b + len - a) % len;
    (fwd, len - fwd)
}

impl Torus2d {
    /// A `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Torus2d {
        assert!(width > 0 && height > 0, "torus dimensions must be non-zero");
        Torus2d { width, height }
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.width, node / self.width)
    }
}

impl Topology for Torus2d {
    fn nodes(&self) -> usize {
        self.width * self.height
    }

    fn ports(&self) -> usize {
        8
    }

    fn route(&self, at: usize, dst: usize) -> Hop {
        let (x, y) = self.coords(at);
        let (dx, dy) = self.coords(dst);
        if x != dx {
            let (right, left) = wrap_dist(self.width, x, dx);
            return if right <= left {
                // Eastbound: pre-wrap (still above the destination) on
                // VC 0, post-wrap on VC 1.
                Hop::Port(if x > dx { 0 } else { 1 })
            } else {
                Hop::Port(2 + usize::from(x >= dx))
            };
        }
        if y != dy {
            let (up, down) = wrap_dist(self.height, y, dy);
            return if up <= down {
                Hop::Port(4 + usize::from(y <= dy))
            } else {
                Hop::Port(6 + usize::from(y >= dy))
            };
        }
        Hop::Eject
    }

    fn port_target(&self, node: usize, port: usize) -> usize {
        let (x, y) = self.coords(node);
        let (w, h) = (self.width, self.height);
        let (tx, ty) = match port / 2 {
            0 => ((x + 1) % w, y),
            1 => ((x + w - 1) % w, y),
            2 => (x, (y + 1) % h),
            _ => (x, (y + h - 1) % h),
        };
        ty * self.width + tx
    }

    fn distance(&self, src: usize, dst: usize) -> usize {
        let (x, y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let (r, l) = wrap_dist(self.width, x, dx);
        let (u, d) = wrap_dist(self.height, y, dy);
        r.min(l) + u.min(d)
    }

    fn name(&self) -> &'static str {
        "torus"
    }

    fn port_name(&self, port: usize) -> &'static str {
        TORUS_PORTS[port]
    }
}

/// A bidirectional ring (1-D torus): minimal clockwise (+1) /
/// counter-clockwise (−1) routing with dateline VCs.
///
/// Ports: `0`/`1` clockwise VC 0/1, `2`/`3` counter-clockwise VC 0/1.
/// The tie at exactly half way around breaks clockwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    /// Node count.
    pub nodes: usize,
}

const RING_PORTS: [&str; 4] = ["cw0", "cw1", "ccw0", "ccw1"];

impl Ring {
    /// A ring of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Ring {
        assert!(nodes > 0, "a ring needs at least one node");
        Ring { nodes }
    }
}

impl Topology for Ring {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn ports(&self) -> usize {
        4
    }

    fn route(&self, at: usize, dst: usize) -> Hop {
        let (cw, ccw) = wrap_dist(self.nodes, at, dst);
        if cw == 0 {
            Hop::Eject
        } else if cw <= ccw {
            Hop::Port(usize::from(at <= dst))
        } else {
            Hop::Port(2 + usize::from(at >= dst))
        }
    }

    fn port_target(&self, node: usize, port: usize) -> usize {
        if port < 2 {
            (node + 1) % self.nodes
        } else {
            (node + self.nodes - 1) % self.nodes
        }
    }

    fn distance(&self, src: usize, dst: usize) -> usize {
        let (cw, ccw) = wrap_dist(self.nodes, src, dst);
        cw.min(ccw)
    }

    fn name(&self) -> &'static str {
        "ring"
    }

    fn port_name(&self, port: usize) -> &'static str {
        RING_PORTS[port]
    }
}

/// Every node a single hop from every other: one dedicated link per
/// ordered pair (port `p` of node `n` is the link `n → p`; the self-port
/// is unused). Channel count grows as `n²`, so construction is capped at
/// [`FullyConnected::MAX_NODES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullyConnected {
    /// Node count.
    pub nodes: usize,
}

impl FullyConnected {
    /// The largest supported machine (the `n²` channel table stops being
    /// a simulator and starts being a memory benchmark past this).
    pub const MAX_NODES: usize = 512;

    /// A fully-connected fabric of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`. Exceeding [`MAX_NODES`](Self::MAX_NODES)
    /// is caught as a typed error at machine build time.
    pub fn new(nodes: usize) -> FullyConnected {
        assert!(nodes > 0, "a fabric needs at least one node");
        FullyConnected { nodes }
    }
}

impl Topology for FullyConnected {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn ports(&self) -> usize {
        self.nodes
    }

    fn route(&self, at: usize, dst: usize) -> Hop {
        if at == dst {
            Hop::Eject
        } else {
            Hop::Port(dst)
        }
    }

    fn port_target(&self, _node: usize, port: usize) -> usize {
        port
    }

    fn distance(&self, src: usize, dst: usize) -> usize {
        usize::from(src != dst)
    }

    fn name(&self) -> &'static str {
        "full"
    }

    fn port_name(&self, _port: usize) -> &'static str {
        "direct"
    }
}

/// The topologies, as a closed enum — the static-dispatch mirror of
/// [`NetworkKind`](crate::NetworkKind) one level down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// 2-D mesh (the paper's fabric).
    Mesh(Mesh2d),
    /// 2-D torus with wrap links and dateline VCs.
    Torus(Torus2d),
    /// Bidirectional ring.
    Ring(Ring),
    /// One dedicated link per ordered pair.
    Full(FullyConnected),
}

impl TopologyKind {
    /// A `width × height` mesh.
    pub fn mesh(width: usize, height: usize) -> TopologyKind {
        TopologyKind::Mesh(Mesh2d::new(width, height))
    }

    /// A `width × height` torus.
    pub fn torus(width: usize, height: usize) -> TopologyKind {
        TopologyKind::Torus(Torus2d::new(width, height))
    }

    /// A ring of `nodes` nodes.
    pub fn ring(nodes: usize) -> TopologyKind {
        TopologyKind::Ring(Ring::new(nodes))
    }

    /// A fully-connected fabric of `nodes` nodes.
    pub fn full(nodes: usize) -> TopologyKind {
        TopologyKind::Full(FullyConnected::new(nodes))
    }
}

macro_rules! topo_delegate {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            TopologyKind::Mesh($t) => $body,
            TopologyKind::Torus($t) => $body,
            TopologyKind::Ring($t) => $body,
            TopologyKind::Full($t) => $body,
        }
    };
}

impl Topology for TopologyKind {
    fn nodes(&self) -> usize {
        topo_delegate!(self, t => t.nodes())
    }

    fn ports(&self) -> usize {
        topo_delegate!(self, t => t.ports())
    }

    fn route(&self, at: usize, dst: usize) -> Hop {
        topo_delegate!(self, t => t.route(at, dst))
    }

    fn port_target(&self, node: usize, port: usize) -> usize {
        topo_delegate!(self, t => t.port_target(node, port))
    }

    fn distance(&self, src: usize, dst: usize) -> usize {
        topo_delegate!(self, t => t.distance(src, dst))
    }

    fn name(&self) -> &'static str {
        topo_delegate!(self, t => t.name())
    }

    fn port_name(&self, port: usize) -> &'static str {
        topo_delegate!(self, t => t.port_name(port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks the route from `src` to `dst`, asserting validity at each
    /// hop, and returns the hop-by-hop port sequence.
    fn walk(topo: &impl Topology, src: usize, dst: usize) -> Vec<usize> {
        let mut at = src;
        let mut path = Vec::new();
        for _ in 0..=2 * (topo.nodes() + 1) {
            match topo.route(at, dst) {
                Hop::Eject => {
                    assert_eq!(at, dst, "ejected away from the destination");
                    return path;
                }
                Hop::Port(p) => {
                    assert!(p < topo.ports(), "port {p} out of range");
                    let next = topo.port_target(at, p);
                    assert!(next < topo.nodes(), "target {next} out of range");
                    assert_ne!(next, at, "a link must leave the node");
                    path.push(p);
                    at = next;
                }
            }
        }
        panic!("route {src}->{dst} did not terminate");
    }

    fn check_all_pairs(topo: &impl Topology) {
        for src in 0..topo.nodes() {
            for dst in 0..topo.nodes() {
                let path = walk(topo, src, dst);
                assert_eq!(
                    path.len(),
                    topo.distance(src, dst),
                    "{}: {src}->{dst} not minimal",
                    topo.name()
                );
                assert_eq!(topo.distance(src, dst), topo.distance(dst, src));
            }
        }
    }

    #[test]
    fn mesh_routes_are_minimal_and_valid() {
        check_all_pairs(&Mesh2d::new(4, 3));
        check_all_pairs(&Mesh2d::new(1, 5));
        check_all_pairs(&Mesh2d::new(5, 1));
    }

    #[test]
    fn torus_routes_are_minimal_and_valid() {
        check_all_pairs(&Torus2d::new(4, 4));
        check_all_pairs(&Torus2d::new(5, 3));
        check_all_pairs(&Torus2d::new(2, 2));
        check_all_pairs(&Torus2d::new(1, 6));
    }

    #[test]
    fn ring_routes_are_minimal_and_valid() {
        for n in [1, 2, 3, 7, 8] {
            check_all_pairs(&Ring::new(n));
        }
    }

    #[test]
    fn full_routes_are_single_hop() {
        let t = FullyConnected::new(9);
        check_all_pairs(&t);
        assert_eq!(t.distance(3, 3), 0);
        assert_eq!(t.distance(3, 4), 1);
    }

    #[test]
    fn torus_wraps_shorten_paths() {
        let t = Torus2d::new(8, 8);
        let m = Mesh2d::new(8, 8);
        // Corner to corner: mesh walks 14 hops, the torus wraps in 2.
        assert_eq!(m.distance(0, 63), 14);
        assert_eq!(t.distance(0, 63), 2);
    }

    /// The dateline discipline: within each direction run the VC index
    /// never decreases, and X is fully routed before Y.
    #[test]
    fn torus_paths_follow_the_dateline_discipline() {
        let t = Torus2d::new(5, 4);
        for src in 0..t.nodes() {
            for dst in 0..t.nodes() {
                let path = walk(&t, src, dst);
                let dims: Vec<usize> = path.iter().map(|p| p / 4).collect();
                assert!(dims.windows(2).all(|w| w[0] <= w[1]), "X before Y");
                for dir in 0..4 {
                    let vcs: Vec<usize> = path
                        .iter()
                        .filter(|&&p| p / 2 == dir)
                        .map(|p| p % 2)
                        .collect();
                    assert!(
                        vcs.windows(2).all(|w| w[0] <= w[1]),
                        "VC decreased in direction {dir}: {path:?}"
                    );
                }
                // At most one direction per dimension is ever used.
                let used_e = path.iter().any(|p| p / 2 == 0);
                let used_w = path.iter().any(|p| p / 2 == 1);
                assert!(!(used_e && used_w), "mixed east and west: {path:?}");
            }
        }
    }

    #[test]
    fn ring_paths_follow_the_dateline_discipline() {
        for n in [5, 8, 9] {
            let t = Ring::new(n);
            for src in 0..n {
                for dst in 0..n {
                    let path = walk(&t, src, dst);
                    let used_cw = path.iter().any(|&p| p < 2);
                    let used_ccw = path.iter().any(|&p| p >= 2);
                    assert!(!(used_cw && used_ccw), "mixed directions: {path:?}");
                    let vcs: Vec<usize> = path.iter().map(|p| p % 2).collect();
                    assert!(vcs.windows(2).all(|w| w[0] <= w[1]), "VC decreased");
                }
            }
        }
    }

    #[test]
    fn kind_delegates_and_names() {
        let k = TopologyKind::torus(4, 4);
        assert_eq!(k.name(), "torus");
        assert_eq!(k.nodes(), 16);
        assert_eq!(k.ports(), 8);
        assert_eq!(k.stride(), 10);
        assert_eq!(k.move_slots(), 9);
        assert_eq!(TopologyKind::mesh(2, 3).name(), "mesh");
        assert_eq!(TopologyKind::ring(5).name(), "ring");
        assert_eq!(TopologyKind::full(5).name(), "full");
        assert_eq!(TopologyKind::mesh(2, 3).port_name(0), "east");
        assert_eq!(TopologyKind::ring(5).port_name(3), "ccw1");
    }
}
