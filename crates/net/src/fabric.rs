//! The switched fabric: finite channel FIFOs, one packet per link per
//! cycle, and backpressure, over a pluggable [`Topology`].
//!
//! Historically this was a hard-coded 2-D mesh (`Mesh2d`); the routing
//! geometry is now delegated to a [`TopologyKind`], so the same switched
//! core — including the active-channel frontier, per-link observability,
//! and the sharded `tick_domains` cycle — serves mesh, torus, ring, and
//! fully-connected fabrics. For the mesh the channel layout and scan
//! order are bit-identical to the original: channels are numbered
//! `node * stride + role` with role 0 = inject, roles `1..=ports` the
//! topology's ports in order, and role `stride - 1` = eject, which for
//! the mesh reproduces the historical inject/east/west/north/south/eject
//! layout exactly.

use std::collections::VecDeque;

use tcni_core::{Message, NodeId};
use tcni_util::disjoint::{split_groups, GroupMut, SlotClaims};
use tcni_util::par::run_tasks;

use crate::stats::{LatencyHist, NetStats};
use crate::topology::{Hop, Topology, TopologyKind};
use crate::{InjectError, Network};

/// Configuration for [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// The interconnect shape.
    pub topo: TopologyKind,
    /// Capacity of each directional link FIFO, in packets.
    pub channel_capacity: usize,
    /// Capacity of each node's injection FIFO.
    pub inject_capacity: usize,
    /// Capacity of each node's ejection FIFO (the buffer the NI drains).
    pub eject_capacity: usize,
}

impl FabricConfig {
    /// A `width × height` mesh with small (4-packet) buffers everywhere —
    /// shallow enough that congestion visibly backs up, as §2.1.1 describes.
    pub fn new(width: usize, height: usize) -> FabricConfig {
        FabricConfig::of(TopologyKind::mesh(width, height))
    }

    /// Any topology with the same small default buffers.
    pub fn of(topo: TopologyKind) -> FabricConfig {
        FabricConfig {
            topo,
            channel_capacity: 4,
            inject_capacity: 4,
            eject_capacity: 4,
        }
    }

    /// A `width × height` torus with default buffers.
    pub fn torus(width: usize, height: usize) -> FabricConfig {
        FabricConfig::of(TopologyKind::torus(width, height))
    }

    /// A ring of `nodes` nodes with default buffers.
    pub fn ring(nodes: usize) -> FabricConfig {
        FabricConfig::of(TopologyKind::ring(nodes))
    }

    /// A fully-connected fabric of `nodes` nodes with default buffers.
    pub fn full(nodes: usize) -> FabricConfig {
        FabricConfig::of(TopologyKind::full(nodes))
    }
}

/// Per-channel observability counters (see [`Fabric::set_observe`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// High-water mark of the channel FIFO's occupancy, in packets.
    pub hwm: usize,
    /// Head-of-line moves out of this channel that were blocked by a full
    /// downstream buffer.
    pub blocked: u64,
}

/// One channel's stats with its location, as reported by
/// [`Fabric::link_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkReport {
    /// The node the channel belongs to.
    pub node: usize,
    /// The channel role (`"inject"`, `"eject"`, or a topology port name
    /// such as `"east"` or `"cw0"`).
    pub dir: &'static str,
    /// The counters.
    pub stats: LinkStats,
}

#[derive(Debug)]
struct Packet {
    msg: Message,
    injected_at: u64,
    moved_at: u64,
}

// Channel-layout arithmetic as free functions of the topology, so the
// parallel tick's workers (which cannot hold `&self` while the channel
// vector is split) share the exact decision procedure with the serial
// methods. A node's channels are `node * stride + role` with role 0 =
// inject, role `1 + p` = topology port `p`, role `stride - 1` = eject.
// Frontier slots order the movable roles ports-first, inject-last:
// `node * move_slots + rank` with rank `p` for port `p` and rank
// `ports` for inject — for the mesh this is exactly the historical
// east/west/north/south/inject move order.

const INJECT_ROLE: usize = 0;

/// The movable role of frontier slot `slot % move_slots`.
fn role_of_rank(rank: usize, ports: usize) -> usize {
    if rank == ports {
        INJECT_ROLE
    } else {
        rank + 1
    }
}

/// The frontier rank of movable role `role` (inject or a port).
fn rank_of_role(role: usize, ports: usize) -> usize {
    if role == INJECT_ROLE {
        ports
    } else {
        role - 1
    }
}

/// The routing decision for a packet *located at* `node`, as a role.
fn route_c(topo: &TopologyKind, node: usize, dst: usize) -> usize {
    match topo.route(node, dst) {
        Hop::Port(p) => 1 + p,
        Hop::Eject => topo.stride() - 1,
    }
}

/// The node a packet in `(node, role)` is located at / heading into.
fn target_c(topo: &TopologyKind, node: usize, role: usize) -> usize {
    if role == INJECT_ROLE {
        node
    } else {
        topo.port_target(node, role - 1)
    }
}

fn cap_of_c(config: &FabricConfig, role: usize, stride: usize) -> usize {
    if role == INJECT_ROLE {
        config.inject_capacity
    } else if role == stride - 1 {
        config.eject_capacity
    } else {
        config.channel_capacity
    }
}

fn chan_of(node: usize, role: usize, stride: usize) -> usize {
    node * stride + role
}

/// The spatial domain (index into `bounds` windows) that owns `node`.
fn dom_of(bounds: &[usize], node: usize) -> u32 {
    (bounds.partition_point(|&b| b <= node) - 1) as u32
}

/// A switched network over a [`TopologyKind`]: deterministic per-hop
/// routing, one packet per link per cycle, finite per-channel FIFOs, and
/// backpressure that propagates from a stalled receiver all the way to
/// senders' injection buffers.
///
/// Dimension-order (and, on wrapped topologies, dateline-VC) routing over
/// per-port FIFOs is deadlock-free, and because every source/destination
/// pair uses a single deterministic path of FIFOs, point-to-point
/// ordering is preserved (required by SCROLL flits, §2.1.2).
///
/// # Example
///
/// ```
/// use tcni_core::{Message, NodeId};
/// use tcni_isa::MsgType;
/// use tcni_net::{Fabric, FabricConfig, Network};
///
/// let mut net = Fabric::new(FabricConfig::new(2, 2));
/// let m = Message::to(NodeId::new(3), [0, 0, 0, 0, 0], MsgType::new(2).unwrap());
/// net.inject(NodeId::new(0), m).unwrap();
/// for _ in 0..8 { net.tick(); }
/// assert!(net.eject(NodeId::new(3)).is_some());
/// ```
pub struct Fabric {
    config: FabricConfig,
    chans: Vec<VecDeque<Packet>>,
    now: u64,
    in_flight: usize,
    stats: NetStats,
    /// Whether per-link counters are maintained (off by default: the
    /// per-hop updates, while cheap, are not free — see
    /// [`set_observe`](Fabric::set_observe)).
    observe: bool,
    links: Vec<LinkStats>,
    /// The active-channel frontier: bit `node * move_slots + rank` is set
    /// iff that movable channel is non-empty. Maintained incrementally on
    /// inject and on every head-of-line move (eject channels are untracked —
    /// they drain via `eject`, not `tick`). Invariant: in hot-set mode,
    /// `tick` visits exactly the set bits, in ascending slot order.
    active: Vec<u64>,
    /// Cross-check mode: `tick` scans every slot the way the pre-frontier
    /// code did (the frontier is still maintained, just not consulted).
    /// Behaviour is bit-identical either way; only the scan counters differ.
    dense_scan: bool,
}

impl Fabric {
    /// Creates a fabric.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero, or if the topology exceeds
    /// [`NodeId`]'s wide-format address space ([`NodeId::MAX_NODES`]).
    pub fn new(config: FabricConfig) -> Fabric {
        let n = config.topo.nodes();
        assert!(
            n <= NodeId::MAX_NODES,
            "fabric larger than the NodeId address space"
        );
        assert!(
            config.channel_capacity > 0 && config.inject_capacity > 0 && config.eject_capacity > 0,
            "capacities must be non-zero"
        );
        let stride = config.topo.stride();
        // Every FIFO is preallocated to its capacity so the steady-state
        // tick/inject path never allocates.
        let cap = |i: usize| cap_of_c(&config, i % stride, stride);
        Fabric {
            config,
            chans: (0..n * stride)
                .map(|i| VecDeque::with_capacity(cap(i)))
                .collect(),
            now: 0,
            in_flight: 0,
            stats: NetStats::default(),
            observe: false,
            links: Vec::new(),
            active: vec![0; (n * config.topo.move_slots()).div_ceil(64)],
            dense_scan: false,
        }
    }

    /// Enables or disables the dense-scan cross-check (off by default).
    ///
    /// With it on, `tick` visits every channel of every node like the
    /// pre-frontier simulator did, instead of only the active-set frontier.
    /// Traffic is bit-identical either way (the equivalence suites enforce
    /// this); only the [`ScanStats`](crate::ScanStats) counters differ.
    pub fn set_dense_scan(&mut self, on: bool) {
        self.dense_scan = on;
    }

    /// Whether the dense-scan cross-check is active.
    pub fn dense_scan(&self) -> bool {
        self.dense_scan
    }

    /// Marks the movable channel `(node, role)` non-empty in the frontier.
    #[inline]
    fn mark_active(&mut self, node: usize, role: usize) {
        let ports = self.config.topo.ports();
        debug_assert!(role != ports + 1, "eject channels are untracked");
        let slot = node * self.config.topo.move_slots() + rank_of_role(role, ports);
        self.active[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Clears the frontier bit of slot `slot` (its channel just emptied).
    #[inline]
    fn clear_active_slot(&mut self, slot: usize) {
        self.active[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Enables or disables per-link observability counters.
    ///
    /// When enabled, every channel push updates that channel's occupancy
    /// high-water mark and every blocked head-of-line move increments its
    /// per-channel blocked counter. Disabled (the default), the hot path
    /// carries only a branch on a cold flag and the aggregate [`NetStats`]
    /// are unchanged either way. Enabling mid-run starts the per-link
    /// counters from zero; disabling keeps the counts gathered so far.
    pub fn set_observe(&mut self, on: bool) {
        if on && self.links.is_empty() {
            self.links = vec![LinkStats::default(); self.chans.len()];
        }
        self.observe = on;
    }

    /// Whether per-link counters are being maintained.
    pub fn observe(&self) -> bool {
        self.observe
    }

    /// A snapshot of every channel's counters, in `(node, role)` order.
    /// Empty unless [`set_observe`](Fabric::set_observe) has been called.
    pub fn link_stats(&self) -> Vec<LinkReport> {
        let stride = self.config.topo.stride();
        self.links
            .iter()
            .enumerate()
            .map(|(i, &stats)| {
                let role = i % stride;
                LinkReport {
                    node: i / stride,
                    dir: if role == INJECT_ROLE {
                        "inject"
                    } else if role == stride - 1 {
                        "eject"
                    } else {
                        self.config.topo.port_name(role - 1)
                    },
                    stats,
                }
            })
            .collect()
    }

    fn note_push(&mut self, idx: usize) {
        if self.observe {
            let depth = self.chans[idx].len();
            let link = &mut self.links[idx];
            link.hwm = link.hwm.max(depth);
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    fn chan_index(&self, node: usize, role: usize) -> usize {
        chan_of(node, role, self.config.topo.stride())
    }

    fn eject_role(&self) -> usize {
        self.config.topo.stride() - 1
    }

    /// Occupancy of a node's ejection buffer (for tests and observability).
    pub fn eject_occupancy(&self, node: NodeId) -> usize {
        self.chans[self.chan_index(node.index(), self.eject_role())].len()
    }

    /// One head-of-line move attempt for frontier slot `slot`, shared by the
    /// hot-set and dense scans. Packets stamped `moved_at == now` have
    /// already hopped this cycle.
    fn move_head(&mut self, slot: usize) {
        let topo = self.config.topo;
        let (stride, move_slots, ports) = (topo.stride(), topo.move_slots(), topo.ports());
        let node = slot / move_slots;
        let role = role_of_rank(slot % move_slots, ports);
        let src_idx = chan_of(node, role, stride);
        let Some(head) = self.chans[src_idx].front() else {
            // Only the dense scan visits empty channels; the frontier
            // guarantees occupancy.
            debug_assert!(self.dense_scan, "frontier bit set on empty channel");
            return;
        };
        if head.moved_at >= self.now {
            return;
        }
        // Location of the packet: for link channels it is the link's
        // far end; for inject it is the node itself.
        let loc = target_c(&topo, node, role);
        let dst = head.msg.dest().index();
        let next_role = route_c(&topo, loc, dst);
        let next_idx = chan_of(loc, next_role, stride);
        if self.chans[next_idx].len() >= cap_of_c(&self.config, next_role, stride) {
            self.stats.blocked_hops += 1;
            if self.observe {
                self.links[src_idx].blocked += 1;
            }
            return;
        }
        let mut p = self.chans[src_idx].pop_front().expect("head checked");
        p.moved_at = self.now;
        if self.chans[src_idx].is_empty() {
            self.clear_active_slot(slot);
        }
        self.chans[next_idx].push_back(p);
        if next_role != stride - 1 && self.chans[next_idx].len() == 1 {
            self.mark_active(loc, next_role);
        }
        self.note_push(next_idx);
    }

    /// The post-guard body of [`Network::tick`] (`now` already advanced,
    /// fabric known non-empty), shared by the serial tick and the fallback
    /// paths of [`tick_domains`](Fabric::tick_domains).
    fn tick_body(&mut self) {
        let move_slots = self.config.topo.move_slots();
        let dense_cost = (self.node_count() * move_slots) as u64;
        let mut visited: u64 = 0;
        if self.dense_scan {
            for slot in 0..self.node_count() * move_slots {
                self.move_head(slot);
            }
            visited = dense_cost;
        } else {
            // Iterate set bits in ascending slot order. The word is re-read
            // after each move with a strictly-above mask: a move can set a
            // *later* bit in the current word (a packet entering a channel
            // the dense scan had not reached yet), which must be visited
            // this cycle exactly as the dense scan would — while moves into
            // already-passed slots stay unvisited until next cycle, again
            // exactly like the dense scan.
            for w in 0..self.active.len() {
                let mut bits = self.active[w];
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    self.move_head(w * 64 + b as usize);
                    visited += 1;
                    bits = self.active[w] & ((!0u64 << b) << 1);
                }
            }
        }
        self.stats.scan.scanned_channels += visited;
        self.stats.scan.skipped_work += dense_cost - visited;
    }

    /// One cycle of the fabric, executed across spatial domains in parallel,
    /// **bit-identical to [`Network::tick`]** — state, behavioural stats, and
    /// the [`ScanStats`](crate::ScanStats) effort meters all end up
    /// byte-equal at any thread count.
    ///
    /// `bounds` is an ascending node partition (`bounds[0] == 0`,
    /// `bounds.last() == node_count()`); domain `d` owns nodes
    /// `bounds[d]..bounds[d + 1]` and all their channels. The partition is
    /// topology-agnostic: conflict components are computed over the actual
    /// channel graph, so wrap links (torus/ring) and long-range links
    /// (fully-connected) simply produce more boundary components.
    ///
    /// # How identity is kept
    ///
    /// A serial pre-pass walks the tick-start frontier (every head packet
    /// still carries `moved_at < now`, so each occupied slot's single
    /// possible move `src → tgt` is known before anything mutates) and
    /// unions the touched channels into *conflict components*. Channels in
    /// different components share no capacity checks, no pops, and no
    /// pushes this cycle, so components execute independently; each worker
    /// replays its component's slots in ascending order with the same
    /// mid-scan re-activation rule as the serial word remask (a move that
    /// activates a *later* slot queues it for this cycle; earlier slots wait
    /// for the next one). Components whose channels sit in one domain run
    /// as that domain's task; components spanning domains form one extra
    /// "boundary" task — scheduling only, the outcome is order-free because
    /// components are disjoint. Frontier-bitmap words are shared across
    /// domains, so workers buffer bit updates and the merge applies all
    /// clears, then all sets (within one tick a slot can go clear→set but
    /// never set→clear: a just-moved packet cannot move again).
    ///
    /// Falls back to the serial body (identical by definition) when the
    /// dense-scan cross-check or per-link observability is on, or when
    /// fewer than two tasks have work.
    pub fn tick_domains(&mut self, bounds: &[usize], scratch: &mut FabricTickScratch) {
        self.now += 1;
        if self.in_flight == 0 {
            return;
        }
        let domains = bounds.len().saturating_sub(1);
        if self.dense_scan || self.observe || domains < 2 {
            self.tick_body();
            return;
        }
        debug_assert_eq!(bounds[0], 0);
        debug_assert_eq!(*bounds.last().expect("non-empty bounds"), self.node_count());

        scratch.prepare(self.chans.len(), domains);
        let FabricTickScratch {
            ref mut moves,
            ref mut parent,
            ref mut dom_min,
            ref mut dom_max,
            ref mut chan_epoch,
            epoch,
            ref mut touched,
            ref mut groups,
            ref mut worklists,
            ref mut deltas,
            ref mut claims,
        } = *scratch;

        let topo = self.config.topo;
        let (stride, move_slots, ports) = (topo.stride(), topo.move_slots(), topo.ports());

        // Pre-pass: the single possible move of every initially-active slot.
        for (w, &word) in self.active.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let slot = w * 64 + b;
                let node = slot / move_slots;
                let role = role_of_rank(slot % move_slots, ports);
                let src = chan_of(node, role, stride);
                let Some(head) = self.chans[src].front() else {
                    debug_assert!(false, "frontier bit set on empty channel");
                    continue;
                };
                debug_assert!(head.moved_at < self.now, "head already moved this cycle");
                let loc = target_c(&topo, node, role);
                let tgt_role = route_c(&topo, loc, head.msg.dest().index());
                let tgt = chan_of(loc, tgt_role, stride);
                moves.push((slot as u32, src as u32, tgt as u32));
            }
        }

        // Conflict components over the touched channels.
        for &(_, src, tgt) in moves.iter() {
            for c in [src, tgt] {
                let i = c as usize;
                if chan_epoch[i] != epoch {
                    chan_epoch[i] = epoch;
                    parent[i] = c;
                    let d = dom_of(bounds, i / stride);
                    dom_min[i] = d;
                    dom_max[i] = d;
                    touched.push(c);
                }
            }
            let (ra, rb) = (uf_find(parent, src), uf_find(parent, tgt));
            if ra != rb {
                parent[rb as usize] = ra;
                dom_min[ra as usize] = dom_min[ra as usize].min(dom_min[rb as usize]);
                dom_max[ra as usize] = dom_max[ra as usize].max(dom_max[rb as usize]);
            }
        }

        // Task assignment: single-domain components → that domain's task;
        // domain-spanning components → the boundary task (index `domains`).
        let task_of = |parent: &mut [u32], dom_min: &[u32], dom_max: &[u32], c: u32| {
            let r = uf_find(parent, c) as usize;
            if dom_min[r] == dom_max[r] {
                dom_min[r] as usize
            } else {
                domains
            }
        };
        for &(slot, src, _) in moves.iter() {
            worklists[task_of(parent, dom_min, dom_max, src)].push(slot);
        }
        if worklists.iter().filter(|w| !w.is_empty()).count() < 2 {
            // Everything collapsed into one task (often the boundary task on
            // tiny fabrics): the parallel machinery would only add overhead.
            worklists.iter_mut().for_each(Vec::clear);
            self.tick_body();
            return;
        }
        for &c in touched.iter() {
            groups[task_of(parent, dom_min, dom_max, c)].push(c);
        }
        for g in groups.iter_mut() {
            g.sort_unstable();
        }

        let cfg = self.config;
        let now = self.now;
        let split = split_groups(&mut self.chans, groups, claims)
            .expect("conflict components are disjoint by construction");
        let mut tasks: Vec<TickTask<'_>> = split
            .into_iter()
            .zip(worklists.iter_mut())
            .zip(deltas.iter_mut())
            .map(|((chans, worklist), delta)| TickTask {
                chans,
                worklist,
                delta,
            })
            .collect();
        run_tasks(&mut tasks, |_, t| exec_worklist(&cfg, now, t));
        drop(tasks);

        // Deterministic merge, in task order. Every slot belongs to exactly
        // one task's delta, and within a tick its bit history is one of
        // {clear}, {set}, {clear then set} — so applying all clears before
        // all sets reproduces the serial final bitmap.
        let dense_cost = (self.node_count() * move_slots) as u64;
        let mut visited: u64 = 0;
        for d in deltas.iter() {
            visited += d.visited;
            self.stats.blocked_hops += d.blocked;
        }
        for d in deltas.iter() {
            for &slot in &d.clears {
                self.active[slot as usize / 64] &= !(1u64 << (slot % 64));
            }
        }
        for d in deltas.iter() {
            for &slot in &d.sets {
                self.active[slot as usize / 64] |= 1u64 << (slot % 64);
            }
        }
        self.stats.scan.scanned_channels += visited;
        self.stats.scan.skipped_work += dense_cost - visited;
        for wl in worklists.iter_mut() {
            wl.clear();
        }
        for d in deltas.iter_mut() {
            d.clear();
        }
    }

    /// Splits the fabric into per-domain injection/ejection views for the
    /// machine simulator's parallel cycle. Domain `d` of `bounds` receives
    /// exclusive access to its nodes' channels; counters accumulate into a
    /// per-range delta that [`absorb_inject_deltas`](Fabric::absorb_inject_deltas)
    /// or [`absorb_eject_deltas`](Fabric::absorb_eject_deltas) folds back in
    /// domain order, reproducing the serial ascending-node scan byte for
    /// byte. Requires per-link observability to be off.
    pub fn split_node_ranges(&mut self, bounds: &[usize]) -> Vec<FabricRange<'_>> {
        debug_assert!(!self.observe, "ranges do not maintain per-link counters");
        debug_assert_eq!(bounds[0], 0);
        debug_assert_eq!(*bounds.last().expect("non-empty bounds"), self.node_count());
        let stride = self.config.topo.stride();
        let total_nodes = self.node_count();
        let now = self.now;
        let cfg = self.config;
        let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
        let mut chans: &mut [VecDeque<Packet>] = self.chans.as_mut_slice();
        for w in bounds.windows(2) {
            let take = (w[1] - w[0]) * stride;
            let rest = chans;
            let (head, tail) = rest.split_at_mut(take);
            chans = tail;
            out.push(FabricRange {
                cfg,
                now,
                total_nodes,
                lo: w[0],
                chans: head,
                delta: FabricRangeDelta::default(),
            });
        }
        out
    }

    /// Folds injection-phase deltas back into the fabric, in domain order.
    /// The in-flight high-water mark is re-armed once at the end of the
    /// phase, which equals the serial per-inject maximum because in-flight
    /// only grows during injection.
    pub fn absorb_inject_deltas(&mut self, deltas: impl IntoIterator<Item = FabricRangeDelta>) {
        for d in deltas {
            debug_assert_eq!(d.delivered, 0, "inject-phase delta carries ejections");
            self.stats.injected += d.injected;
            self.stats.inject_refusals += d.refusals;
            self.stats.bad_dest += d.bad_dest;
            self.in_flight = usize::try_from(self.in_flight as i64 + d.in_flight)
                .expect("in-flight count cannot go negative");
            for &slot in &d.marks {
                self.active[slot as usize / 64] |= 1u64 << (slot % 64);
            }
        }
        self.stats.in_flight_hwm = self.stats.in_flight_hwm.max(self.in_flight);
    }

    /// Folds ejection-phase deltas back into the fabric, in domain order.
    pub fn absorb_eject_deltas(&mut self, deltas: impl IntoIterator<Item = FabricRangeDelta>) {
        for d in deltas {
            debug_assert_eq!(d.injected, 0, "eject-phase delta carries injections");
            debug_assert!(d.marks.is_empty(), "ejection never marks the frontier");
            self.stats.delivered += d.delivered;
            self.stats.total_latency += d.total_latency;
            self.stats.latency_hist.merge(&d.hist);
            self.in_flight = usize::try_from(self.in_flight as i64 + d.in_flight)
                .expect("in-flight count cannot go negative");
        }
    }
}

fn uf_find(parent: &mut [u32], mut c: u32) -> u32 {
    loop {
        let p = parent[c as usize];
        if p == c {
            return c;
        }
        // Path halving keeps the pre-pass near-linear.
        let g = parent[p as usize];
        parent[c as usize] = g;
        c = g;
    }
}

/// Reusable workspace for [`Fabric::tick_domains`]: the pre-pass move list,
/// the union-find over touched channels, per-task worklists/channel groups,
/// and per-task effect buffers. One instance per machine amortizes every
/// allocation across cycles.
#[derive(Default)]
pub struct FabricTickScratch {
    moves: Vec<(u32, u32, u32)>,
    parent: Vec<u32>,
    dom_min: Vec<u32>,
    dom_max: Vec<u32>,
    chan_epoch: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
    groups: Vec<Vec<u32>>,
    worklists: Vec<Vec<u32>>,
    deltas: Vec<FabricTickDelta>,
    claims: SlotClaims,
}

impl FabricTickScratch {
    /// Creates an empty workspace; it sizes itself on first use.
    pub fn new() -> FabricTickScratch {
        FabricTickScratch::default()
    }

    fn prepare(&mut self, chan_count: usize, domains: usize) {
        if self.parent.len() < chan_count {
            self.parent.resize(chan_count, 0);
            self.dom_min.resize(chan_count, 0);
            self.dom_max.resize(chan_count, 0);
            self.chan_epoch.resize(chan_count, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.chan_epoch.fill(0);
            self.epoch = 1;
        }
        self.moves.clear();
        self.touched.clear();
        let tasks = domains + 1;
        for g in &mut self.groups {
            g.clear();
        }
        self.groups.resize_with(tasks, Vec::new);
        self.groups.truncate(tasks);
        for w in &mut self.worklists {
            w.clear();
        }
        self.worklists.resize_with(tasks, Vec::new);
        self.worklists.truncate(tasks);
        for d in &mut self.deltas {
            d.clear();
        }
        self.deltas.resize_with(tasks, FabricTickDelta::default);
        self.deltas.truncate(tasks);
    }
}

/// Effects one tick task buffers instead of applying to shared state.
#[derive(Default)]
struct FabricTickDelta {
    visited: u64,
    blocked: u64,
    clears: Vec<u32>,
    sets: Vec<u32>,
}

impl FabricTickDelta {
    fn clear(&mut self) {
        self.visited = 0;
        self.blocked = 0;
        self.clears.clear();
        self.sets.clear();
    }
}

/// One task's working set: exclusive access to its component channels, its
/// slot worklist (mutated by mid-scan re-activations), and its delta.
struct TickTask<'a> {
    chans: GroupMut<'a, VecDeque<Packet>>,
    worklist: &'a mut Vec<u32>,
    delta: &'a mut FabricTickDelta,
}

/// Replays one task's slots exactly as the serial hot scan would visit them:
/// ascending order, with a move that activates a strictly-later slot
/// inserting that slot into the remaining (sorted) worklist — the mirror of
/// the serial scan's strictly-above word remask.
fn exec_worklist(cfg: &FabricConfig, now: u64, t: &mut TickTask<'_>) {
    let topo = cfg.topo;
    let (stride, move_slots, ports) = (topo.stride(), topo.move_slots(), topo.ports());
    let mut i = 0;
    while i < t.worklist.len() {
        let slot = t.worklist[i] as usize;
        i += 1;
        t.delta.visited += 1;
        let node = slot / move_slots;
        let role = role_of_rank(slot % move_slots, ports);
        let src = chan_of(node, role, stride) as u32;
        let Some(head) = t.chans.get(src).front() else {
            debug_assert!(false, "worklist slot on empty channel");
            continue;
        };
        if head.moved_at >= now {
            // A re-activation visit: the packet arrived earlier this cycle.
            continue;
        }
        let loc = target_c(&topo, node, role);
        let tgt_role = route_c(&topo, loc, head.msg.dest().index());
        let tgt = chan_of(loc, tgt_role, stride) as u32;
        if t.chans.get(tgt).len() >= cap_of_c(cfg, tgt_role, stride) {
            t.delta.blocked += 1;
            continue;
        }
        let mut p = t.chans.get_mut(src).pop_front().expect("head checked");
        p.moved_at = now;
        if t.chans.get(src).is_empty() {
            t.delta.clears.push(slot as u32);
        }
        let tgt_chan = t.chans.get_mut(tgt);
        tgt_chan.push_back(p);
        let became_active = tgt_chan.len() == 1;
        if tgt_role != stride - 1 && became_active {
            let t_slot = (loc * move_slots + rank_of_role(tgt_role, ports)) as u32;
            t.delta.sets.push(t_slot);
            if t_slot as usize > slot {
                // Visited this cycle by the serial scan; queue it. It cannot
                // already be pending: activation means the channel was empty.
                match t.worklist[i..].binary_search(&t_slot) {
                    Ok(_) => debug_assert!(false, "activated slot already queued"),
                    Err(pos) => t.worklist.insert(i + pos, t_slot),
                }
            }
        }
    }
}

/// Per-range counters accumulated by [`FabricRange`] operations; opaque to
/// callers, who hand them back to the fabric's absorb methods.
#[derive(Default)]
pub struct FabricRangeDelta {
    injected: u64,
    refusals: u64,
    bad_dest: u64,
    in_flight: i64,
    delivered: u64,
    total_latency: u64,
    hist: LatencyHist,
    marks: Vec<u32>,
}

/// Exclusive injection/ejection access to one spatial domain's channels,
/// produced by [`Fabric::split_node_ranges`]. Mirrors the serial
/// [`Network`] entry points byte for byte, buffering shared-counter updates
/// into a [`FabricRangeDelta`].
pub struct FabricRange<'a> {
    cfg: FabricConfig,
    now: u64,
    total_nodes: usize,
    lo: usize,
    chans: &'a mut [VecDeque<Packet>],
    delta: FabricRangeDelta,
}

impl FabricRange<'_> {
    /// Number of nodes attached to the whole fabric (not just this range) —
    /// the destination validity domain, as in [`Network::node_count`].
    pub fn node_count(&self) -> usize {
        self.total_nodes
    }

    fn local(&self, node: usize, role: usize) -> usize {
        let stride = self.cfg.topo.stride();
        debug_assert!(node >= self.lo && (node - self.lo) * stride < self.chans.len());
        (node - self.lo) * stride + role
    }

    /// Offers a message for injection at `src` (a node of this range);
    /// identical semantics to [`Network::inject`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Network::inject`]: `Refused` on a full entry buffer,
    /// `BadDest` for a destination outside the fabric.
    pub fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        if msg.dest().index() >= self.total_nodes {
            self.delta.bad_dest += 1;
            return Err(InjectError::BadDest(msg));
        }
        let idx = self.local(src.index(), INJECT_ROLE);
        if self.chans[idx].len() >= self.cfg.inject_capacity {
            self.delta.refusals += 1;
            return Err(InjectError::Refused(msg));
        }
        self.chans[idx].push_back(Packet {
            msg,
            injected_at: self.now,
            moved_at: self.now,
        });
        if self.chans[idx].len() == 1 {
            let topo = self.cfg.topo;
            let slot = src.index() * topo.move_slots() + rank_of_role(INJECT_ROLE, topo.ports());
            self.delta.marks.push(slot as u32);
        }
        self.delta.in_flight += 1;
        self.delta.injected += 1;
        Ok(())
    }

    /// The message ready for delivery at `dst` this cycle, if any; identical
    /// semantics to [`Network::peek_eject`].
    pub fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        self.chans[self.local(dst.index(), self.cfg.topo.stride() - 1)]
            .front()
            .map(|p| &p.msg)
    }

    /// Removes and returns the message ready at `dst`; identical semantics
    /// to [`Network::eject`].
    pub fn eject(&mut self, dst: NodeId) -> Option<Message> {
        let idx = self.local(dst.index(), self.cfg.topo.stride() - 1);
        let p = self.chans[idx].pop_front()?;
        self.delta.in_flight -= 1;
        self.delta.delivered += 1;
        let latency = self.now - p.injected_at;
        self.delta.total_latency += latency;
        self.delta.hist.record(latency);
        Some(p.msg)
    }

    /// Consumes the range, releasing its channel borrow and yielding the
    /// buffered counters for the fabric's absorb methods.
    pub fn into_delta(self) -> FabricRangeDelta {
        self.delta
    }
}

impl Network for Fabric {
    fn node_count(&self) -> usize {
        self.config.topo.nodes()
    }

    fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        if msg.dest().index() >= self.node_count() {
            self.stats.bad_dest += 1;
            return Err(InjectError::BadDest(msg));
        }
        let idx = self.chan_index(src.index(), INJECT_ROLE);
        if self.chans[idx].len() >= self.config.inject_capacity {
            self.stats.inject_refusals += 1;
            return Err(InjectError::Refused(msg));
        }
        self.chans[idx].push_back(Packet {
            msg,
            injected_at: self.now,
            moved_at: self.now,
        });
        if self.chans[idx].len() == 1 {
            self.mark_active(src.index(), INJECT_ROLE);
        }
        self.in_flight += 1;
        self.stats.injected += 1;
        self.stats.in_flight_hwm = self.stats.in_flight_hwm.max(self.in_flight);
        self.note_push(idx);
        Ok(())
    }

    fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        self.chans[self.chan_index(dst.index(), self.eject_role())]
            .front()
            .map(|p| &p.msg)
    }

    fn eject(&mut self, dst: NodeId) -> Option<Message> {
        let idx = self.chan_index(dst.index(), self.eject_role());
        let p = self.chans[idx].pop_front()?;
        self.in_flight -= 1;
        self.stats.record_delivery(self.now - p.injected_at);
        Some(p.msg)
    }

    fn tick(&mut self) {
        self.now += 1;
        // An empty fabric has nothing to move; returning here keeps the
        // scan counters identical between the naive loop and the quiescence
        // fast-forward (which never ticks an empty fabric).
        if self.in_flight == 0 {
            return;
        }
        self.tick_body();
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcni_isa::MsgType;

    fn msg(dst: u16, tag: u32) -> Message {
        Message::to(
            NodeId::new(dst),
            [0, tag, 0, 0, 0],
            MsgType::new(2).unwrap(),
        )
    }

    fn drain(net: &mut Fabric, dst: u16, budget: usize) -> Vec<u32> {
        let mut got = Vec::new();
        for _ in 0..budget {
            net.tick();
            while let Some(m) = net.eject(NodeId::new(dst)) {
                got.push(m.words[1]);
            }
        }
        got
    }

    #[test]
    fn delivers_across_the_mesh() {
        let mut net = Fabric::new(FabricConfig::new(4, 4));
        net.inject(NodeId::new(0), msg(15, 42)).unwrap();
        let got = drain(&mut net, 15, 32);
        assert_eq!(got, vec![42]);
        assert_eq!(net.in_flight(), 0);
        // Path length 0→(3,3) is 6 hops + inject/eject stages.
        assert!(net.stats().mean_latency().unwrap() >= 6.0);
    }

    #[test]
    fn delivers_on_every_topology() {
        for topo in [
            TopologyKind::mesh(4, 4),
            TopologyKind::torus(4, 4),
            TopologyKind::ring(16),
            TopologyKind::full(16),
        ] {
            let mut net = Fabric::new(FabricConfig::of(topo));
            net.inject(NodeId::new(1), msg(15, 42)).unwrap();
            let got = drain(&mut net, 15, 40);
            assert_eq!(got, vec![42], "{}", topo.name());
            assert_eq!(net.in_flight(), 0, "{}", topo.name());
        }
    }

    #[test]
    fn torus_wrap_beats_the_mesh_corner_to_corner() {
        let run = |cfg: FabricConfig| {
            let mut net = Fabric::new(cfg);
            net.inject(NodeId::new(0), msg(63, 9)).unwrap();
            let got = drain(&mut net, 63, 64);
            assert_eq!(got, vec![9]);
            net.stats().mean_latency().unwrap()
        };
        let mesh = run(FabricConfig::new(8, 8));
        let torus = run(FabricConfig::torus(8, 8));
        assert!(
            torus < mesh,
            "wrap links must shorten the corner route ({torus} vs {mesh})"
        );
    }

    #[test]
    fn self_send() {
        let mut net = Fabric::new(FabricConfig::new(2, 2));
        net.inject(NodeId::new(2), msg(2, 7)).unwrap();
        assert_eq!(drain(&mut net, 2, 4), vec![7]);
    }

    #[test]
    fn point_to_point_order_preserved() {
        for topo in [
            TopologyKind::mesh(3, 3),
            TopologyKind::torus(3, 3),
            TopologyKind::ring(9),
            TopologyKind::full(9),
        ] {
            let mut net = Fabric::new(FabricConfig::of(topo));
            for tag in 0..8 {
                // Inject as fast as the buffer allows, draining on refusal.
                let mut m = msg(8, tag);
                loop {
                    match net.inject(NodeId::new(0), m) {
                        Ok(()) => break,
                        Err(e) => {
                            m = e.into_message();
                            net.tick();
                        }
                    }
                }
            }
            let got = drain(&mut net, 8, 64);
            assert_eq!(got, (0..8).collect::<Vec<_>>(), "{}", topo.name());
        }
    }

    #[test]
    fn backpressure_reaches_the_injector() {
        // Nobody ejects at node 1: the eject buffer, the link, and finally
        // the injection buffer at node 0 all fill, and inject starts failing.
        let cfg = FabricConfig::new(2, 1);
        let total_buffering = cfg.eject_capacity + cfg.channel_capacity + cfg.inject_capacity;
        let mut net = Fabric::new(cfg);
        let mut refused = false;
        for tag in 0..(total_buffering as u32 + 8) {
            if net.inject(NodeId::new(0), msg(1, tag)).is_err() {
                refused = true;
                break;
            }
            net.tick();
        }
        assert!(refused, "backpressure must eventually refuse injection");
        assert!(net.stats().blocked_hops > 0);
        // Releasing the receiver drains everything (no deadlock).
        let got = drain(&mut net, 1, 128);
        assert_eq!(got.len() as u64, net.stats().delivered);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn one_packet_per_link_per_cycle() {
        // Two packets injected together at node 0 toward node 1 must arrive
        // on different cycles (link bandwidth is one per cycle).
        let mut net = Fabric::new(FabricConfig::new(2, 1));
        net.inject(NodeId::new(0), msg(1, 1)).unwrap();
        net.inject(NodeId::new(0), msg(1, 2)).unwrap();
        let mut arrivals = Vec::new();
        for t in 1..10u64 {
            net.tick();
            while let Some(m) = net.eject(NodeId::new(1)) {
                arrivals.push((t, m.words[1]));
            }
        }
        assert_eq!(arrivals.len(), 2);
        assert!(
            arrivals[0].0 < arrivals[1].0,
            "serialized over the link: {arrivals:?}"
        );
    }

    #[test]
    fn all_pairs_deliver() {
        for topo in [
            TopologyKind::mesh(3, 3),
            TopologyKind::torus(3, 3),
            TopologyKind::ring(9),
            TopologyKind::full(9),
        ] {
            let mut net = Fabric::new(FabricConfig::of(topo));
            let n = net.node_count() as u16;
            let mut expected = 0u64;
            for s in 0..n {
                for d in 0..n {
                    // Drain continuously so buffers never wedge the test.
                    let mut m = msg(d, u32::from(s) * 100 + u32::from(d));
                    loop {
                        match net.inject(NodeId::new(s), m) {
                            Ok(()) => break,
                            Err(e) => {
                                m = e.into_message();
                                net.tick();
                                for node in 0..n {
                                    while net.eject(NodeId::new(node)).is_some() {}
                                }
                            }
                        }
                    }
                    expected += 1;
                }
            }
            for _ in 0..256 {
                net.tick();
                for node in 0..n {
                    while net.eject(NodeId::new(node)).is_some() {}
                }
            }
            assert_eq!(net.stats().delivered, expected, "{}", topo.name());
            assert_eq!(net.in_flight(), 0, "{}", topo.name());
        }
    }

    #[test]
    fn misaddressed_message_is_a_typed_error() {
        let mut net = Fabric::new(FabricConfig::new(2, 2));
        let m = msg(9, 0);
        match net.inject(NodeId::new(0), m) {
            Err(InjectError::BadDest(back)) => assert_eq!(back, m),
            other => panic!("expected BadDest, got {other:?}"),
        }
        assert_eq!(net.stats().bad_dest, 1);
        assert_eq!(net.stats().injected, 0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn link_stats_track_occupancy_and_blocking() {
        let cfg = FabricConfig::new(2, 1);
        let mut net = Fabric::new(cfg);
        net.set_observe(true);
        assert!(net.observe());
        // Fill node 1's eject buffer by never draining it.
        for tag in 0..16u32 {
            let _ = net.inject(NodeId::new(0), msg(1, tag));
            net.tick();
        }
        let by_key = |reports: &[LinkReport], node: usize, dir: &str| -> LinkStats {
            reports
                .iter()
                .find(|r| r.node == node && r.dir == dir)
                .expect("channel present")
                .stats
        };
        let reports = net.link_stats();
        assert_eq!(reports.len(), 2 * cfg.topo.stride());
        // The stalled receiver's eject buffer hit capacity, and the link
        // feeding it recorded blocked head-of-line moves.
        assert_eq!(by_key(&reports, 1, "eject").hwm, cfg.eject_capacity);
        assert!(by_key(&reports, 0, "east").blocked > 0);
        // Per-link blocked counts decompose the aggregate counter.
        let total: u64 = reports.iter().map(|r| r.stats.blocked).sum();
        assert_eq!(total, net.stats().blocked_hops);
        // Nothing travels west in this workload.
        assert_eq!(by_key(&reports, 1, "west").hwm, 0);
    }

    #[test]
    fn link_stats_use_topology_port_names() {
        let mut net = Fabric::new(FabricConfig::ring(4));
        net.set_observe(true);
        let _ = net.inject(NodeId::new(0), msg(1, 1));
        net.tick();
        let reports = net.link_stats();
        assert_eq!(reports.len(), 4 * 6);
        let names: Vec<&str> = reports.iter().take(6).map(|r| r.dir).collect();
        assert_eq!(names, ["inject", "cw0", "cw1", "ccw0", "ccw1", "eject"]);
    }

    /// The hot-set frontier and the dense scan must move exactly the same
    /// packets in the same order under sustained mixed traffic (including
    /// hops into already-scanned slots), differing only in the effort
    /// counters — on every topology, wrap links included.
    #[test]
    fn hot_set_scan_matches_dense_scan() {
        for topo in [
            TopologyKind::mesh(4, 3),
            TopologyKind::torus(4, 3),
            TopologyKind::ring(12),
            TopologyKind::full(12),
        ] {
            let run = |dense: bool| -> (Vec<(u16, u32)>, NetStats) {
                let mut net = Fabric::new(FabricConfig::of(topo));
                net.set_dense_scan(dense);
                assert_eq!(net.dense_scan(), dense);
                let n = net.node_count() as u64;
                let mut got = Vec::new();
                let mut x = 0x1234_5678_9abc_def0u64;
                for step in 0..600u32 {
                    for k in 0..3u32 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let src = ((x >> 33) % n) as u16;
                        let dst = ((x >> 13) % n) as u16;
                        let _ = net.inject(NodeId::new(src), msg(dst, step * 4 + k));
                    }
                    net.tick();
                    // Drain only intermittently so eject buffers back up and
                    // blocked moves happen on both scans.
                    if step % 3 == 0 {
                        for d in 0..n as u16 {
                            while let Some(m) = net.eject(NodeId::new(d)) {
                                got.push((d, m.words[1]));
                            }
                        }
                    }
                }
                for _ in 0..200 {
                    net.tick();
                    for d in 0..n as u16 {
                        while let Some(m) = net.eject(NodeId::new(d)) {
                            got.push((d, m.words[1]));
                        }
                    }
                }
                assert_eq!(net.in_flight(), 0, "everything drained");
                (got, net.stats())
            };
            let (hot, hs) = run(false);
            let (dense, ds) = run(true);
            let name = topo.name();
            assert_eq!(hot, dense, "{name}: delivery order must be bit-identical");
            assert_eq!(hs, ds, "{name}: behavioural stats must match");
            assert!(hs.scan.skipped_work > 0, "{name}: frontier must save work");
            assert_eq!(ds.scan.skipped_work, 0, "{name}: dense scan skips nothing");
            assert!(hs.scan.scanned_channels < ds.scan.scanned_channels);
            // Both modes account for the same dense cost over the same ticks.
            assert_eq!(
                hs.scan.scanned_channels + hs.scan.skipped_work,
                ds.scan.scanned_channels + ds.scan.skipped_work,
            );
        }
    }

    /// `tick_domains` must be bit-identical to the serial `tick` — including
    /// the scan effort meters, since the parallel path replays exactly the
    /// serial visit multiset — under sustained mixed traffic with blocked
    /// moves and mid-cycle re-activations, at several domain counts, on
    /// every topology (wrap links make boundary components common).
    #[test]
    fn tick_domains_matches_serial_tick() {
        for topo in [
            TopologyKind::mesh(4, 3),
            TopologyKind::torus(4, 3),
            TopologyKind::ring(12),
            TopologyKind::full(12),
        ] {
            let run = |domains: usize| -> (Vec<(u16, u32)>, NetStats, crate::ScanStats) {
                let mut net = Fabric::new(FabricConfig::of(topo));
                let n = net.node_count();
                let bounds: Vec<usize> = tcni_util::par::domain_bounds(n, domains);
                let mut scratch = FabricTickScratch::new();
                let mut got = Vec::new();
                let mut x = 0x1234_5678_9abc_def0u64;
                for step in 0..600u32 {
                    for k in 0..3u32 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let src = ((x >> 33) % n as u64) as u16;
                        let dst = ((x >> 13) % n as u64) as u16;
                        let _ = net.inject(NodeId::new(src), msg(dst, step * 4 + k));
                    }
                    if domains == 0 {
                        net.tick();
                    } else {
                        net.tick_domains(&bounds, &mut scratch);
                    }
                    if step % 3 == 0 {
                        for d in 0..n as u16 {
                            while let Some(m) = net.eject(NodeId::new(d)) {
                                got.push((d, m.words[1]));
                            }
                        }
                    }
                }
                for _ in 0..200 {
                    if domains == 0 {
                        net.tick();
                    } else {
                        net.tick_domains(&bounds, &mut scratch);
                    }
                    for d in 0..n as u16 {
                        while let Some(m) = net.eject(NodeId::new(d)) {
                            got.push((d, m.words[1]));
                        }
                    }
                }
                assert_eq!(net.in_flight(), 0, "everything drained");
                (got, net.stats(), net.stats().scan)
            };
            tcni_util::par::set_threads(3);
            let (serial, serial_stats, serial_scan) = run(0);
            for domains in [1, 2, 3, 5, 12] {
                let name = topo.name();
                let (par, par_stats, par_scan) = run(domains);
                assert_eq!(serial, par, "{name} domains={domains}: delivery order");
                assert_eq!(serial_stats, par_stats, "{name} domains={domains}: stats");
                // Stronger than the hot-vs-dense pin: the parallel scan
                // replays the same visits, so even the effort meters must be
                // byte-equal.
                assert_eq!(serial_scan, par_scan, "{name} domains={domains}: scan");
            }
            tcni_util::par::set_threads(0);
        }
    }

    /// The per-domain inject/eject ranges plus delta absorption must match
    /// the serial `Network` entry points byte for byte.
    #[test]
    fn node_ranges_match_serial_inject_and_eject() {
        let drive = |split: bool| -> (Vec<(u16, u32)>, NetStats) {
            let mut net = Fabric::new(FabricConfig::new(3, 2));
            let n = net.node_count();
            let bounds = [0usize, 2, 4, n];
            let mut got = Vec::new();
            let mut x = 0x0dd0_beef_1234_5678u64;
            for step in 0..400u32 {
                // Injection phase: every node offers one message; node 5
                // sometimes offers one with an invalid destination.
                if split {
                    let mut ranges = net.split_node_ranges(&bounds);
                    for (d, range) in ranges.iter_mut().enumerate() {
                        for node in bounds[d]..bounds[d + 1] {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            // Hot-spot node 0 half the time so backpressure
                            // reaches the injectors and refusals happen.
                            let dst = if x & 1 == 0 {
                                0
                            } else {
                                ((x >> 23) % (n as u64 + 1)) as u16
                            };
                            let _ = range.inject(NodeId::new(node as u16), msg(dst, step));
                        }
                    }
                    let deltas: Vec<FabricRangeDelta> =
                        ranges.into_iter().map(FabricRange::into_delta).collect();
                    net.absorb_inject_deltas(deltas);
                } else {
                    for node in 0..n {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let dst = if x & 1 == 0 {
                            0
                        } else {
                            ((x >> 23) % (n as u64 + 1)) as u16
                        };
                        let _ = net.inject(NodeId::new(node as u16), msg(dst, step));
                    }
                }
                net.tick();
                // Ejection phase: drain every node, intermittently, so the
                // hot-spot eject buffer backs up in between.
                if step % 5 == 0 {
                    if split {
                        let mut ranges = net.split_node_ranges(&bounds);
                        for (d, range) in ranges.iter_mut().enumerate() {
                            for node in bounds[d]..bounds[d + 1] {
                                while range.peek_eject(NodeId::new(node as u16)).is_some() {
                                    let m = range.eject(NodeId::new(node as u16)).unwrap();
                                    got.push((node as u16, m.words[1]));
                                }
                            }
                        }
                        let deltas: Vec<FabricRangeDelta> =
                            ranges.into_iter().map(FabricRange::into_delta).collect();
                        net.absorb_eject_deltas(deltas);
                    } else {
                        for node in 0..n {
                            while net.peek_eject(NodeId::new(node as u16)).is_some() {
                                let m = net.eject(NodeId::new(node as u16)).unwrap();
                                got.push((node as u16, m.words[1]));
                            }
                        }
                    }
                }
            }
            (got, net.stats())
        };
        let (serial, serial_stats) = drive(false);
        let (split, split_stats) = drive(true);
        assert_eq!(serial, split, "delivery stream");
        assert_eq!(
            serial_stats, split_stats,
            "stats (hwm, bad_dest, refusals included)"
        );
        assert!(split_stats.bad_dest > 0, "the sweep exercised BadDest");
        assert!(
            split_stats.inject_refusals > 0,
            "the sweep exercised Refused"
        );
    }

    /// Ticks of an empty fabric cost (and count) nothing — the property
    /// that keeps scan counters identical under the quiescence fast-forward.
    #[test]
    fn empty_ticks_count_no_scan_work() {
        let mut net = Fabric::new(FabricConfig::new(4, 4));
        for _ in 0..100 {
            net.tick();
        }
        assert_eq!(net.stats().scan.scanned_channels, 0);
        assert_eq!(net.stats().scan.skipped_work, 0);
        net.inject(NodeId::new(0), msg(15, 1)).unwrap();
        let got = drain(&mut net, 15, 32);
        assert_eq!(got, vec![1]);
        let s = net.stats().scan;
        assert!(s.scanned_channels > 0, "occupied slots were visited");
        assert!(s.skipped_work > 0, "idle slots were not");
    }

    #[test]
    fn link_stats_empty_when_not_observing() {
        let mut net = Fabric::new(FabricConfig::new(2, 2));
        net.inject(NodeId::new(0), msg(3, 1)).unwrap();
        for _ in 0..8 {
            net.tick();
        }
        assert!(net.link_stats().is_empty());
    }
}
