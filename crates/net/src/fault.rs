//! Deterministic fault injection over an existing fabric.
//!
//! The paper's protocol machinery (§3.4) assumes a reliable network; real
//! fabrics stall, drop, duplicate, and corrupt. [`FaultyFabric`] wraps either
//! base fabric (via [`NetworkKind`]) and applies a seeded SplitMix64 fault
//! schedule at the injection and ejection boundaries:
//!
//! * **drop** — an accepted injection is silently discarded: the sender
//!   believes it was sent, the fabric never carries it;
//! * **duplicate** — an accepted injection is followed by a second identical
//!   copy (point-to-point ordering of the base fabric keeps it adjacent);
//! * **corrupt** — one bit of `m1..m4` flips before injection (`m0`, and with
//!   it the architected destination, is spared: corruption models data-word
//!   errors, not misrouting);
//! * **stall** — a node's inject or eject port goes dark for a configured
//!   number of cycles (injections are refused like congestion; deliverable
//!   messages stay hidden in the fabric).
//!
//! Every decision comes from two private SplitMix64 streams (per-message and
//! per-port), so a schedule is a pure function of the seed and the call
//! sequence: two same-seed runs fault identically. All rates are per-mille;
//! a zero-rate wrapper is an observably exact pass-through (tested below),
//! which is what lets the fault-free paper models stay bit-identical.

use tcni_check::Rng;
use tcni_core::{Message, NodeId, MSG_WORDS};

use crate::stats::NetStats;
use crate::{InjectError, Network, NetworkKind};

/// Per-mille fault rates plus the schedule seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the fault schedule (two same-seed schedules are identical).
    pub seed: u64,
    /// Per-mille probability an accepted injection is dropped.
    pub drop_pm: u32,
    /// Per-mille probability an accepted injection is duplicated.
    pub duplicate_pm: u32,
    /// Per-mille probability an accepted injection has a payload bit flipped.
    pub corrupt_pm: u32,
    /// Per-mille probability, per node port per cycle, of a transient stall.
    pub stall_pm: u32,
    /// Length of one stall, in cycles.
    pub stall_len: u64,
}

impl FaultConfig {
    /// A schedule with every rate zero: the wrapper is a pass-through.
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_pm: 0,
            duplicate_pm: 0,
            corrupt_pm: 0,
            stall_pm: 0,
            stall_len: 8,
        }
    }

    /// All four fault kinds at the same per-mille rate (the `loadgen`
    /// fault-axis profile), 8-cycle stalls.
    pub fn uniform(seed: u64, rate_pm: u32) -> FaultConfig {
        FaultConfig {
            drop_pm: rate_pm,
            duplicate_pm: rate_pm,
            corrupt_pm: rate_pm,
            stall_pm: rate_pm,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Whether any fault kind has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.drop_pm > 0 || self.duplicate_pm > 0 || self.corrupt_pm > 0 || self.stall_pm > 0
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::quiet(0)
    }
}

fn hit(rng: &mut Rng, rate_pm: u32) -> bool {
    rate_pm > 0 && rng.below(1000) < u64::from(rate_pm)
}

/// A fault-injecting wrapper around a base fabric. See the module docs for
/// the fault model; construct with [`FaultyFabric::new`] and drive through
/// the ordinary [`Network`] trait (usually as a [`NetworkKind::Faulty`]).
pub struct FaultyFabric {
    inner: Box<NetworkKind>,
    config: FaultConfig,
    /// Draws deciding the fate of each offered message.
    msg_rng: Rng,
    /// Draws scheduling port stalls (separate stream: the stall schedule
    /// does not depend on how much traffic was offered).
    port_rng: Rng,
    /// Fabric time, counted in [`tick`](Network::tick)s.
    now: u64,
    /// Per-node cycle (exclusive) until which the inject port is stalled.
    inject_stall: Vec<u64>,
    /// Per-node cycle (exclusive) until which the eject port is stalled.
    eject_stall: Vec<u64>,
    counters: crate::FaultCounters,
    /// Injections refused because the inject port was stalled (folded into
    /// `NetStats::inject_refusals`: a stall is a retryable refusal).
    stall_refusals: u64,
}

impl FaultyFabric {
    /// Wraps `inner` with the given fault schedule.
    ///
    /// # Panics
    ///
    /// Panics if `inner` is itself a faulty fabric (one fault layer models
    /// the physical links; stacking them has no meaning).
    pub fn new(inner: NetworkKind, config: FaultConfig) -> FaultyFabric {
        assert!(
            !matches!(inner, NetworkKind::Faulty(_)),
            "fault layers do not nest"
        );
        let nodes = inner.node_count();
        FaultyFabric {
            inner: Box::new(inner),
            config,
            msg_rng: Rng::new(config.seed),
            port_rng: Rng::new(config.seed ^ 0x5DEE_CE66_D1CE_1ABD),
            now: 0,
            inject_stall: vec![0; nodes],
            eject_stall: vec![0; nodes],
            counters: crate::FaultCounters::default(),
            stall_refusals: 0,
        }
    }

    /// The wrapped base fabric.
    pub fn inner(&self) -> &NetworkKind {
        &self.inner
    }

    /// Mutable access to the wrapped base fabric (used to toggle per-link
    /// observability on a wrapped mesh).
    pub fn inner_mut(&mut self) -> &mut NetworkKind {
        &mut self.inner
    }

    /// The fault schedule.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Fault tallies so far (also surfaced via [`NetStats::faults`]).
    pub fn counters(&self) -> crate::FaultCounters {
        self.counters
    }
}

impl Network for FaultyFabric {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        if self.now < self.inject_stall[src.index()] {
            self.stall_refusals += 1;
            return Err(InjectError::Refused(msg));
        }
        // Nonexistent destinations keep the base fabric's accounting:
        // `bad_dest` rejections are handed back, never faulted away.
        if msg.dest().index() >= self.inner.node_count() {
            return self.inner.inject(src, msg);
        }
        // Fixed draw order per offer, so the schedule is reproducible from
        // the seed and the offer sequence alone.
        let drop = hit(&mut self.msg_rng, self.config.drop_pm);
        let corrupt = hit(&mut self.msg_rng, self.config.corrupt_pm);
        let duplicate = hit(&mut self.msg_rng, self.config.duplicate_pm);
        if drop {
            // Accepted, then lost at the entry link. The sender's view is a
            // successful send; only `faults.dropped` knows better.
            self.counters.dropped += 1;
            return Ok(());
        }
        let mut wire = msg;
        if corrupt {
            let word = 1 + self.msg_rng.index(MSG_WORDS - 1);
            let bit = self.msg_rng.below(32) as u32;
            wire.words[word] ^= 1 << bit;
        }
        match self.inner.inject(src, wire) {
            Ok(()) => {
                if corrupt {
                    self.counters.corrupted += 1;
                }
                if duplicate {
                    // A second copy rides right behind; losing it to a full
                    // entry buffer is not a fault worth counting.
                    if self.inner.inject(src, wire).is_ok() {
                        self.counters.duplicated += 1;
                    }
                }
                Ok(())
            }
            // Hand back the caller's original, not the corrupted copy.
            Err(InjectError::Refused(_)) => Err(InjectError::Refused(msg)),
            Err(InjectError::BadDest(_)) => Err(InjectError::BadDest(msg)),
        }
    }

    fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        if self.now < self.eject_stall[dst.index()] {
            return None;
        }
        self.inner.peek_eject(dst)
    }

    fn eject(&mut self, dst: NodeId) -> Option<Message> {
        if self.now < self.eject_stall[dst.index()] {
            return None;
        }
        self.inner.eject(dst)
    }

    fn tick(&mut self) {
        self.inner.tick();
        self.now += 1;
        if self.config.stall_pm > 0 {
            // Two draws per node per cycle (inject port, eject port),
            // unconditionally: the draw count never depends on outcomes.
            for i in 0..self.inject_stall.len() {
                if hit(&mut self.port_rng, self.config.stall_pm) {
                    if self.now >= self.inject_stall[i] {
                        self.counters.stalls += 1;
                    }
                    self.inject_stall[i] = self.now + self.config.stall_len;
                }
                if hit(&mut self.port_rng, self.config.stall_pm) {
                    if self.now >= self.eject_stall[i] {
                        self.counters.stalls += 1;
                    }
                    self.eject_stall[i] = self.now + self.config.stall_len;
                }
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    fn stats(&self) -> NetStats {
        let mut s = self.inner.stats();
        // Dropped messages were accepted at this boundary; see
        // `FaultCounters` for the conservation law.
        s.injected += self.counters.dropped;
        s.inject_refusals += self.stall_refusals;
        s.faults = self.counters;
        s
    }

    fn next_arrival(&self) -> Option<u64> {
        // Without stalls the eject side is a pass-through, so the base
        // fabric's prediction stands. With stalls a predicted arrival could
        // be hidden, so the machine must tick cycle by cycle.
        if self.config.stall_pm == 0 {
            self.inner.next_arrival()
        } else {
            None
        }
    }

    fn advance(&mut self, cycles: u64) {
        if self.config.stall_pm == 0 {
            // No per-cycle draws to make: bulk-advance the base fabric.
            self.inner.advance(cycles);
            self.now += cycles;
        } else {
            for _ in 0..cycles {
                self.tick();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdealNetwork, Mesh2d, MeshConfig};
    use tcni_isa::MsgType;

    fn msg(dst: u16, tag: u32) -> Message {
        Message::to(
            NodeId::new(dst),
            [0, tag, 0, 0, 0],
            MsgType::new(2).unwrap(),
        )
    }

    fn drain(net: &mut dyn Network, dst: u16, budget: u64) -> Vec<Message> {
        let mut out = Vec::new();
        for _ in 0..budget {
            net.tick();
            while let Some(m) = net.eject(NodeId::new(dst)) {
                out.push(m);
            }
        }
        out
    }

    #[test]
    fn zero_rate_wrapper_is_a_pass_through() {
        let mut plain = IdealNetwork::new(4, 3);
        let mut wrapped = FaultyFabric::new(
            IdealNetwork::new(4, 3).into(),
            FaultConfig::quiet(0xDEAD_BEEF),
        );
        for i in 0..32u32 {
            let m = msg((i % 3) as u16 + 1, i);
            assert_eq!(
                plain.inject(NodeId::new(0), m).is_ok(),
                wrapped.inject(NodeId::new(0), m).is_ok()
            );
        }
        for dst in 1..4u16 {
            assert_eq!(
                drain(&mut plain, dst, 64),
                drain(&mut wrapped, dst, 64),
                "dst {dst}"
            );
        }
        assert_eq!(plain.stats(), wrapped.stats());
        assert!(!wrapped.counters().any());
    }

    #[test]
    fn drops_are_accepted_but_never_delivered() {
        let mut net = FaultyFabric::new(
            IdealNetwork::new(2, 1).into(),
            FaultConfig {
                drop_pm: 1000,
                ..FaultConfig::quiet(1)
            },
        );
        for i in 0..10 {
            net.inject(NodeId::new(0), msg(1, i)).unwrap();
        }
        assert!(drain(&mut net, 1, 16).is_empty());
        let s = net.stats();
        assert_eq!(s.faults.dropped, 10);
        assert_eq!(s.injected, 10, "drops count as accepted injections");
        assert_eq!(s.delivered, 0);
        assert_eq!(s.bad_dest, 0, "fault drops are not bad_dest");
        assert_eq!(
            s.injected - s.faults.dropped,
            s.delivered + net.in_flight() as u64
        );
    }

    #[test]
    fn duplicates_arrive_in_order_and_are_counted() {
        let mut net = FaultyFabric::new(
            IdealNetwork::new(2, 1).into(),
            FaultConfig {
                duplicate_pm: 1000,
                ..FaultConfig::quiet(2)
            },
        );
        for i in 0..5 {
            net.inject(NodeId::new(0), msg(1, i)).unwrap();
        }
        let got = drain(&mut net, 1, 32);
        assert_eq!(net.counters().duplicated, 5);
        assert_eq!(got.len(), 10);
        let tags: Vec<u32> = got.iter().map(|m| m.words[1]).collect();
        assert_eq!(tags, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
        let s = net.stats();
        assert_eq!(s.injected, 10, "duplicate copies count as injections");
        assert_eq!(s.injected - s.faults.dropped, s.delivered);
    }

    #[test]
    fn corruption_flips_one_payload_bit_never_the_dest() {
        let mut net = FaultyFabric::new(
            IdealNetwork::new(4, 1).into(),
            FaultConfig {
                corrupt_pm: 1000,
                ..FaultConfig::quiet(3)
            },
        );
        for i in 0..20 {
            net.inject(NodeId::new(0), msg(2, 0)).unwrap();
            let _ = i;
        }
        let got = drain(&mut net, 2, 64);
        assert_eq!(got.len(), 20, "corruption never loses the message");
        assert_eq!(net.counters().corrupted, 20);
        for m in &got {
            assert_eq!(m.dest(), NodeId::new(2), "dest bits are spared");
            assert_eq!(m.words[0], msg(2, 0).words[0], "m0 is spared");
            let flipped: u32 = m
                .words
                .iter()
                .zip(msg(2, 0).words.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "exactly one bit flips: {m}");
        }
    }

    #[test]
    fn stalls_refuse_injects_and_hide_ejects_transiently() {
        let cfg = FaultConfig {
            stall_pm: 250,
            stall_len: 4,
            ..FaultConfig::quiet(7)
        };
        let mut net = FaultyFabric::new(IdealNetwork::new(2, 1).into(), cfg);
        let mut delivered = 0u32;
        let mut refused = 0u32;
        let mut sent = 0u32;
        for i in 0..400u32 {
            match net.inject(NodeId::new(0), msg(1, i)) {
                Ok(()) => sent += 1,
                Err(InjectError::Refused(_)) => refused += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
            net.tick();
            while net.eject(NodeId::new(1)).is_some() {
                delivered += 1;
            }
        }
        assert!(net.counters().stalls > 0, "schedule produced stalls");
        assert!(refused > 0, "inject-port stalls refuse");
        assert_eq!(net.stats().inject_refusals, u64::from(refused));
        // Nothing is lost to a stall: once ports clear, everything drains.
        delivered += drain(&mut net, 1, 64).len() as u32;
        assert_eq!(delivered, sent);
        assert_eq!(net.stats().faults.dropped, 0);
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let run = |seed: u64| {
            let mut net = FaultyFabric::new(
                Mesh2d::new(MeshConfig::new(2, 2)).into(),
                FaultConfig::uniform(seed, 120),
            );
            for i in 0..200u32 {
                let _ = net.inject(NodeId::new((i % 4) as u16), msg((i % 3) as u16, i));
                net.tick();
                for d in 0..4u16 {
                    while net.eject(NodeId::new(d)).is_some() {}
                }
            }
            (net.counters(), net.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds, different schedule");
    }

    #[test]
    fn bad_dest_passes_through_distinct_from_fault_drops() {
        let mut net = FaultyFabric::new(
            IdealNetwork::new(2, 1).into(),
            FaultConfig {
                drop_pm: 1000,
                ..FaultConfig::quiet(5)
            },
        );
        net.inject(NodeId::new(0), msg(1, 0)).unwrap(); // dropped by fault
        let err = net.inject(NodeId::new(0), msg(9, 1)).unwrap_err();
        assert!(matches!(err, InjectError::BadDest(_)));
        let s = net.stats();
        assert_eq!(s.bad_dest, 1);
        assert_eq!(s.faults.dropped, 1);
    }

    #[test]
    #[should_panic(expected = "fault layers do not nest")]
    fn nesting_is_rejected() {
        let inner = FaultyFabric::new(IdealNetwork::new(2, 1).into(), FaultConfig::quiet(0));
        let _ = FaultyFabric::new(NetworkKind::Faulty(inner), FaultConfig::quiet(0));
    }
}
