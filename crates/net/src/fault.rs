//! Deterministic fault injection over an existing fabric.
//!
//! The paper's protocol machinery (§3.4) assumes a reliable network; real
//! fabrics stall, drop, duplicate, and corrupt. [`FaultyFabric`] wraps either
//! base fabric (via [`NetworkKind`]) and applies a seeded SplitMix64 fault
//! schedule at the injection and ejection boundaries:
//!
//! * **drop** — an accepted injection is silently discarded: the sender
//!   believes it was sent, the fabric never carries it;
//! * **duplicate** — an accepted injection is followed by a second identical
//!   copy (point-to-point ordering of the base fabric keeps it adjacent);
//! * **corrupt** — one bit of `m1..m4` flips before injection (`m0`, and with
//!   it the architected destination, is spared: corruption models data-word
//!   errors, not misrouting);
//! * **stall** — a node's inject or eject port goes dark for a configured
//!   number of cycles (injections are refused like congestion; deliverable
//!   messages stay hidden in the fabric).
//!
//! Every decision comes from private per-node SplitMix64 streams — one
//! per-message stream per inject port, one per-port stream per node for the
//! stall schedule — so a schedule is a pure function of the seed and each
//! node's own call sequence: two same-seed runs fault identically, and the
//! draws of one node never depend on how much traffic *other* nodes
//! offered. That independence is what lets the machine simulator shard a
//! fault-wrapped fabric across worker threads ([`FaultRange`]) and still
//! reproduce the serial schedule bit for bit. All rates are per-mille; a
//! zero-rate wrapper is an observably exact pass-through (tested below),
//! which is what lets the fault-free paper models stay bit-identical.

use tcni_check::Rng;
use tcni_core::{Message, NodeId, MSG_WORDS};

use crate::stats::NetStats;
use crate::{FabricRange, FabricRangeDelta, FabricTickScratch, InjectError, Network, NetworkKind};

/// Per-mille fault rates plus the schedule seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the fault schedule (two same-seed schedules are identical).
    pub seed: u64,
    /// Per-mille probability an accepted injection is dropped.
    pub drop_pm: u32,
    /// Per-mille probability an accepted injection is duplicated.
    pub duplicate_pm: u32,
    /// Per-mille probability an accepted injection has a payload bit flipped.
    pub corrupt_pm: u32,
    /// Per-mille probability, per node port per cycle, of a transient stall.
    pub stall_pm: u32,
    /// Length of one stall, in cycles.
    pub stall_len: u64,
}

impl FaultConfig {
    /// A schedule with every rate zero: the wrapper is a pass-through.
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_pm: 0,
            duplicate_pm: 0,
            corrupt_pm: 0,
            stall_pm: 0,
            stall_len: 8,
        }
    }

    /// All four fault kinds at the same per-mille rate (the `loadgen`
    /// fault-axis profile), 8-cycle stalls.
    pub fn uniform(seed: u64, rate_pm: u32) -> FaultConfig {
        FaultConfig {
            drop_pm: rate_pm,
            duplicate_pm: rate_pm,
            corrupt_pm: rate_pm,
            stall_pm: rate_pm,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Whether any fault kind has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.drop_pm > 0 || self.duplicate_pm > 0 || self.corrupt_pm > 0 || self.stall_pm > 0
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::quiet(0)
    }
}

fn hit(rng: &mut Rng, rate_pm: u32) -> bool {
    rate_pm > 0 && rng.below(1000) < u64::from(rate_pm)
}

/// Salt separating the stall-schedule streams from the per-message streams.
const PORT_SALT: u64 = 0x5DEE_CE66_D1CE_1ABD;

/// Derives node `i`'s private stream seed (the same per-node splitting the
/// workload injectors use).
fn stream_seed(seed: u64, i: usize) -> u64 {
    seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A fault-injecting wrapper around a base fabric. See the module docs for
/// the fault model; construct with [`FaultyFabric::new`] and drive through
/// the ordinary [`Network`] trait (usually as a [`NetworkKind::Faulty`]).
pub struct FaultyFabric {
    inner: Box<NetworkKind>,
    config: FaultConfig,
    /// Per-inject-port streams deciding the fate of each offered message.
    msg_rng: Vec<Rng>,
    /// Per-node streams scheduling port stalls (separate streams: the stall
    /// schedule does not depend on how much traffic was offered).
    port_rng: Vec<Rng>,
    /// Fabric time, counted in [`tick`](Network::tick)s.
    now: u64,
    /// Per-node cycle (exclusive) until which the inject port is stalled.
    inject_stall: Vec<u64>,
    /// Per-node cycle (exclusive) until which the eject port is stalled.
    eject_stall: Vec<u64>,
    counters: crate::FaultCounters,
    /// Injections refused because the inject port was stalled (folded into
    /// `NetStats::inject_refusals`: a stall is a retryable refusal).
    stall_refusals: u64,
}

impl FaultyFabric {
    /// Wraps `inner` with the given fault schedule.
    ///
    /// # Panics
    ///
    /// Panics if `inner` is itself a faulty fabric (one fault layer models
    /// the physical links; stacking them has no meaning).
    pub fn new(inner: NetworkKind, config: FaultConfig) -> FaultyFabric {
        assert!(
            !matches!(inner, NetworkKind::Faulty(_)),
            "fault layers do not nest"
        );
        let nodes = inner.node_count();
        FaultyFabric {
            inner: Box::new(inner),
            config,
            msg_rng: (0..nodes)
                .map(|i| Rng::new(stream_seed(config.seed, i)))
                .collect(),
            port_rng: (0..nodes)
                .map(|i| Rng::new(stream_seed(config.seed ^ PORT_SALT, i)))
                .collect(),
            now: 0,
            inject_stall: vec![0; nodes],
            eject_stall: vec![0; nodes],
            counters: crate::FaultCounters::default(),
            stall_refusals: 0,
        }
    }

    /// The wrapped base fabric.
    pub fn inner(&self) -> &NetworkKind {
        &self.inner
    }

    /// Mutable access to the wrapped base fabric (used to toggle per-link
    /// observability on a wrapped fabric).
    pub fn inner_mut(&mut self) -> &mut NetworkKind {
        &mut self.inner
    }

    /// The fault schedule.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Fault tallies so far (also surfaced via [`NetStats::faults`]).
    pub fn counters(&self) -> crate::FaultCounters {
        self.counters
    }

    /// Rolls the per-node stall schedule forward one cycle. Two draws per
    /// node per cycle (inject port, eject port), unconditionally: the draw
    /// count never depends on outcomes, so the schedule is a pure function
    /// of the seed and the cycle number.
    fn roll_stalls(&mut self) {
        if self.config.stall_pm == 0 {
            return;
        }
        for i in 0..self.inject_stall.len() {
            let rng = &mut self.port_rng[i];
            if hit(rng, self.config.stall_pm) {
                if self.now >= self.inject_stall[i] {
                    self.counters.stalls += 1;
                }
                self.inject_stall[i] = self.now + self.config.stall_len;
            }
            if hit(rng, self.config.stall_pm) {
                if self.now >= self.eject_stall[i] {
                    self.counters.stalls += 1;
                }
                self.eject_stall[i] = self.now + self.config.stall_len;
            }
        }
    }

    /// Splits a switched-fabric-based fault-wrapped network into per-domain
    /// injection/ejection views for the machine simulator's parallel cycle
    /// (the fault-layer analogue of [`Fabric::split_node_ranges`]). Each
    /// range gets exclusive access to its nodes' fabric channels *and* their
    /// private per-message fault streams; the stall tables are shared
    /// read-only (the stall schedule only advances at the tick barrier).
    /// Because every fault draw comes from the drawing node's own stream,
    /// per-domain draw interleavings reproduce the serial ascending-node
    /// schedule bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the wrapped base fabric is not a switched fabric (i.e. it is ideal).
    pub fn split_fault_ranges(&mut self, bounds: &[usize]) -> Vec<FaultRange<'_>> {
        let FaultyFabric {
            inner,
            config,
            msg_rng,
            now,
            inject_stall,
            eject_stall,
            ..
        } = self;
        let fabric = inner
            .as_fabric_mut()
            .expect("fault ranges shard a switched base fabric");
        let mesh_ranges = fabric.split_node_ranges(bounds);
        let inject_stall: &[u64] = inject_stall;
        let eject_stall: &[u64] = eject_stall;
        let mut rngs: &mut [Rng] = msg_rng.as_mut_slice();
        let mut out = Vec::with_capacity(mesh_ranges.len());
        for (w, fabric) in bounds.windows(2).zip(mesh_ranges) {
            let (head, tail) = rngs.split_at_mut(w[1] - w[0]);
            rngs = tail;
            out.push(FaultRange {
                fabric,
                config: *config,
                now: *now,
                lo: w[0],
                msg_rng: head,
                inject_stall,
                eject_stall,
                delta: FaultRangeDelta::default(),
            });
        }
        out
    }

    /// Folds injection-phase range deltas back in, in domain order — the
    /// fault-layer analogue of [`Fabric::absorb_inject_deltas`].
    ///
    /// # Panics
    ///
    /// Panics if the wrapped base fabric is not a switched fabric (i.e. it is ideal).
    pub fn absorb_inject_deltas(&mut self, deltas: impl IntoIterator<Item = FaultRangeDelta>) {
        let FaultyFabric {
            inner,
            counters,
            stall_refusals,
            ..
        } = self;
        let fabric = inner
            .as_fabric_mut()
            .expect("fault ranges shard a switched base fabric");
        fabric.absorb_inject_deltas(deltas.into_iter().map(|d| {
            counters.dropped += d.counters.dropped;
            counters.duplicated += d.counters.duplicated;
            counters.corrupted += d.counters.corrupted;
            counters.stalls += d.counters.stalls;
            *stall_refusals += d.stall_refusals;
            d.fabric
        }));
    }

    /// Folds ejection-phase range deltas back in, in domain order.
    ///
    /// # Panics
    ///
    /// Panics if the wrapped base fabric is not a switched fabric (i.e. it is ideal).
    pub fn absorb_eject_deltas(&mut self, deltas: impl IntoIterator<Item = FaultRangeDelta>) {
        let fabric = self
            .inner
            .as_fabric_mut()
            .expect("fault ranges shard a switched base fabric");
        fabric.absorb_eject_deltas(deltas.into_iter().map(|d| {
            debug_assert!(!d.counters.any(), "eject-phase delta carries faults");
            debug_assert_eq!(d.stall_refusals, 0, "eject-phase delta carries refusals");
            d.fabric
        }));
    }

    /// Advances the wrapped fabric by one cycle with the domain-sharded tick,
    /// then rolls the stall schedule exactly as [`Network::tick`] would.
    ///
    /// # Panics
    ///
    /// Panics if the wrapped base fabric is not a switched fabric (i.e. it is ideal).
    pub fn tick_domains(&mut self, bounds: &[usize], scratch: &mut FabricTickScratch) {
        self.inner
            .as_fabric_mut()
            .expect("fault ranges shard a switched base fabric")
            .tick_domains(bounds, scratch);
        self.now += 1;
        self.roll_stalls();
    }
}

/// Applies one offered message's fault draws (drop → corrupt → duplicate,
/// fixed order) from the source node's private stream, then hands the
/// possibly-corrupted wire copy to `sink` — the one code path shared by the
/// serial [`Network::inject`] and the sharded [`FaultRange::inject`], so
/// the two cannot diverge.
fn faulted_inject(
    rng: &mut Rng,
    config: &FaultConfig,
    counters: &mut crate::FaultCounters,
    src: NodeId,
    msg: Message,
    mut sink: impl FnMut(NodeId, Message) -> Result<(), InjectError>,
) -> Result<(), InjectError> {
    let drop = hit(rng, config.drop_pm);
    let corrupt = hit(rng, config.corrupt_pm);
    let duplicate = hit(rng, config.duplicate_pm);
    if drop {
        // Accepted, then lost at the entry link. The sender's view is a
        // successful send; only `faults.dropped` knows better.
        counters.dropped += 1;
        return Ok(());
    }
    let mut wire = msg;
    if corrupt {
        let word = 1 + rng.index(MSG_WORDS - 1);
        let bit = rng.below(32) as u32;
        wire.words[word] ^= 1 << bit;
    }
    match sink(src, wire) {
        Ok(()) => {
            if corrupt {
                counters.corrupted += 1;
            }
            if duplicate {
                // A second copy rides right behind; losing it to a full
                // entry buffer is not a fault worth counting.
                if sink(src, wire).is_ok() {
                    counters.duplicated += 1;
                }
            }
            Ok(())
        }
        // Hand back the caller's original, not the corrupted copy.
        Err(InjectError::Refused(_)) => Err(InjectError::Refused(msg)),
        Err(InjectError::BadDest(_)) => Err(InjectError::BadDest(msg)),
        Err(InjectError::NotParticipant(_)) => {
            unreachable!("base fabrics do not emit NotParticipant")
        }
    }
}

/// Per-range fault effects buffered by [`FaultRange`] operations; opaque to
/// callers, who hand them back to the fabric's absorb methods.
#[derive(Default)]
pub struct FaultRangeDelta {
    fabric: FabricRangeDelta,
    counters: crate::FaultCounters,
    stall_refusals: u64,
}

/// Exclusive injection/ejection access to one spatial domain of a
/// fault-wrapped fabric, produced by [`FaultyFabric::split_fault_ranges`].
/// Mirrors the serial fault-layer [`Network`] entry points byte for byte:
/// same stall gates, same per-node draw streams, same drop/corrupt/
/// duplicate order — with shared-counter updates buffered into a
/// [`FaultRangeDelta`].
pub struct FaultRange<'a> {
    fabric: FabricRange<'a>,
    config: FaultConfig,
    now: u64,
    lo: usize,
    msg_rng: &'a mut [Rng],
    inject_stall: &'a [u64],
    eject_stall: &'a [u64],
    delta: FaultRangeDelta,
}

impl FaultRange<'_> {
    /// Number of nodes attached to the whole fabric (not just this range).
    pub fn node_count(&self) -> usize {
        self.fabric.node_count()
    }

    /// Offers a message for injection at `src` (a node of this range);
    /// identical semantics to the serial fault-layer [`Network::inject`].
    ///
    /// # Errors
    ///
    /// Exactly as the serial path: `Refused` on a stalled port or full
    /// entry buffer, `BadDest` for a destination outside the fabric.
    pub fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        if self.now < self.inject_stall[src.index()] {
            self.delta.stall_refusals += 1;
            return Err(InjectError::Refused(msg));
        }
        if msg.dest().index() >= self.fabric.node_count() {
            return self.fabric.inject(src, msg);
        }
        let rng = &mut self.msg_rng[src.index() - self.lo];
        let fabric = &mut self.fabric;
        faulted_inject(
            rng,
            &self.config,
            &mut self.delta.counters,
            src,
            msg,
            |s, m| fabric.inject(s, m),
        )
    }

    /// The message ready for delivery at `dst` this cycle, if any; identical
    /// semantics to the serial fault-layer [`Network::peek_eject`].
    pub fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        if self.now < self.eject_stall[dst.index()] {
            return None;
        }
        self.fabric.peek_eject(dst)
    }

    /// Removes and returns the message ready at `dst`; identical semantics
    /// to the serial fault-layer [`Network::eject`].
    pub fn eject(&mut self, dst: NodeId) -> Option<Message> {
        if self.now < self.eject_stall[dst.index()] {
            return None;
        }
        self.fabric.eject(dst)
    }

    /// Consumes the range, releasing its borrows and yielding the buffered
    /// effects for the fabric's absorb methods.
    pub fn into_delta(mut self) -> FaultRangeDelta {
        self.delta.fabric = self.fabric.into_delta();
        self.delta
    }
}

impl Network for FaultyFabric {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        if self.now < self.inject_stall[src.index()] {
            self.stall_refusals += 1;
            return Err(InjectError::Refused(msg));
        }
        // Nonexistent destinations keep the base fabric's accounting:
        // `bad_dest` rejections are handed back, never faulted away.
        if msg.dest().index() >= self.inner.node_count() {
            return self.inner.inject(src, msg);
        }
        let FaultyFabric {
            inner,
            config,
            msg_rng,
            counters,
            ..
        } = self;
        faulted_inject(
            &mut msg_rng[src.index()],
            config,
            counters,
            src,
            msg,
            |s, m| inner.inject(s, m),
        )
    }

    fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        if self.now < self.eject_stall[dst.index()] {
            return None;
        }
        self.inner.peek_eject(dst)
    }

    fn eject(&mut self, dst: NodeId) -> Option<Message> {
        if self.now < self.eject_stall[dst.index()] {
            return None;
        }
        self.inner.eject(dst)
    }

    fn tick(&mut self) {
        self.inner.tick();
        self.now += 1;
        self.roll_stalls();
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    fn stats(&self) -> NetStats {
        let mut s = self.inner.stats();
        // Dropped messages were accepted at this boundary; see
        // `FaultCounters` for the conservation law.
        s.injected += self.counters.dropped;
        s.inject_refusals += self.stall_refusals;
        s.faults = self.counters;
        s
    }

    fn next_arrival(&self) -> Option<u64> {
        // Without stalls the eject side is a pass-through, so the base
        // fabric's prediction stands. With stalls a predicted arrival could
        // be hidden, so the machine must tick cycle by cycle.
        if self.config.stall_pm == 0 {
            self.inner.next_arrival()
        } else {
            None
        }
    }

    fn advance(&mut self, cycles: u64) {
        if self.config.stall_pm == 0 {
            // No per-cycle draws to make: bulk-advance the base fabric.
            self.inner.advance(cycles);
            self.now += cycles;
        } else {
            for _ in 0..cycles {
                self.tick();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fabric, FabricConfig, IdealNetwork};
    use tcni_isa::MsgType;

    fn msg(dst: u16, tag: u32) -> Message {
        Message::to(
            NodeId::new(dst),
            [0, tag, 0, 0, 0],
            MsgType::new(2).unwrap(),
        )
    }

    fn drain(net: &mut dyn Network, dst: u16, budget: u64) -> Vec<Message> {
        let mut out = Vec::new();
        for _ in 0..budget {
            net.tick();
            while let Some(m) = net.eject(NodeId::new(dst)) {
                out.push(m);
            }
        }
        out
    }

    #[test]
    fn zero_rate_wrapper_is_a_pass_through() {
        let mut plain = IdealNetwork::new(4, 3);
        let mut wrapped = FaultyFabric::new(
            IdealNetwork::new(4, 3).into(),
            FaultConfig::quiet(0xDEAD_BEEF),
        );
        for i in 0..32u32 {
            let m = msg((i % 3) as u16 + 1, i);
            assert_eq!(
                plain.inject(NodeId::new(0), m).is_ok(),
                wrapped.inject(NodeId::new(0), m).is_ok()
            );
        }
        for dst in 1..4u16 {
            assert_eq!(
                drain(&mut plain, dst, 64),
                drain(&mut wrapped, dst, 64),
                "dst {dst}"
            );
        }
        assert_eq!(plain.stats(), wrapped.stats());
        assert!(!wrapped.counters().any());
    }

    #[test]
    fn drops_are_accepted_but_never_delivered() {
        let mut net = FaultyFabric::new(
            IdealNetwork::new(2, 1).into(),
            FaultConfig {
                drop_pm: 1000,
                ..FaultConfig::quiet(1)
            },
        );
        for i in 0..10 {
            net.inject(NodeId::new(0), msg(1, i)).unwrap();
        }
        assert!(drain(&mut net, 1, 16).is_empty());
        let s = net.stats();
        assert_eq!(s.faults.dropped, 10);
        assert_eq!(s.injected, 10, "drops count as accepted injections");
        assert_eq!(s.delivered, 0);
        assert_eq!(s.bad_dest, 0, "fault drops are not bad_dest");
        assert_eq!(
            s.injected - s.faults.dropped,
            s.delivered + net.in_flight() as u64
        );
    }

    #[test]
    fn duplicates_arrive_in_order_and_are_counted() {
        let mut net = FaultyFabric::new(
            IdealNetwork::new(2, 1).into(),
            FaultConfig {
                duplicate_pm: 1000,
                ..FaultConfig::quiet(2)
            },
        );
        for i in 0..5 {
            net.inject(NodeId::new(0), msg(1, i)).unwrap();
        }
        let got = drain(&mut net, 1, 32);
        assert_eq!(net.counters().duplicated, 5);
        assert_eq!(got.len(), 10);
        let tags: Vec<u32> = got.iter().map(|m| m.words[1]).collect();
        assert_eq!(tags, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
        let s = net.stats();
        assert_eq!(s.injected, 10, "duplicate copies count as injections");
        assert_eq!(s.injected - s.faults.dropped, s.delivered);
    }

    #[test]
    fn corruption_flips_one_payload_bit_never_the_dest() {
        let mut net = FaultyFabric::new(
            IdealNetwork::new(4, 1).into(),
            FaultConfig {
                corrupt_pm: 1000,
                ..FaultConfig::quiet(3)
            },
        );
        for i in 0..20 {
            net.inject(NodeId::new(0), msg(2, 0)).unwrap();
            let _ = i;
        }
        let got = drain(&mut net, 2, 64);
        assert_eq!(got.len(), 20, "corruption never loses the message");
        assert_eq!(net.counters().corrupted, 20);
        for m in &got {
            assert_eq!(m.dest(), NodeId::new(2), "dest bits are spared");
            assert_eq!(m.words[0], msg(2, 0).words[0], "m0 is spared");
            let flipped: u32 = m
                .words
                .iter()
                .zip(msg(2, 0).words.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "exactly one bit flips: {m}");
        }
    }

    #[test]
    fn stalls_refuse_injects_and_hide_ejects_transiently() {
        let cfg = FaultConfig {
            stall_pm: 250,
            stall_len: 4,
            ..FaultConfig::quiet(7)
        };
        let mut net = FaultyFabric::new(IdealNetwork::new(2, 1).into(), cfg);
        let mut delivered = 0u32;
        let mut refused = 0u32;
        let mut sent = 0u32;
        for i in 0..400u32 {
            match net.inject(NodeId::new(0), msg(1, i)) {
                Ok(()) => sent += 1,
                Err(InjectError::Refused(_)) => refused += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
            net.tick();
            while net.eject(NodeId::new(1)).is_some() {
                delivered += 1;
            }
        }
        assert!(net.counters().stalls > 0, "schedule produced stalls");
        assert!(refused > 0, "inject-port stalls refuse");
        assert_eq!(net.stats().inject_refusals, u64::from(refused));
        // Nothing is lost to a stall: once ports clear, everything drains.
        delivered += drain(&mut net, 1, 64).len() as u32;
        assert_eq!(delivered, sent);
        assert_eq!(net.stats().faults.dropped, 0);
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let run = |seed: u64| {
            let mut net = FaultyFabric::new(
                Fabric::new(FabricConfig::new(2, 2)).into(),
                FaultConfig::uniform(seed, 120),
            );
            for i in 0..200u32 {
                let _ = net.inject(NodeId::new((i % 4) as u16), msg((i % 3) as u16, i));
                net.tick();
                for d in 0..4u16 {
                    while net.eject(NodeId::new(d)).is_some() {}
                }
            }
            (net.counters(), net.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds, different schedule");
    }

    #[test]
    fn bad_dest_passes_through_distinct_from_fault_drops() {
        let mut net = FaultyFabric::new(
            IdealNetwork::new(2, 1).into(),
            FaultConfig {
                drop_pm: 1000,
                ..FaultConfig::quiet(5)
            },
        );
        net.inject(NodeId::new(0), msg(1, 0)).unwrap(); // dropped by fault
        let err = net.inject(NodeId::new(0), msg(9, 1)).unwrap_err();
        assert!(matches!(err, InjectError::BadDest(_)));
        let s = net.stats();
        assert_eq!(s.bad_dest, 1);
        assert_eq!(s.faults.dropped, 1);
    }

    #[test]
    fn sharded_ranges_reproduce_the_serial_schedule() {
        // Drive two same-seed fault-wrapped meshes through identical offer
        // sequences — one through the serial Network entry points, one
        // through per-domain FaultRanges — and demand bit-identical
        // deliveries, counters, and stats.
        let build = || {
            FaultyFabric::new(
                Fabric::new(FabricConfig::new(4, 2)).into(),
                FaultConfig::uniform(99, 180),
            )
        };
        let bounds = [0usize, 3, 6, 8];
        let mut serial = build();
        let mut sharded = build();
        let mut scratch = FabricTickScratch::new();
        let mut got_serial = Vec::new();
        let mut got_sharded = Vec::new();
        for cycle in 0..300u32 {
            for i in 0..8u16 {
                let m = msg((i + 1) % 8, cycle * 8 + u32::from(i));
                let _ = serial.inject(NodeId::new(i), m);
            }
            serial.tick();
            for d in 0..8u16 {
                while let Some(m) = serial.eject(NodeId::new(d)) {
                    got_serial.push((d, m));
                }
            }

            let mut deltas = Vec::new();
            for (w, mut range) in bounds.windows(2).zip(sharded.split_fault_ranges(&bounds)) {
                for i in w[0] as u16..w[1] as u16 {
                    let m = msg((i + 1) % 8, cycle * 8 + u32::from(i));
                    let _ = range.inject(NodeId::new(i), m);
                }
                deltas.push(range.into_delta());
            }
            sharded.absorb_inject_deltas(deltas);
            sharded.tick_domains(&bounds, &mut scratch);
            let mut deltas = Vec::new();
            for (w, mut range) in bounds.windows(2).zip(sharded.split_fault_ranges(&bounds)) {
                for d in w[0]..w[1] {
                    while let Some(m) = range.eject(NodeId::new(d as u16)) {
                        got_sharded.push((d as u16, m));
                    }
                }
                deltas.push(range.into_delta());
            }
            sharded.absorb_eject_deltas(deltas);
        }
        assert_eq!(got_serial, got_sharded);
        assert_eq!(serial.counters(), sharded.counters());
        assert_eq!(serial.stats(), sharded.stats());
        assert!(serial.counters().any(), "schedule actually faulted");
    }

    #[test]
    #[should_panic(expected = "fault layers do not nest")]
    fn nesting_is_rejected() {
        let inner = FaultyFabric::new(IdealNetwork::new(2, 1).into(), FaultConfig::quiet(0));
        let _ = FaultyFabric::new(NetworkKind::Faulty(inner), FaultConfig::quiet(0));
    }
}
