//! A 2-D mesh with XY dimension-order routing and finite channel buffers.

use std::collections::VecDeque;

use tcni_core::{Message, NodeId};

use crate::stats::NetStats;
use crate::{InjectError, Network};

/// Configuration for [`Mesh2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh width (columns).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Capacity of each directional link FIFO, in packets.
    pub channel_capacity: usize,
    /// Capacity of each node's injection FIFO.
    pub inject_capacity: usize,
    /// Capacity of each node's ejection FIFO (the buffer the NI drains).
    pub eject_capacity: usize,
}

impl MeshConfig {
    /// A `width × height` mesh with small (4-packet) buffers everywhere —
    /// shallow enough that congestion visibly backs up, as §2.1.1 describes.
    pub fn new(width: usize, height: usize) -> MeshConfig {
        MeshConfig {
            width,
            height,
            channel_capacity: 4,
            inject_capacity: 4,
            eject_capacity: 4,
        }
    }
}

/// Channel roles within a node's router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
enum Dir {
    /// Waiting to enter the network at this node.
    Inject = 0,
    /// On the link from this node to its +x neighbour.
    East = 1,
    /// On the link to the −x neighbour.
    West = 2,
    /// On the link to the +y neighbour.
    North = 3,
    /// On the link to the −y neighbour.
    South = 4,
    /// Arrived; waiting for the NI to drain it.
    Eject = 5,
}

const DIR_COUNT: usize = 6;
const MOVE_ORDER: [Dir; 5] = [Dir::East, Dir::West, Dir::North, Dir::South, Dir::Inject];

/// Number of movable channels per node — every role except Eject, whose
/// packets only leave via [`Network::eject`], never in `tick`.
const MOVE_SLOTS: usize = MOVE_ORDER.len();

/// Position of each movable `Dir` within [`MOVE_ORDER`], indexed by
/// `Dir as usize` (Eject has no rank). Frontier *slots* are numbered
/// `node * MOVE_SLOTS + rank`, so ascending slot order is exactly the dense
/// scan order — the property that makes the hot-set scan bit-identical.
const MOVE_RANK: [usize; DIR_COUNT] = [4, 0, 1, 2, 3, usize::MAX];

/// Display/export names for the six channel roles, indexed by `Dir`.
const DIR_NAMES: [&str; DIR_COUNT] = ["inject", "east", "west", "north", "south", "eject"];

/// Per-channel observability counters (see [`Mesh2d::set_observe`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// High-water mark of the channel FIFO's occupancy, in packets.
    pub hwm: usize,
    /// Head-of-line moves out of this channel that were blocked by a full
    /// downstream buffer.
    pub blocked: u64,
}

/// One channel's stats with its location, as reported by
/// [`Mesh2d::link_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkReport {
    /// The node the channel belongs to.
    pub node: usize,
    /// The channel role (`"inject"`, `"east"`, `"west"`, `"north"`,
    /// `"south"`, `"eject"`).
    pub dir: &'static str,
    /// The counters.
    pub stats: LinkStats,
}

#[derive(Debug)]
struct Packet {
    msg: Message,
    injected_at: u64,
    moved_at: u64,
}

/// A 2-D mesh network: XY (dimension-order) routing, one packet per link per
/// cycle, finite per-channel FIFOs, and backpressure that propagates from a
/// stalled receiver all the way to senders' injection buffers.
///
/// XY routing over per-direction FIFOs is deadlock-free, and because every
/// source/destination pair uses a single deterministic path of FIFOs,
/// point-to-point ordering is preserved (required by SCROLL flits, §2.1.2).
///
/// # Example
///
/// ```
/// use tcni_core::{Message, NodeId};
/// use tcni_isa::MsgType;
/// use tcni_net::{Mesh2d, MeshConfig, Network};
///
/// let mut net = Mesh2d::new(MeshConfig::new(2, 2));
/// let m = Message::to(NodeId::new(3), [0, 0, 0, 0, 0], MsgType::new(2).unwrap());
/// net.inject(NodeId::new(0), m).unwrap();
/// for _ in 0..8 { net.tick(); }
/// assert!(net.eject(NodeId::new(3)).is_some());
/// ```
pub struct Mesh2d {
    config: MeshConfig,
    chans: Vec<VecDeque<Packet>>,
    now: u64,
    in_flight: usize,
    stats: NetStats,
    /// Whether per-link counters are maintained (off by default: the
    /// per-hop updates, while cheap, are not free — see
    /// [`set_observe`](Mesh2d::set_observe)).
    observe: bool,
    links: Vec<LinkStats>,
    /// The active-channel frontier: bit `node * MOVE_SLOTS + rank` is set
    /// iff that movable channel is non-empty. Maintained incrementally on
    /// inject and on every head-of-line move (Eject channels are untracked —
    /// they drain via `eject`, not `tick`). Invariant: in hot-set mode,
    /// `tick` visits exactly the set bits, in ascending slot order.
    active: Vec<u64>,
    /// Cross-check mode: `tick` scans every slot the way the pre-frontier
    /// code did (the frontier is still maintained, just not consulted).
    /// Behaviour is bit-identical either way; only the scan counters differ.
    dense_scan: bool,
}

impl Mesh2d {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or capacity is zero, or if the mesh exceeds
    /// the 256-node address space of [`NodeId`].
    pub fn new(config: MeshConfig) -> Mesh2d {
        assert!(
            config.width > 0 && config.height > 0,
            "mesh dimensions must be non-zero"
        );
        assert!(
            config.width * config.height <= 256,
            "mesh larger than the NodeId address space"
        );
        assert!(
            config.channel_capacity > 0 && config.inject_capacity > 0 && config.eject_capacity > 0,
            "capacities must be non-zero"
        );
        let n = config.width * config.height;
        // Every FIFO is preallocated to its capacity so the steady-state
        // tick/inject path never allocates.
        let cap = |i: usize| match i % DIR_COUNT {
            i if i == Dir::Inject as usize => config.inject_capacity,
            i if i == Dir::Eject as usize => config.eject_capacity,
            _ => config.channel_capacity,
        };
        Mesh2d {
            config,
            chans: (0..n * DIR_COUNT)
                .map(|i| VecDeque::with_capacity(cap(i)))
                .collect(),
            now: 0,
            in_flight: 0,
            stats: NetStats::default(),
            observe: false,
            links: Vec::new(),
            active: vec![0; (n * MOVE_SLOTS).div_ceil(64)],
            dense_scan: false,
        }
    }

    /// Enables or disables the dense-scan cross-check (off by default).
    ///
    /// With it on, `tick` visits every channel of every node like the
    /// pre-frontier simulator did, instead of only the active-set frontier.
    /// Traffic is bit-identical either way (the equivalence suites enforce
    /// this); only the [`ScanStats`](crate::ScanStats) counters differ.
    pub fn set_dense_scan(&mut self, on: bool) {
        self.dense_scan = on;
    }

    /// Whether the dense-scan cross-check is active.
    pub fn dense_scan(&self) -> bool {
        self.dense_scan
    }

    /// Marks the movable channel `(node, dir)` non-empty in the frontier.
    #[inline]
    fn mark_active(&mut self, node: usize, dir: Dir) {
        debug_assert!(dir != Dir::Eject, "eject channels are untracked");
        let slot = node * MOVE_SLOTS + MOVE_RANK[dir as usize];
        self.active[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Clears the frontier bit of slot `slot` (its channel just emptied).
    #[inline]
    fn clear_active_slot(&mut self, slot: usize) {
        self.active[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Enables or disables per-link observability counters.
    ///
    /// When enabled, every channel push updates that channel's occupancy
    /// high-water mark and every blocked head-of-line move increments its
    /// per-channel blocked counter. Disabled (the default), the hot path
    /// carries only a branch on a cold flag and the aggregate [`NetStats`]
    /// are unchanged either way. Enabling mid-run starts the per-link
    /// counters from zero; disabling keeps the counts gathered so far.
    pub fn set_observe(&mut self, on: bool) {
        if on && self.links.is_empty() {
            self.links = vec![LinkStats::default(); self.chans.len()];
        }
        self.observe = on;
    }

    /// Whether per-link counters are being maintained.
    pub fn observe(&self) -> bool {
        self.observe
    }

    /// A snapshot of every channel's counters, in `(node, dir)` order.
    /// Empty unless [`set_observe`](Mesh2d::set_observe) has been called.
    pub fn link_stats(&self) -> Vec<LinkReport> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &stats)| LinkReport {
                node: i / DIR_COUNT,
                dir: DIR_NAMES[i % DIR_COUNT],
                stats,
            })
            .collect()
    }

    fn note_push(&mut self, idx: usize) {
        if self.observe {
            let depth = self.chans[idx].len();
            let link = &mut self.links[idx];
            link.hwm = link.hwm.max(depth);
        }
    }

    /// The mesh configuration.
    pub fn config(&self) -> MeshConfig {
        self.config
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.config.width, node / self.config.width)
    }

    fn chan_index(&self, node: usize, dir: Dir) -> usize {
        node * DIR_COUNT + dir as usize
    }

    fn cap_of(&self, dir: Dir) -> usize {
        match dir {
            Dir::Inject => self.config.inject_capacity,
            Dir::Eject => self.config.eject_capacity,
            _ => self.config.channel_capacity,
        }
    }

    /// The routing decision for a packet *located at* `node`.
    fn route(&self, node: usize, dst: usize) -> Dir {
        let (x, y) = self.coords(node);
        let (dx, dy) = self.coords(dst);
        if dx > x {
            Dir::East
        } else if dx < x {
            Dir::West
        } else if dy > y {
            Dir::North
        } else if dy < y {
            Dir::South
        } else {
            Dir::Eject
        }
    }

    /// The node a packet in `(node, dir)` is located at / heading into.
    fn link_target(&self, node: usize, dir: Dir) -> usize {
        let (x, y) = self.coords(node);
        let (tx, ty) = match dir {
            Dir::East => (x + 1, y),
            Dir::West => (x - 1, y),
            Dir::North => (x, y + 1),
            Dir::South => (x, y - 1),
            Dir::Inject | Dir::Eject => (x, y),
        };
        ty * self.config.width + tx
    }

    /// Occupancy of a node's ejection buffer (for tests and observability).
    pub fn eject_occupancy(&self, node: NodeId) -> usize {
        self.chans[self.chan_index(node.index(), Dir::Eject)].len()
    }

    /// One head-of-line move attempt for frontier slot `slot`, shared by the
    /// hot-set and dense scans. Packets stamped `moved_at == now` have
    /// already hopped this cycle.
    fn move_head(&mut self, slot: usize) {
        let node = slot / MOVE_SLOTS;
        let dir = MOVE_ORDER[slot % MOVE_SLOTS];
        let src_idx = self.chan_index(node, dir);
        let Some(head) = self.chans[src_idx].front() else {
            // Only the dense scan visits empty channels; the frontier
            // guarantees occupancy.
            debug_assert!(self.dense_scan, "frontier bit set on empty channel");
            return;
        };
        if head.moved_at >= self.now {
            return;
        }
        // Location of the packet: for link channels it is the link's
        // far end; for Inject it is the node itself.
        let loc = self.link_target(node, dir);
        let dst = head.msg.dest().index();
        let next_dir = self.route(loc, dst);
        let next_idx = self.chan_index(loc, next_dir);
        if self.chans[next_idx].len() >= self.cap_of(next_dir) {
            self.stats.blocked_hops += 1;
            if self.observe {
                self.links[src_idx].blocked += 1;
            }
            return;
        }
        let mut p = self.chans[src_idx].pop_front().expect("head checked");
        p.moved_at = self.now;
        if self.chans[src_idx].is_empty() {
            self.clear_active_slot(slot);
        }
        self.chans[next_idx].push_back(p);
        if next_dir != Dir::Eject && self.chans[next_idx].len() == 1 {
            self.mark_active(loc, next_dir);
        }
        self.note_push(next_idx);
    }
}

impl Network for Mesh2d {
    fn node_count(&self) -> usize {
        self.config.width * self.config.height
    }

    fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        if msg.dest().index() >= self.node_count() {
            self.stats.bad_dest += 1;
            return Err(InjectError::BadDest(msg));
        }
        let idx = self.chan_index(src.index(), Dir::Inject);
        if self.chans[idx].len() >= self.config.inject_capacity {
            self.stats.inject_refusals += 1;
            return Err(InjectError::Refused(msg));
        }
        self.chans[idx].push_back(Packet {
            msg,
            injected_at: self.now,
            moved_at: self.now,
        });
        if self.chans[idx].len() == 1 {
            self.mark_active(src.index(), Dir::Inject);
        }
        self.in_flight += 1;
        self.stats.injected += 1;
        self.stats.in_flight_hwm = self.stats.in_flight_hwm.max(self.in_flight);
        self.note_push(idx);
        Ok(())
    }

    fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        self.chans[self.chan_index(dst.index(), Dir::Eject)]
            .front()
            .map(|p| &p.msg)
    }

    fn eject(&mut self, dst: NodeId) -> Option<Message> {
        let idx = self.chan_index(dst.index(), Dir::Eject);
        let p = self.chans[idx].pop_front()?;
        self.in_flight -= 1;
        self.stats.record_delivery(self.now - p.injected_at);
        Some(p.msg)
    }

    fn tick(&mut self) {
        self.now += 1;
        // An empty fabric has nothing to move; returning here keeps the
        // scan counters identical between the naive loop and the quiescence
        // fast-forward (which never ticks an empty mesh).
        if self.in_flight == 0 {
            return;
        }
        let dense_cost = (self.node_count() * MOVE_SLOTS) as u64;
        let mut visited: u64 = 0;
        if self.dense_scan {
            for slot in 0..self.node_count() * MOVE_SLOTS {
                self.move_head(slot);
            }
            visited = dense_cost;
        } else {
            // Iterate set bits in ascending slot order. The word is re-read
            // after each move with a strictly-above mask: a move can set a
            // *later* bit in the current word (a packet entering a channel
            // the dense scan had not reached yet), which must be visited
            // this cycle exactly as the dense scan would — while moves into
            // already-passed slots (westward/southward hops) stay unvisited
            // until next cycle, again exactly like the dense scan.
            for w in 0..self.active.len() {
                let mut bits = self.active[w];
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    self.move_head(w * 64 + b as usize);
                    visited += 1;
                    bits = self.active[w] & ((!0u64 << b) << 1);
                }
            }
        }
        self.stats.scan.scanned_channels += visited;
        self.stats.scan.skipped_work += dense_cost - visited;
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcni_isa::MsgType;

    fn msg(dst: u8, tag: u32) -> Message {
        Message::to(
            NodeId::new(dst),
            [0, tag, 0, 0, 0],
            MsgType::new(2).unwrap(),
        )
    }

    fn drain(net: &mut Mesh2d, dst: u8, budget: usize) -> Vec<u32> {
        let mut got = Vec::new();
        for _ in 0..budget {
            net.tick();
            while let Some(m) = net.eject(NodeId::new(dst)) {
                got.push(m.words[1]);
            }
        }
        got
    }

    #[test]
    fn delivers_across_the_mesh() {
        let mut net = Mesh2d::new(MeshConfig::new(4, 4));
        net.inject(NodeId::new(0), msg(15, 42)).unwrap();
        let got = drain(&mut net, 15, 32);
        assert_eq!(got, vec![42]);
        assert_eq!(net.in_flight(), 0);
        // Path length 0→(3,3) is 6 hops + inject/eject stages.
        assert!(net.stats().mean_latency().unwrap() >= 6.0);
    }

    #[test]
    fn self_send() {
        let mut net = Mesh2d::new(MeshConfig::new(2, 2));
        net.inject(NodeId::new(2), msg(2, 7)).unwrap();
        assert_eq!(drain(&mut net, 2, 4), vec![7]);
    }

    #[test]
    fn point_to_point_order_preserved() {
        let mut net = Mesh2d::new(MeshConfig::new(3, 3));
        for tag in 0..8 {
            // Inject as fast as the buffer allows, draining on refusal.
            let mut m = msg(8, tag);
            loop {
                match net.inject(NodeId::new(0), m) {
                    Ok(()) => break,
                    Err(e) => {
                        m = e.into_message();
                        net.tick();
                    }
                }
            }
        }
        let got = drain(&mut net, 8, 64);
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_reaches_the_injector() {
        // Nobody ejects at node 1: the eject buffer, the link, and finally
        // the injection buffer at node 0 all fill, and inject starts failing.
        let cfg = MeshConfig::new(2, 1);
        let total_buffering = cfg.eject_capacity + cfg.channel_capacity + cfg.inject_capacity;
        let mut net = Mesh2d::new(cfg);
        let mut refused = false;
        for tag in 0..(total_buffering as u32 + 8) {
            if net.inject(NodeId::new(0), msg(1, tag)).is_err() {
                refused = true;
                break;
            }
            net.tick();
        }
        assert!(refused, "backpressure must eventually refuse injection");
        assert!(net.stats().blocked_hops > 0);
        // Releasing the receiver drains everything (no deadlock).
        let got = drain(&mut net, 1, 128);
        assert_eq!(got.len() as u64, net.stats().delivered);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn one_packet_per_link_per_cycle() {
        // Two packets injected together at node 0 toward node 1 must arrive
        // on different cycles (link bandwidth is one per cycle).
        let mut net = Mesh2d::new(MeshConfig::new(2, 1));
        net.inject(NodeId::new(0), msg(1, 1)).unwrap();
        net.inject(NodeId::new(0), msg(1, 2)).unwrap();
        let mut arrivals = Vec::new();
        for t in 1..10u64 {
            net.tick();
            while let Some(m) = net.eject(NodeId::new(1)) {
                arrivals.push((t, m.words[1]));
            }
        }
        assert_eq!(arrivals.len(), 2);
        assert!(
            arrivals[0].0 < arrivals[1].0,
            "serialized over the link: {arrivals:?}"
        );
    }

    #[test]
    fn all_pairs_deliver() {
        let mut net = Mesh2d::new(MeshConfig::new(3, 3));
        let n = net.node_count() as u8;
        let mut expected = 0u64;
        for s in 0..n {
            for d in 0..n {
                // Drain continuously so buffers never wedge the test.
                let mut m = msg(d, u32::from(s) * 100 + u32::from(d));
                loop {
                    match net.inject(NodeId::new(s), m) {
                        Ok(()) => break,
                        Err(e) => {
                            m = e.into_message();
                            net.tick();
                            for node in 0..n {
                                while net.eject(NodeId::new(node)).is_some() {}
                            }
                        }
                    }
                }
                expected += 1;
            }
        }
        for _ in 0..256 {
            net.tick();
            for node in 0..n {
                while net.eject(NodeId::new(node)).is_some() {}
            }
        }
        assert_eq!(net.stats().delivered, expected);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn misaddressed_message_is_a_typed_error() {
        let mut net = Mesh2d::new(MeshConfig::new(2, 2));
        let m = msg(9, 0);
        match net.inject(NodeId::new(0), m) {
            Err(InjectError::BadDest(back)) => assert_eq!(back, m),
            other => panic!("expected BadDest, got {other:?}"),
        }
        assert_eq!(net.stats().bad_dest, 1);
        assert_eq!(net.stats().injected, 0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn link_stats_track_occupancy_and_blocking() {
        let cfg = MeshConfig::new(2, 1);
        let mut net = Mesh2d::new(cfg);
        net.set_observe(true);
        assert!(net.observe());
        // Fill node 1's eject buffer by never draining it.
        for tag in 0..16u32 {
            let _ = net.inject(NodeId::new(0), msg(1, tag));
            net.tick();
        }
        let by_key = |reports: &[LinkReport], node: usize, dir: &str| -> LinkStats {
            reports
                .iter()
                .find(|r| r.node == node && r.dir == dir)
                .expect("channel present")
                .stats
        };
        let reports = net.link_stats();
        assert_eq!(reports.len(), 2 * DIR_COUNT);
        // The stalled receiver's eject buffer hit capacity, and the link
        // feeding it recorded blocked head-of-line moves.
        assert_eq!(by_key(&reports, 1, "eject").hwm, cfg.eject_capacity);
        assert!(by_key(&reports, 0, "east").blocked > 0);
        // Per-link blocked counts decompose the aggregate counter.
        let total: u64 = reports.iter().map(|r| r.stats.blocked).sum();
        assert_eq!(total, net.stats().blocked_hops);
        // Nothing travels west in this workload.
        assert_eq!(by_key(&reports, 1, "west").hwm, 0);
    }

    /// The hot-set frontier and the dense scan must move exactly the same
    /// packets in the same order under sustained mixed traffic (including
    /// westward/southward hops into already-scanned slots), differing only
    /// in the effort counters.
    #[test]
    fn hot_set_scan_matches_dense_scan() {
        let run = |dense: bool| -> (Vec<(u8, u32)>, NetStats) {
            let mut net = Mesh2d::new(MeshConfig::new(4, 3));
            net.set_dense_scan(dense);
            assert_eq!(net.dense_scan(), dense);
            let n = net.node_count() as u64;
            let mut got = Vec::new();
            let mut x = 0x1234_5678_9abc_def0u64;
            for step in 0..600u32 {
                for k in 0..3u32 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let src = ((x >> 33) % n) as u8;
                    let dst = ((x >> 13) % n) as u8;
                    let _ = net.inject(NodeId::new(src), msg(dst, step * 4 + k));
                }
                net.tick();
                // Drain only intermittently so eject buffers back up and
                // blocked moves happen on both scans.
                if step % 3 == 0 {
                    for d in 0..n as u8 {
                        while let Some(m) = net.eject(NodeId::new(d)) {
                            got.push((d, m.words[1]));
                        }
                    }
                }
            }
            for _ in 0..200 {
                net.tick();
                for d in 0..n as u8 {
                    while let Some(m) = net.eject(NodeId::new(d)) {
                        got.push((d, m.words[1]));
                    }
                }
            }
            assert_eq!(net.in_flight(), 0, "everything drained");
            (got, net.stats())
        };
        let (hot, hs) = run(false);
        let (dense, ds) = run(true);
        assert_eq!(hot, dense, "delivery order must be bit-identical");
        assert_eq!(hs, ds, "behavioural stats must match (scan excluded)");
        assert!(hs.scan.skipped_work > 0, "the frontier must save work");
        assert_eq!(ds.scan.skipped_work, 0, "dense scan skips nothing");
        assert!(hs.scan.scanned_channels < ds.scan.scanned_channels);
        // Both modes account for the same dense cost over the same ticks.
        assert_eq!(
            hs.scan.scanned_channels + hs.scan.skipped_work,
            ds.scan.scanned_channels + ds.scan.skipped_work,
        );
    }

    /// Ticks of an empty fabric cost (and count) nothing — the property
    /// that keeps scan counters identical under the quiescence fast-forward.
    #[test]
    fn empty_ticks_count_no_scan_work() {
        let mut net = Mesh2d::new(MeshConfig::new(4, 4));
        for _ in 0..100 {
            net.tick();
        }
        assert_eq!(net.stats().scan.scanned_channels, 0);
        assert_eq!(net.stats().scan.skipped_work, 0);
        net.inject(NodeId::new(0), msg(15, 1)).unwrap();
        let got = drain(&mut net, 15, 32);
        assert_eq!(got, vec![1]);
        let s = net.stats().scan;
        assert!(s.scanned_channels > 0, "occupied slots were visited");
        assert!(s.skipped_work > 0, "idle slots were not");
    }

    #[test]
    fn link_stats_empty_when_not_observing() {
        let mut net = Mesh2d::new(MeshConfig::new(2, 2));
        net.inject(NodeId::new(0), msg(3, 1)).unwrap();
        for _ in 0..8 {
            net.tick();
        }
        assert!(net.link_stats().is_empty());
    }
}
