//! A 2-D mesh with XY dimension-order routing and finite channel buffers.

use std::collections::VecDeque;

use tcni_core::{Message, NodeId};
use tcni_util::disjoint::{split_groups, GroupMut, SlotClaims};
use tcni_util::par::run_tasks;

use crate::stats::{LatencyHist, NetStats};
use crate::{InjectError, Network};

/// Configuration for [`Mesh2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh width (columns).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Capacity of each directional link FIFO, in packets.
    pub channel_capacity: usize,
    /// Capacity of each node's injection FIFO.
    pub inject_capacity: usize,
    /// Capacity of each node's ejection FIFO (the buffer the NI drains).
    pub eject_capacity: usize,
}

impl MeshConfig {
    /// A `width × height` mesh with small (4-packet) buffers everywhere —
    /// shallow enough that congestion visibly backs up, as §2.1.1 describes.
    pub fn new(width: usize, height: usize) -> MeshConfig {
        MeshConfig {
            width,
            height,
            channel_capacity: 4,
            inject_capacity: 4,
            eject_capacity: 4,
        }
    }
}

/// Channel roles within a node's router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
enum Dir {
    /// Waiting to enter the network at this node.
    Inject = 0,
    /// On the link from this node to its +x neighbour.
    East = 1,
    /// On the link to the −x neighbour.
    West = 2,
    /// On the link to the +y neighbour.
    North = 3,
    /// On the link to the −y neighbour.
    South = 4,
    /// Arrived; waiting for the NI to drain it.
    Eject = 5,
}

const DIR_COUNT: usize = 6;
const MOVE_ORDER: [Dir; 5] = [Dir::East, Dir::West, Dir::North, Dir::South, Dir::Inject];

/// Number of movable channels per node — every role except Eject, whose
/// packets only leave via [`Network::eject`], never in `tick`.
const MOVE_SLOTS: usize = MOVE_ORDER.len();

/// Position of each movable `Dir` within [`MOVE_ORDER`], indexed by
/// `Dir as usize` (Eject has no rank). Frontier *slots* are numbered
/// `node * MOVE_SLOTS + rank`, so ascending slot order is exactly the dense
/// scan order — the property that makes the hot-set scan bit-identical.
const MOVE_RANK: [usize; DIR_COUNT] = [4, 0, 1, 2, 3, usize::MAX];

/// Display/export names for the six channel roles, indexed by `Dir`.
const DIR_NAMES: [&str; DIR_COUNT] = ["inject", "east", "west", "north", "south", "eject"];

/// Per-channel observability counters (see [`Mesh2d::set_observe`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// High-water mark of the channel FIFO's occupancy, in packets.
    pub hwm: usize,
    /// Head-of-line moves out of this channel that were blocked by a full
    /// downstream buffer.
    pub blocked: u64,
}

/// One channel's stats with its location, as reported by
/// [`Mesh2d::link_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkReport {
    /// The node the channel belongs to.
    pub node: usize,
    /// The channel role (`"inject"`, `"east"`, `"west"`, `"north"`,
    /// `"south"`, `"eject"`).
    pub dir: &'static str,
    /// The counters.
    pub stats: LinkStats,
}

#[derive(Debug)]
struct Packet {
    msg: Message,
    injected_at: u64,
    moved_at: u64,
}

// Routing geometry as free functions of the mesh width, so the parallel
// tick's workers (which cannot hold `&self` while the channel vector is
// split) share the exact decision procedure with the serial methods.

fn coords_w(width: usize, node: usize) -> (usize, usize) {
    (node % width, node / width)
}

/// The routing decision for a packet *located at* `node`.
fn route_w(width: usize, node: usize, dst: usize) -> Dir {
    let (x, y) = coords_w(width, node);
    let (dx, dy) = coords_w(width, dst);
    if dx > x {
        Dir::East
    } else if dx < x {
        Dir::West
    } else if dy > y {
        Dir::North
    } else if dy < y {
        Dir::South
    } else {
        Dir::Eject
    }
}

/// The node a packet in `(node, dir)` is located at / heading into.
fn link_target_w(width: usize, node: usize, dir: Dir) -> usize {
    let (x, y) = coords_w(width, node);
    let (tx, ty) = match dir {
        Dir::East => (x + 1, y),
        Dir::West => (x - 1, y),
        Dir::North => (x, y + 1),
        Dir::South => (x, y - 1),
        Dir::Inject | Dir::Eject => (x, y),
    };
    ty * width + tx
}

fn cap_of_c(config: &MeshConfig, dir: Dir) -> usize {
    match dir {
        Dir::Inject => config.inject_capacity,
        Dir::Eject => config.eject_capacity,
        _ => config.channel_capacity,
    }
}

fn chan_of(node: usize, dir: Dir) -> usize {
    node * DIR_COUNT + dir as usize
}

/// The spatial domain (index into `bounds` windows) that owns `node`.
fn dom_of(bounds: &[usize], node: usize) -> u32 {
    (bounds.partition_point(|&b| b <= node) - 1) as u32
}

/// A 2-D mesh network: XY (dimension-order) routing, one packet per link per
/// cycle, finite per-channel FIFOs, and backpressure that propagates from a
/// stalled receiver all the way to senders' injection buffers.
///
/// XY routing over per-direction FIFOs is deadlock-free, and because every
/// source/destination pair uses a single deterministic path of FIFOs,
/// point-to-point ordering is preserved (required by SCROLL flits, §2.1.2).
///
/// # Example
///
/// ```
/// use tcni_core::{Message, NodeId};
/// use tcni_isa::MsgType;
/// use tcni_net::{Mesh2d, MeshConfig, Network};
///
/// let mut net = Mesh2d::new(MeshConfig::new(2, 2));
/// let m = Message::to(NodeId::new(3), [0, 0, 0, 0, 0], MsgType::new(2).unwrap());
/// net.inject(NodeId::new(0), m).unwrap();
/// for _ in 0..8 { net.tick(); }
/// assert!(net.eject(NodeId::new(3)).is_some());
/// ```
pub struct Mesh2d {
    config: MeshConfig,
    chans: Vec<VecDeque<Packet>>,
    now: u64,
    in_flight: usize,
    stats: NetStats,
    /// Whether per-link counters are maintained (off by default: the
    /// per-hop updates, while cheap, are not free — see
    /// [`set_observe`](Mesh2d::set_observe)).
    observe: bool,
    links: Vec<LinkStats>,
    /// The active-channel frontier: bit `node * MOVE_SLOTS + rank` is set
    /// iff that movable channel is non-empty. Maintained incrementally on
    /// inject and on every head-of-line move (Eject channels are untracked —
    /// they drain via `eject`, not `tick`). Invariant: in hot-set mode,
    /// `tick` visits exactly the set bits, in ascending slot order.
    active: Vec<u64>,
    /// Cross-check mode: `tick` scans every slot the way the pre-frontier
    /// code did (the frontier is still maintained, just not consulted).
    /// Behaviour is bit-identical either way; only the scan counters differ.
    dense_scan: bool,
}

impl Mesh2d {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or capacity is zero, or if the mesh exceeds
    /// [`NodeId`]'s wide-format address space ([`NodeId::MAX_NODES`]).
    pub fn new(config: MeshConfig) -> Mesh2d {
        assert!(
            config.width > 0 && config.height > 0,
            "mesh dimensions must be non-zero"
        );
        assert!(
            config.width * config.height <= NodeId::MAX_NODES,
            "mesh larger than the NodeId address space"
        );
        assert!(
            config.channel_capacity > 0 && config.inject_capacity > 0 && config.eject_capacity > 0,
            "capacities must be non-zero"
        );
        let n = config.width * config.height;
        // Every FIFO is preallocated to its capacity so the steady-state
        // tick/inject path never allocates.
        let cap = |i: usize| match i % DIR_COUNT {
            i if i == Dir::Inject as usize => config.inject_capacity,
            i if i == Dir::Eject as usize => config.eject_capacity,
            _ => config.channel_capacity,
        };
        Mesh2d {
            config,
            chans: (0..n * DIR_COUNT)
                .map(|i| VecDeque::with_capacity(cap(i)))
                .collect(),
            now: 0,
            in_flight: 0,
            stats: NetStats::default(),
            observe: false,
            links: Vec::new(),
            active: vec![0; (n * MOVE_SLOTS).div_ceil(64)],
            dense_scan: false,
        }
    }

    /// Enables or disables the dense-scan cross-check (off by default).
    ///
    /// With it on, `tick` visits every channel of every node like the
    /// pre-frontier simulator did, instead of only the active-set frontier.
    /// Traffic is bit-identical either way (the equivalence suites enforce
    /// this); only the [`ScanStats`](crate::ScanStats) counters differ.
    pub fn set_dense_scan(&mut self, on: bool) {
        self.dense_scan = on;
    }

    /// Whether the dense-scan cross-check is active.
    pub fn dense_scan(&self) -> bool {
        self.dense_scan
    }

    /// Marks the movable channel `(node, dir)` non-empty in the frontier.
    #[inline]
    fn mark_active(&mut self, node: usize, dir: Dir) {
        debug_assert!(dir != Dir::Eject, "eject channels are untracked");
        let slot = node * MOVE_SLOTS + MOVE_RANK[dir as usize];
        self.active[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Clears the frontier bit of slot `slot` (its channel just emptied).
    #[inline]
    fn clear_active_slot(&mut self, slot: usize) {
        self.active[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Enables or disables per-link observability counters.
    ///
    /// When enabled, every channel push updates that channel's occupancy
    /// high-water mark and every blocked head-of-line move increments its
    /// per-channel blocked counter. Disabled (the default), the hot path
    /// carries only a branch on a cold flag and the aggregate [`NetStats`]
    /// are unchanged either way. Enabling mid-run starts the per-link
    /// counters from zero; disabling keeps the counts gathered so far.
    pub fn set_observe(&mut self, on: bool) {
        if on && self.links.is_empty() {
            self.links = vec![LinkStats::default(); self.chans.len()];
        }
        self.observe = on;
    }

    /// Whether per-link counters are being maintained.
    pub fn observe(&self) -> bool {
        self.observe
    }

    /// A snapshot of every channel's counters, in `(node, dir)` order.
    /// Empty unless [`set_observe`](Mesh2d::set_observe) has been called.
    pub fn link_stats(&self) -> Vec<LinkReport> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &stats)| LinkReport {
                node: i / DIR_COUNT,
                dir: DIR_NAMES[i % DIR_COUNT],
                stats,
            })
            .collect()
    }

    fn note_push(&mut self, idx: usize) {
        if self.observe {
            let depth = self.chans[idx].len();
            let link = &mut self.links[idx];
            link.hwm = link.hwm.max(depth);
        }
    }

    /// The mesh configuration.
    pub fn config(&self) -> MeshConfig {
        self.config
    }

    fn chan_index(&self, node: usize, dir: Dir) -> usize {
        chan_of(node, dir)
    }

    fn cap_of(&self, dir: Dir) -> usize {
        cap_of_c(&self.config, dir)
    }

    /// The routing decision for a packet *located at* `node`.
    fn route(&self, node: usize, dst: usize) -> Dir {
        route_w(self.config.width, node, dst)
    }

    /// The node a packet in `(node, dir)` is located at / heading into.
    fn link_target(&self, node: usize, dir: Dir) -> usize {
        link_target_w(self.config.width, node, dir)
    }

    /// Occupancy of a node's ejection buffer (for tests and observability).
    pub fn eject_occupancy(&self, node: NodeId) -> usize {
        self.chans[self.chan_index(node.index(), Dir::Eject)].len()
    }

    /// One head-of-line move attempt for frontier slot `slot`, shared by the
    /// hot-set and dense scans. Packets stamped `moved_at == now` have
    /// already hopped this cycle.
    fn move_head(&mut self, slot: usize) {
        let node = slot / MOVE_SLOTS;
        let dir = MOVE_ORDER[slot % MOVE_SLOTS];
        let src_idx = self.chan_index(node, dir);
        let Some(head) = self.chans[src_idx].front() else {
            // Only the dense scan visits empty channels; the frontier
            // guarantees occupancy.
            debug_assert!(self.dense_scan, "frontier bit set on empty channel");
            return;
        };
        if head.moved_at >= self.now {
            return;
        }
        // Location of the packet: for link channels it is the link's
        // far end; for Inject it is the node itself.
        let loc = self.link_target(node, dir);
        let dst = head.msg.dest().index();
        let next_dir = self.route(loc, dst);
        let next_idx = self.chan_index(loc, next_dir);
        if self.chans[next_idx].len() >= self.cap_of(next_dir) {
            self.stats.blocked_hops += 1;
            if self.observe {
                self.links[src_idx].blocked += 1;
            }
            return;
        }
        let mut p = self.chans[src_idx].pop_front().expect("head checked");
        p.moved_at = self.now;
        if self.chans[src_idx].is_empty() {
            self.clear_active_slot(slot);
        }
        self.chans[next_idx].push_back(p);
        if next_dir != Dir::Eject && self.chans[next_idx].len() == 1 {
            self.mark_active(loc, next_dir);
        }
        self.note_push(next_idx);
    }

    /// The post-guard body of [`Network::tick`] (`now` already advanced,
    /// fabric known non-empty), shared by the serial tick and the fallback
    /// paths of [`tick_domains`](Mesh2d::tick_domains).
    fn tick_body(&mut self) {
        let dense_cost = (self.node_count() * MOVE_SLOTS) as u64;
        let mut visited: u64 = 0;
        if self.dense_scan {
            for slot in 0..self.node_count() * MOVE_SLOTS {
                self.move_head(slot);
            }
            visited = dense_cost;
        } else {
            // Iterate set bits in ascending slot order. The word is re-read
            // after each move with a strictly-above mask: a move can set a
            // *later* bit in the current word (a packet entering a channel
            // the dense scan had not reached yet), which must be visited
            // this cycle exactly as the dense scan would — while moves into
            // already-passed slots (westward/southward hops) stay unvisited
            // until next cycle, again exactly like the dense scan.
            for w in 0..self.active.len() {
                let mut bits = self.active[w];
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    self.move_head(w * 64 + b as usize);
                    visited += 1;
                    bits = self.active[w] & ((!0u64 << b) << 1);
                }
            }
        }
        self.stats.scan.scanned_channels += visited;
        self.stats.scan.skipped_work += dense_cost - visited;
    }

    /// One cycle of the fabric, executed across spatial domains in parallel,
    /// **bit-identical to [`Network::tick`]** — state, behavioural stats, and
    /// the [`ScanStats`](crate::ScanStats) effort meters all end up
    /// byte-equal at any thread count.
    ///
    /// `bounds` is an ascending node partition (`bounds[0] == 0`,
    /// `bounds.last() == node_count()`); domain `d` owns nodes
    /// `bounds[d]..bounds[d + 1]` and all their channels.
    ///
    /// # How identity is kept
    ///
    /// A serial pre-pass walks the tick-start frontier (every head packet
    /// still carries `moved_at < now`, so each occupied slot's single
    /// possible move `src → tgt` is known before anything mutates) and
    /// unions the touched channels into *conflict components*. Channels in
    /// different components share no capacity checks, no pops, and no
    /// pushes this cycle, so components execute independently; each worker
    /// replays its component's slots in ascending order with the same
    /// mid-scan re-activation rule as the serial word remask (a move that
    /// activates a *later* slot queues it for this cycle; earlier slots wait
    /// for the next one). Components whose channels sit in one domain run
    /// as that domain's task; components spanning domains form one extra
    /// "boundary" task — scheduling only, the outcome is order-free because
    /// components are disjoint. Frontier-bitmap words are shared across
    /// domains, so workers buffer bit updates and the merge applies all
    /// clears, then all sets (within one tick a slot can go clear→set but
    /// never set→clear: a just-moved packet cannot move again).
    ///
    /// Falls back to the serial body (identical by definition) when the
    /// dense-scan cross-check or per-link observability is on, or when
    /// fewer than two tasks have work.
    pub fn tick_domains(&mut self, bounds: &[usize], scratch: &mut MeshTickScratch) {
        self.now += 1;
        if self.in_flight == 0 {
            return;
        }
        let domains = bounds.len().saturating_sub(1);
        if self.dense_scan || self.observe || domains < 2 {
            self.tick_body();
            return;
        }
        debug_assert_eq!(bounds[0], 0);
        debug_assert_eq!(*bounds.last().expect("non-empty bounds"), self.node_count());

        scratch.prepare(self.chans.len(), domains);
        let MeshTickScratch {
            ref mut moves,
            ref mut parent,
            ref mut dom_min,
            ref mut dom_max,
            ref mut chan_epoch,
            epoch,
            ref mut touched,
            ref mut groups,
            ref mut worklists,
            ref mut deltas,
            ref mut claims,
        } = *scratch;

        // Pre-pass: the single possible move of every initially-active slot.
        for (w, &word) in self.active.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let slot = w * 64 + b;
                let node = slot / MOVE_SLOTS;
                let dir = MOVE_ORDER[slot % MOVE_SLOTS];
                let src = chan_of(node, dir);
                let Some(head) = self.chans[src].front() else {
                    debug_assert!(false, "frontier bit set on empty channel");
                    continue;
                };
                debug_assert!(head.moved_at < self.now, "head already moved this cycle");
                let loc = link_target_w(self.config.width, node, dir);
                let tgt_dir = route_w(self.config.width, loc, head.msg.dest().index());
                let tgt = chan_of(loc, tgt_dir);
                moves.push((slot as u32, src as u32, tgt as u32));
            }
        }

        // Conflict components over the touched channels.
        for &(_, src, tgt) in moves.iter() {
            for c in [src, tgt] {
                let i = c as usize;
                if chan_epoch[i] != epoch {
                    chan_epoch[i] = epoch;
                    parent[i] = c;
                    let d = dom_of(bounds, i / DIR_COUNT);
                    dom_min[i] = d;
                    dom_max[i] = d;
                    touched.push(c);
                }
            }
            let (ra, rb) = (uf_find(parent, src), uf_find(parent, tgt));
            if ra != rb {
                parent[rb as usize] = ra;
                dom_min[ra as usize] = dom_min[ra as usize].min(dom_min[rb as usize]);
                dom_max[ra as usize] = dom_max[ra as usize].max(dom_max[rb as usize]);
            }
        }

        // Task assignment: single-domain components → that domain's task;
        // domain-spanning components → the boundary task (index `domains`).
        let task_of = |parent: &mut [u32], dom_min: &[u32], dom_max: &[u32], c: u32| {
            let r = uf_find(parent, c) as usize;
            if dom_min[r] == dom_max[r] {
                dom_min[r] as usize
            } else {
                domains
            }
        };
        for &(slot, src, _) in moves.iter() {
            worklists[task_of(parent, dom_min, dom_max, src)].push(slot);
        }
        if worklists.iter().filter(|w| !w.is_empty()).count() < 2 {
            // Everything collapsed into one task (often the boundary task on
            // tiny meshes): the parallel machinery would only add overhead.
            worklists.iter_mut().for_each(Vec::clear);
            self.tick_body();
            return;
        }
        for &c in touched.iter() {
            groups[task_of(parent, dom_min, dom_max, c)].push(c);
        }
        for g in groups.iter_mut() {
            g.sort_unstable();
        }

        let cfg = self.config;
        let now = self.now;
        let split = split_groups(&mut self.chans, groups, claims)
            .expect("conflict components are disjoint by construction");
        let mut tasks: Vec<TickTask<'_>> = split
            .into_iter()
            .zip(worklists.iter_mut())
            .zip(deltas.iter_mut())
            .map(|((chans, worklist), delta)| TickTask {
                chans,
                worklist,
                delta,
            })
            .collect();
        run_tasks(&mut tasks, |_, t| exec_worklist(&cfg, now, t));
        drop(tasks);

        // Deterministic merge, in task order. Every slot belongs to exactly
        // one task's delta, and within a tick its bit history is one of
        // {clear}, {set}, {clear then set} — so applying all clears before
        // all sets reproduces the serial final bitmap.
        let dense_cost = (self.node_count() * MOVE_SLOTS) as u64;
        let mut visited: u64 = 0;
        for d in deltas.iter() {
            visited += d.visited;
            self.stats.blocked_hops += d.blocked;
        }
        for d in deltas.iter() {
            for &slot in &d.clears {
                self.active[slot as usize / 64] &= !(1u64 << (slot % 64));
            }
        }
        for d in deltas.iter() {
            for &slot in &d.sets {
                self.active[slot as usize / 64] |= 1u64 << (slot % 64);
            }
        }
        self.stats.scan.scanned_channels += visited;
        self.stats.scan.skipped_work += dense_cost - visited;
        for wl in worklists.iter_mut() {
            wl.clear();
        }
        for d in deltas.iter_mut() {
            d.clear();
        }
    }

    /// Splits the fabric into per-domain injection/ejection views for the
    /// machine simulator's parallel cycle. Domain `d` of `bounds` receives
    /// exclusive access to its nodes' channels; counters accumulate into a
    /// per-range delta that [`absorb_inject_deltas`](Mesh2d::absorb_inject_deltas)
    /// or [`absorb_eject_deltas`](Mesh2d::absorb_eject_deltas) folds back in
    /// domain order, reproducing the serial ascending-node scan byte for
    /// byte. Requires per-link observability to be off.
    pub fn split_node_ranges(&mut self, bounds: &[usize]) -> Vec<MeshRange<'_>> {
        debug_assert!(!self.observe, "ranges do not maintain per-link counters");
        debug_assert_eq!(bounds[0], 0);
        debug_assert_eq!(*bounds.last().expect("non-empty bounds"), self.node_count());
        let total_nodes = self.node_count();
        let now = self.now;
        let cfg = self.config;
        let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
        let mut chans: &mut [VecDeque<Packet>] = self.chans.as_mut_slice();
        for w in bounds.windows(2) {
            let take = (w[1] - w[0]) * DIR_COUNT;
            let rest = chans;
            let (head, tail) = rest.split_at_mut(take);
            chans = tail;
            out.push(MeshRange {
                cfg,
                now,
                total_nodes,
                lo: w[0],
                chans: head,
                delta: MeshRangeDelta::default(),
            });
        }
        out
    }

    /// Folds injection-phase deltas back into the fabric, in domain order.
    /// The in-flight high-water mark is re-armed once at the end of the
    /// phase, which equals the serial per-inject maximum because in-flight
    /// only grows during injection.
    pub fn absorb_inject_deltas(&mut self, deltas: impl IntoIterator<Item = MeshRangeDelta>) {
        for d in deltas {
            debug_assert_eq!(d.delivered, 0, "inject-phase delta carries ejections");
            self.stats.injected += d.injected;
            self.stats.inject_refusals += d.refusals;
            self.stats.bad_dest += d.bad_dest;
            self.in_flight = usize::try_from(self.in_flight as i64 + d.in_flight)
                .expect("in-flight count cannot go negative");
            for &slot in &d.marks {
                self.active[slot as usize / 64] |= 1u64 << (slot % 64);
            }
        }
        self.stats.in_flight_hwm = self.stats.in_flight_hwm.max(self.in_flight);
    }

    /// Folds ejection-phase deltas back into the fabric, in domain order.
    pub fn absorb_eject_deltas(&mut self, deltas: impl IntoIterator<Item = MeshRangeDelta>) {
        for d in deltas {
            debug_assert_eq!(d.injected, 0, "eject-phase delta carries injections");
            debug_assert!(d.marks.is_empty(), "ejection never marks the frontier");
            self.stats.delivered += d.delivered;
            self.stats.total_latency += d.total_latency;
            self.stats.latency_hist.merge(&d.hist);
            self.in_flight = usize::try_from(self.in_flight as i64 + d.in_flight)
                .expect("in-flight count cannot go negative");
        }
    }
}

fn uf_find(parent: &mut [u32], mut c: u32) -> u32 {
    loop {
        let p = parent[c as usize];
        if p == c {
            return c;
        }
        // Path halving keeps the pre-pass near-linear.
        let g = parent[p as usize];
        parent[c as usize] = g;
        c = g;
    }
}

/// Reusable workspace for [`Mesh2d::tick_domains`]: the pre-pass move list,
/// the union-find over touched channels, per-task worklists/channel groups,
/// and per-task effect buffers. One instance per machine amortizes every
/// allocation across cycles.
#[derive(Default)]
pub struct MeshTickScratch {
    moves: Vec<(u32, u32, u32)>,
    parent: Vec<u32>,
    dom_min: Vec<u32>,
    dom_max: Vec<u32>,
    chan_epoch: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
    groups: Vec<Vec<u32>>,
    worklists: Vec<Vec<u32>>,
    deltas: Vec<MeshTickDelta>,
    claims: SlotClaims,
}

impl MeshTickScratch {
    /// Creates an empty workspace; it sizes itself on first use.
    pub fn new() -> MeshTickScratch {
        MeshTickScratch::default()
    }

    fn prepare(&mut self, chan_count: usize, domains: usize) {
        if self.parent.len() < chan_count {
            self.parent.resize(chan_count, 0);
            self.dom_min.resize(chan_count, 0);
            self.dom_max.resize(chan_count, 0);
            self.chan_epoch.resize(chan_count, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.chan_epoch.fill(0);
            self.epoch = 1;
        }
        self.moves.clear();
        self.touched.clear();
        let tasks = domains + 1;
        for g in &mut self.groups {
            g.clear();
        }
        self.groups.resize_with(tasks, Vec::new);
        self.groups.truncate(tasks);
        for w in &mut self.worklists {
            w.clear();
        }
        self.worklists.resize_with(tasks, Vec::new);
        self.worklists.truncate(tasks);
        for d in &mut self.deltas {
            d.clear();
        }
        self.deltas.resize_with(tasks, MeshTickDelta::default);
        self.deltas.truncate(tasks);
    }
}

/// Effects one tick task buffers instead of applying to shared state.
#[derive(Default)]
struct MeshTickDelta {
    visited: u64,
    blocked: u64,
    clears: Vec<u32>,
    sets: Vec<u32>,
}

impl MeshTickDelta {
    fn clear(&mut self) {
        self.visited = 0;
        self.blocked = 0;
        self.clears.clear();
        self.sets.clear();
    }
}

/// One task's working set: exclusive access to its component channels, its
/// slot worklist (mutated by mid-scan re-activations), and its delta.
struct TickTask<'a> {
    chans: GroupMut<'a, VecDeque<Packet>>,
    worklist: &'a mut Vec<u32>,
    delta: &'a mut MeshTickDelta,
}

/// Replays one task's slots exactly as the serial hot scan would visit them:
/// ascending order, with a move that activates a strictly-later slot
/// inserting that slot into the remaining (sorted) worklist — the mirror of
/// the serial scan's strictly-above word remask.
fn exec_worklist(cfg: &MeshConfig, now: u64, t: &mut TickTask<'_>) {
    let mut i = 0;
    while i < t.worklist.len() {
        let slot = t.worklist[i] as usize;
        i += 1;
        t.delta.visited += 1;
        let node = slot / MOVE_SLOTS;
        let dir = MOVE_ORDER[slot % MOVE_SLOTS];
        let src = chan_of(node, dir) as u32;
        let Some(head) = t.chans.get(src).front() else {
            debug_assert!(false, "worklist slot on empty channel");
            continue;
        };
        if head.moved_at >= now {
            // A re-activation visit: the packet arrived earlier this cycle.
            continue;
        }
        let loc = link_target_w(cfg.width, node, dir);
        let tgt_dir = route_w(cfg.width, loc, head.msg.dest().index());
        let tgt = chan_of(loc, tgt_dir) as u32;
        if t.chans.get(tgt).len() >= cap_of_c(cfg, tgt_dir) {
            t.delta.blocked += 1;
            continue;
        }
        let mut p = t.chans.get_mut(src).pop_front().expect("head checked");
        p.moved_at = now;
        if t.chans.get(src).is_empty() {
            t.delta.clears.push(slot as u32);
        }
        let tgt_chan = t.chans.get_mut(tgt);
        tgt_chan.push_back(p);
        let became_active = tgt_chan.len() == 1;
        if tgt_dir != Dir::Eject && became_active {
            let t_slot = (loc * MOVE_SLOTS + MOVE_RANK[tgt_dir as usize]) as u32;
            t.delta.sets.push(t_slot);
            if t_slot as usize > slot {
                // Visited this cycle by the serial scan; queue it. It cannot
                // already be pending: activation means the channel was empty.
                match t.worklist[i..].binary_search(&t_slot) {
                    Ok(_) => debug_assert!(false, "activated slot already queued"),
                    Err(pos) => t.worklist.insert(i + pos, t_slot),
                }
            }
        }
    }
}

/// Per-range counters accumulated by [`MeshRange`] operations; opaque to
/// callers, who hand them back to the fabric's absorb methods.
#[derive(Default)]
pub struct MeshRangeDelta {
    injected: u64,
    refusals: u64,
    bad_dest: u64,
    in_flight: i64,
    delivered: u64,
    total_latency: u64,
    hist: LatencyHist,
    marks: Vec<u32>,
}

/// Exclusive injection/ejection access to one spatial domain's channels,
/// produced by [`Mesh2d::split_node_ranges`]. Mirrors the serial
/// [`Network`] entry points byte for byte, buffering shared-counter updates
/// into a [`MeshRangeDelta`].
pub struct MeshRange<'a> {
    cfg: MeshConfig,
    now: u64,
    total_nodes: usize,
    lo: usize,
    chans: &'a mut [VecDeque<Packet>],
    delta: MeshRangeDelta,
}

impl MeshRange<'_> {
    /// Number of nodes attached to the whole fabric (not just this range) —
    /// the destination validity domain, as in [`Network::node_count`].
    pub fn node_count(&self) -> usize {
        self.total_nodes
    }

    fn local(&self, node: usize, dir: Dir) -> usize {
        debug_assert!(node >= self.lo && (node - self.lo) * DIR_COUNT < self.chans.len());
        (node - self.lo) * DIR_COUNT + dir as usize
    }

    /// Offers a message for injection at `src` (a node of this range);
    /// identical semantics to [`Network::inject`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Network::inject`]: `Refused` on a full entry buffer,
    /// `BadDest` for a destination outside the fabric.
    pub fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        if msg.dest().index() >= self.total_nodes {
            self.delta.bad_dest += 1;
            return Err(InjectError::BadDest(msg));
        }
        let idx = self.local(src.index(), Dir::Inject);
        if self.chans[idx].len() >= self.cfg.inject_capacity {
            self.delta.refusals += 1;
            return Err(InjectError::Refused(msg));
        }
        self.chans[idx].push_back(Packet {
            msg,
            injected_at: self.now,
            moved_at: self.now,
        });
        if self.chans[idx].len() == 1 {
            let slot = src.index() * MOVE_SLOTS + MOVE_RANK[Dir::Inject as usize];
            self.delta.marks.push(slot as u32);
        }
        self.delta.in_flight += 1;
        self.delta.injected += 1;
        Ok(())
    }

    /// The message ready for delivery at `dst` this cycle, if any; identical
    /// semantics to [`Network::peek_eject`].
    pub fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        self.chans[self.local(dst.index(), Dir::Eject)]
            .front()
            .map(|p| &p.msg)
    }

    /// Removes and returns the message ready at `dst`; identical semantics
    /// to [`Network::eject`].
    pub fn eject(&mut self, dst: NodeId) -> Option<Message> {
        let idx = self.local(dst.index(), Dir::Eject);
        let p = self.chans[idx].pop_front()?;
        self.delta.in_flight -= 1;
        self.delta.delivered += 1;
        let latency = self.now - p.injected_at;
        self.delta.total_latency += latency;
        self.delta.hist.record(latency);
        Some(p.msg)
    }

    /// Consumes the range, releasing its channel borrow and yielding the
    /// buffered counters for the fabric's absorb methods.
    pub fn into_delta(self) -> MeshRangeDelta {
        self.delta
    }
}

impl Network for Mesh2d {
    fn node_count(&self) -> usize {
        self.config.width * self.config.height
    }

    fn inject(&mut self, src: NodeId, msg: Message) -> Result<(), InjectError> {
        if msg.dest().index() >= self.node_count() {
            self.stats.bad_dest += 1;
            return Err(InjectError::BadDest(msg));
        }
        let idx = self.chan_index(src.index(), Dir::Inject);
        if self.chans[idx].len() >= self.config.inject_capacity {
            self.stats.inject_refusals += 1;
            return Err(InjectError::Refused(msg));
        }
        self.chans[idx].push_back(Packet {
            msg,
            injected_at: self.now,
            moved_at: self.now,
        });
        if self.chans[idx].len() == 1 {
            self.mark_active(src.index(), Dir::Inject);
        }
        self.in_flight += 1;
        self.stats.injected += 1;
        self.stats.in_flight_hwm = self.stats.in_flight_hwm.max(self.in_flight);
        self.note_push(idx);
        Ok(())
    }

    fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        self.chans[self.chan_index(dst.index(), Dir::Eject)]
            .front()
            .map(|p| &p.msg)
    }

    fn eject(&mut self, dst: NodeId) -> Option<Message> {
        let idx = self.chan_index(dst.index(), Dir::Eject);
        let p = self.chans[idx].pop_front()?;
        self.in_flight -= 1;
        self.stats.record_delivery(self.now - p.injected_at);
        Some(p.msg)
    }

    fn tick(&mut self) {
        self.now += 1;
        // An empty fabric has nothing to move; returning here keeps the
        // scan counters identical between the naive loop and the quiescence
        // fast-forward (which never ticks an empty mesh).
        if self.in_flight == 0 {
            return;
        }
        self.tick_body();
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcni_isa::MsgType;

    fn msg(dst: u16, tag: u32) -> Message {
        Message::to(
            NodeId::new(dst),
            [0, tag, 0, 0, 0],
            MsgType::new(2).unwrap(),
        )
    }

    fn drain(net: &mut Mesh2d, dst: u16, budget: usize) -> Vec<u32> {
        let mut got = Vec::new();
        for _ in 0..budget {
            net.tick();
            while let Some(m) = net.eject(NodeId::new(dst)) {
                got.push(m.words[1]);
            }
        }
        got
    }

    #[test]
    fn delivers_across_the_mesh() {
        let mut net = Mesh2d::new(MeshConfig::new(4, 4));
        net.inject(NodeId::new(0), msg(15, 42)).unwrap();
        let got = drain(&mut net, 15, 32);
        assert_eq!(got, vec![42]);
        assert_eq!(net.in_flight(), 0);
        // Path length 0→(3,3) is 6 hops + inject/eject stages.
        assert!(net.stats().mean_latency().unwrap() >= 6.0);
    }

    #[test]
    fn self_send() {
        let mut net = Mesh2d::new(MeshConfig::new(2, 2));
        net.inject(NodeId::new(2), msg(2, 7)).unwrap();
        assert_eq!(drain(&mut net, 2, 4), vec![7]);
    }

    #[test]
    fn point_to_point_order_preserved() {
        let mut net = Mesh2d::new(MeshConfig::new(3, 3));
        for tag in 0..8 {
            // Inject as fast as the buffer allows, draining on refusal.
            let mut m = msg(8, tag);
            loop {
                match net.inject(NodeId::new(0), m) {
                    Ok(()) => break,
                    Err(e) => {
                        m = e.into_message();
                        net.tick();
                    }
                }
            }
        }
        let got = drain(&mut net, 8, 64);
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_reaches_the_injector() {
        // Nobody ejects at node 1: the eject buffer, the link, and finally
        // the injection buffer at node 0 all fill, and inject starts failing.
        let cfg = MeshConfig::new(2, 1);
        let total_buffering = cfg.eject_capacity + cfg.channel_capacity + cfg.inject_capacity;
        let mut net = Mesh2d::new(cfg);
        let mut refused = false;
        for tag in 0..(total_buffering as u32 + 8) {
            if net.inject(NodeId::new(0), msg(1, tag)).is_err() {
                refused = true;
                break;
            }
            net.tick();
        }
        assert!(refused, "backpressure must eventually refuse injection");
        assert!(net.stats().blocked_hops > 0);
        // Releasing the receiver drains everything (no deadlock).
        let got = drain(&mut net, 1, 128);
        assert_eq!(got.len() as u64, net.stats().delivered);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn one_packet_per_link_per_cycle() {
        // Two packets injected together at node 0 toward node 1 must arrive
        // on different cycles (link bandwidth is one per cycle).
        let mut net = Mesh2d::new(MeshConfig::new(2, 1));
        net.inject(NodeId::new(0), msg(1, 1)).unwrap();
        net.inject(NodeId::new(0), msg(1, 2)).unwrap();
        let mut arrivals = Vec::new();
        for t in 1..10u64 {
            net.tick();
            while let Some(m) = net.eject(NodeId::new(1)) {
                arrivals.push((t, m.words[1]));
            }
        }
        assert_eq!(arrivals.len(), 2);
        assert!(
            arrivals[0].0 < arrivals[1].0,
            "serialized over the link: {arrivals:?}"
        );
    }

    #[test]
    fn all_pairs_deliver() {
        let mut net = Mesh2d::new(MeshConfig::new(3, 3));
        let n = net.node_count() as u16;
        let mut expected = 0u64;
        for s in 0..n {
            for d in 0..n {
                // Drain continuously so buffers never wedge the test.
                let mut m = msg(d, u32::from(s) * 100 + u32::from(d));
                loop {
                    match net.inject(NodeId::new(s), m) {
                        Ok(()) => break,
                        Err(e) => {
                            m = e.into_message();
                            net.tick();
                            for node in 0..n {
                                while net.eject(NodeId::new(node)).is_some() {}
                            }
                        }
                    }
                }
                expected += 1;
            }
        }
        for _ in 0..256 {
            net.tick();
            for node in 0..n {
                while net.eject(NodeId::new(node)).is_some() {}
            }
        }
        assert_eq!(net.stats().delivered, expected);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn misaddressed_message_is_a_typed_error() {
        let mut net = Mesh2d::new(MeshConfig::new(2, 2));
        let m = msg(9, 0);
        match net.inject(NodeId::new(0), m) {
            Err(InjectError::BadDest(back)) => assert_eq!(back, m),
            other => panic!("expected BadDest, got {other:?}"),
        }
        assert_eq!(net.stats().bad_dest, 1);
        assert_eq!(net.stats().injected, 0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn link_stats_track_occupancy_and_blocking() {
        let cfg = MeshConfig::new(2, 1);
        let mut net = Mesh2d::new(cfg);
        net.set_observe(true);
        assert!(net.observe());
        // Fill node 1's eject buffer by never draining it.
        for tag in 0..16u32 {
            let _ = net.inject(NodeId::new(0), msg(1, tag));
            net.tick();
        }
        let by_key = |reports: &[LinkReport], node: usize, dir: &str| -> LinkStats {
            reports
                .iter()
                .find(|r| r.node == node && r.dir == dir)
                .expect("channel present")
                .stats
        };
        let reports = net.link_stats();
        assert_eq!(reports.len(), 2 * DIR_COUNT);
        // The stalled receiver's eject buffer hit capacity, and the link
        // feeding it recorded blocked head-of-line moves.
        assert_eq!(by_key(&reports, 1, "eject").hwm, cfg.eject_capacity);
        assert!(by_key(&reports, 0, "east").blocked > 0);
        // Per-link blocked counts decompose the aggregate counter.
        let total: u64 = reports.iter().map(|r| r.stats.blocked).sum();
        assert_eq!(total, net.stats().blocked_hops);
        // Nothing travels west in this workload.
        assert_eq!(by_key(&reports, 1, "west").hwm, 0);
    }

    /// The hot-set frontier and the dense scan must move exactly the same
    /// packets in the same order under sustained mixed traffic (including
    /// westward/southward hops into already-scanned slots), differing only
    /// in the effort counters.
    #[test]
    fn hot_set_scan_matches_dense_scan() {
        let run = |dense: bool| -> (Vec<(u16, u32)>, NetStats) {
            let mut net = Mesh2d::new(MeshConfig::new(4, 3));
            net.set_dense_scan(dense);
            assert_eq!(net.dense_scan(), dense);
            let n = net.node_count() as u64;
            let mut got = Vec::new();
            let mut x = 0x1234_5678_9abc_def0u64;
            for step in 0..600u32 {
                for k in 0..3u32 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let src = ((x >> 33) % n) as u16;
                    let dst = ((x >> 13) % n) as u16;
                    let _ = net.inject(NodeId::new(src), msg(dst, step * 4 + k));
                }
                net.tick();
                // Drain only intermittently so eject buffers back up and
                // blocked moves happen on both scans.
                if step % 3 == 0 {
                    for d in 0..n as u16 {
                        while let Some(m) = net.eject(NodeId::new(d)) {
                            got.push((d, m.words[1]));
                        }
                    }
                }
            }
            for _ in 0..200 {
                net.tick();
                for d in 0..n as u16 {
                    while let Some(m) = net.eject(NodeId::new(d)) {
                        got.push((d, m.words[1]));
                    }
                }
            }
            assert_eq!(net.in_flight(), 0, "everything drained");
            (got, net.stats())
        };
        let (hot, hs) = run(false);
        let (dense, ds) = run(true);
        assert_eq!(hot, dense, "delivery order must be bit-identical");
        assert_eq!(hs, ds, "behavioural stats must match (scan excluded)");
        assert!(hs.scan.skipped_work > 0, "the frontier must save work");
        assert_eq!(ds.scan.skipped_work, 0, "dense scan skips nothing");
        assert!(hs.scan.scanned_channels < ds.scan.scanned_channels);
        // Both modes account for the same dense cost over the same ticks.
        assert_eq!(
            hs.scan.scanned_channels + hs.scan.skipped_work,
            ds.scan.scanned_channels + ds.scan.skipped_work,
        );
    }

    /// `tick_domains` must be bit-identical to the serial `tick` — including
    /// the scan effort meters, since the parallel path replays exactly the
    /// serial visit multiset — under sustained mixed traffic with blocked
    /// moves and mid-cycle re-activations, at several domain counts.
    #[test]
    fn tick_domains_matches_serial_tick() {
        let run = |domains: usize| -> (Vec<(u16, u32)>, NetStats, crate::ScanStats) {
            let mut net = Mesh2d::new(MeshConfig::new(4, 3));
            let n = net.node_count();
            let bounds: Vec<usize> = tcni_util::par::domain_bounds(n, domains);
            let mut scratch = MeshTickScratch::new();
            let mut got = Vec::new();
            let mut x = 0x1234_5678_9abc_def0u64;
            for step in 0..600u32 {
                for k in 0..3u32 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let src = ((x >> 33) % n as u64) as u16;
                    let dst = ((x >> 13) % n as u64) as u16;
                    let _ = net.inject(NodeId::new(src), msg(dst, step * 4 + k));
                }
                if domains == 0 {
                    net.tick();
                } else {
                    net.tick_domains(&bounds, &mut scratch);
                }
                if step % 3 == 0 {
                    for d in 0..n as u16 {
                        while let Some(m) = net.eject(NodeId::new(d)) {
                            got.push((d, m.words[1]));
                        }
                    }
                }
            }
            for _ in 0..200 {
                if domains == 0 {
                    net.tick();
                } else {
                    net.tick_domains(&bounds, &mut scratch);
                }
                for d in 0..n as u16 {
                    while let Some(m) = net.eject(NodeId::new(d)) {
                        got.push((d, m.words[1]));
                    }
                }
            }
            assert_eq!(net.in_flight(), 0, "everything drained");
            (got, net.stats(), net.stats().scan)
        };
        tcni_util::par::set_threads(3);
        let (serial, serial_stats, serial_scan) = run(0);
        for domains in [1, 2, 3, 5, 12] {
            let (par, par_stats, par_scan) = run(domains);
            assert_eq!(serial, par, "domains={domains}: delivery order");
            assert_eq!(serial_stats, par_stats, "domains={domains}: stats");
            // Stronger than the hot-vs-dense pin: the parallel scan replays
            // the same visits, so even the effort meters must be byte-equal.
            assert_eq!(serial_scan, par_scan, "domains={domains}: scan meters");
        }
        tcni_util::par::set_threads(0);
    }

    /// The per-domain inject/eject ranges plus delta absorption must match
    /// the serial `Network` entry points byte for byte.
    #[test]
    fn node_ranges_match_serial_inject_and_eject() {
        let drive = |split: bool| -> (Vec<(u16, u32)>, NetStats) {
            let mut net = Mesh2d::new(MeshConfig::new(3, 2));
            let n = net.node_count();
            let bounds = [0usize, 2, 4, n];
            let mut got = Vec::new();
            let mut x = 0x0dd0_beef_1234_5678u64;
            for step in 0..400u32 {
                // Injection phase: every node offers one message; node 5
                // sometimes offers one with an invalid destination.
                if split {
                    let mut ranges = net.split_node_ranges(&bounds);
                    for (d, range) in ranges.iter_mut().enumerate() {
                        for node in bounds[d]..bounds[d + 1] {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            // Hot-spot node 0 half the time so backpressure
                            // reaches the injectors and refusals happen.
                            let dst = if x & 1 == 0 {
                                0
                            } else {
                                ((x >> 23) % (n as u64 + 1)) as u16
                            };
                            let _ = range.inject(NodeId::new(node as u16), msg(dst, step));
                        }
                    }
                    let deltas: Vec<MeshRangeDelta> =
                        ranges.into_iter().map(MeshRange::into_delta).collect();
                    net.absorb_inject_deltas(deltas);
                } else {
                    for node in 0..n {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let dst = if x & 1 == 0 {
                            0
                        } else {
                            ((x >> 23) % (n as u64 + 1)) as u16
                        };
                        let _ = net.inject(NodeId::new(node as u16), msg(dst, step));
                    }
                }
                net.tick();
                // Ejection phase: drain every node, intermittently, so the
                // hot-spot eject buffer backs up in between.
                if step % 5 == 0 {
                    if split {
                        let mut ranges = net.split_node_ranges(&bounds);
                        for (d, range) in ranges.iter_mut().enumerate() {
                            for node in bounds[d]..bounds[d + 1] {
                                while range.peek_eject(NodeId::new(node as u16)).is_some() {
                                    let m = range.eject(NodeId::new(node as u16)).unwrap();
                                    got.push((node as u16, m.words[1]));
                                }
                            }
                        }
                        let deltas: Vec<MeshRangeDelta> =
                            ranges.into_iter().map(MeshRange::into_delta).collect();
                        net.absorb_eject_deltas(deltas);
                    } else {
                        for node in 0..n {
                            while net.peek_eject(NodeId::new(node as u16)).is_some() {
                                let m = net.eject(NodeId::new(node as u16)).unwrap();
                                got.push((node as u16, m.words[1]));
                            }
                        }
                    }
                }
            }
            (got, net.stats())
        };
        let (serial, serial_stats) = drive(false);
        let (split, split_stats) = drive(true);
        assert_eq!(serial, split, "delivery stream");
        assert_eq!(
            serial_stats, split_stats,
            "stats (hwm, bad_dest, refusals included)"
        );
        assert!(split_stats.bad_dest > 0, "the sweep exercised BadDest");
        assert!(
            split_stats.inject_refusals > 0,
            "the sweep exercised Refused"
        );
    }

    /// Ticks of an empty fabric cost (and count) nothing — the property
    /// that keeps scan counters identical under the quiescence fast-forward.
    #[test]
    fn empty_ticks_count_no_scan_work() {
        let mut net = Mesh2d::new(MeshConfig::new(4, 4));
        for _ in 0..100 {
            net.tick();
        }
        assert_eq!(net.stats().scan.scanned_channels, 0);
        assert_eq!(net.stats().scan.skipped_work, 0);
        net.inject(NodeId::new(0), msg(15, 1)).unwrap();
        let got = drain(&mut net, 15, 32);
        assert_eq!(got, vec![1]);
        let s = net.stats().scan;
        assert!(s.scanned_channels > 0, "occupied slots were visited");
        assert!(s.skipped_work > 0, "idle slots were not");
    }

    #[test]
    fn link_stats_empty_when_not_observing() {
        let mut net = Mesh2d::new(MeshConfig::new(2, 2));
        net.inject(NodeId::new(0), msg(3, 1)).unwrap();
        for _ in 0..8 {
            net.tick();
        }
        assert!(net.link_stats().is_empty());
    }
}
