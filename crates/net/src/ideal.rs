//! A contention-free fixed-latency network.

use std::collections::VecDeque;

use tcni_core::{Message, NodeId};

use crate::stats::NetStats;
use crate::{InjectError, Network};

struct InFlight {
    msg: Message,
    arrives_at: u64,
    injected_at: u64,
}

/// An idealised network: every message arrives at its destination exactly
/// `latency` cycles after injection, with unbounded internal buffering and
/// one ejection per node per cycle.
///
/// This matches the methodology of §4.2.1 of the paper, where "the simulator
/// did not model … any network latency" — with `latency = 0` a message sent
/// in one cycle is deliverable in the next simulator phase.
///
/// # Example
///
/// ```
/// use tcni_core::{Message, NodeId};
/// use tcni_isa::MsgType;
/// use tcni_net::{IdealNetwork, Network};
///
/// let mut net = IdealNetwork::new(4, 2);
/// let m = Message::to(NodeId::new(3), [0, 7, 0, 0, 0], MsgType::new(2).unwrap());
/// net.inject(NodeId::new(0), m).unwrap();
/// net.tick();
/// assert!(net.eject(NodeId::new(3)).is_none()); // 1 < latency 2
/// net.tick();
/// assert!(net.eject(NodeId::new(3)).is_some());
/// ```
pub struct IdealNetwork {
    queues: Vec<VecDeque<InFlight>>,
    latency: u64,
    now: u64,
    stats: NetStats,
    in_flight: usize,
}

impl IdealNetwork {
    /// Creates an ideal network over `nodes` nodes with the given delivery
    /// latency in cycles.
    pub fn new(nodes: usize, latency: u64) -> IdealNetwork {
        IdealNetwork {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            latency,
            now: 0,
            stats: NetStats::default(),
            in_flight: 0,
        }
    }

    /// The configured delivery latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    fn deliverable(&self, dst: NodeId) -> bool {
        self.queues[dst.index()]
            .front()
            .is_some_and(|p| p.arrives_at <= self.now)
    }
}

impl Network for IdealNetwork {
    fn node_count(&self) -> usize {
        self.queues.len()
    }

    fn inject(&mut self, _src: NodeId, msg: Message) -> Result<(), InjectError> {
        let dst = msg.dest();
        if dst.index() >= self.queues.len() {
            self.stats.bad_dest += 1;
            return Err(InjectError::BadDest(msg));
        }
        self.queues[dst.index()].push_back(InFlight {
            msg,
            arrives_at: self.now + self.latency,
            injected_at: self.now,
        });
        self.in_flight += 1;
        self.stats.injected += 1;
        self.stats.in_flight_hwm = self.stats.in_flight_hwm.max(self.in_flight);
        Ok(())
    }

    fn peek_eject(&self, dst: NodeId) -> Option<&Message> {
        if self.deliverable(dst) {
            self.queues[dst.index()].front().map(|p| &p.msg)
        } else {
            None
        }
    }

    fn eject(&mut self, dst: NodeId) -> Option<Message> {
        if !self.deliverable(dst) {
            return None;
        }
        let p = self.queues[dst.index()].pop_front().expect("checked above");
        self.in_flight -= 1;
        self.stats.record_delivery(self.now - p.injected_at);
        Some(p.msg)
    }

    fn tick(&mut self) {
        self.now += 1;
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn next_arrival(&self) -> Option<u64> {
        // Per-destination queues are ordered by arrival time, so only the
        // fronts need inspecting.
        self.queues
            .iter()
            .filter_map(|q| q.front().map(|p| p.arrives_at))
            .min()
    }

    fn advance(&mut self, cycles: u64) {
        // Tick is pure time-keeping here; jumping is exact.
        self.now += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcni_isa::MsgType;

    fn msg(dst: u16, tag: u32) -> Message {
        Message::to(
            NodeId::new(dst),
            [tag, tag, 0, 0, 0],
            MsgType::new(2).unwrap(),
        )
    }

    #[test]
    fn zero_latency_delivers_same_cycle() {
        let mut net = IdealNetwork::new(2, 0);
        net.inject(NodeId::new(0), msg(1, 5)).unwrap();
        assert!(net.peek_eject(NodeId::new(1)).is_some());
        assert_eq!(net.eject(NodeId::new(1)).unwrap().words[1] & 0xFFFF, 5);
    }

    #[test]
    fn latency_respected_and_order_preserved() {
        let mut net = IdealNetwork::new(2, 3);
        net.inject(NodeId::new(0), msg(1, 1)).unwrap(); // due at t=3
        net.tick(); // t=1
        net.inject(NodeId::new(0), msg(1, 2)).unwrap(); // due at t=4
        net.tick(); // t=2
        assert!(net.peek_eject(NodeId::new(1)).is_none());
        net.tick(); // t=3: first message due
        assert_eq!(net.eject(NodeId::new(1)).unwrap().words[1], 1);
        assert!(net.eject(NodeId::new(1)).is_none()); // second not due until t=4
        net.tick(); // t=4
        assert_eq!(net.eject(NodeId::new(1)).unwrap().words[1], 2);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.stats().delivered, 2);
        assert_eq!(net.stats().mean_latency(), Some(3.0));
    }

    #[test]
    fn self_send_allowed() {
        let mut net = IdealNetwork::new(1, 0);
        net.inject(NodeId::new(0), msg(0, 9)).unwrap();
        assert!(net.eject(NodeId::new(0)).is_some());
    }

    #[test]
    fn misaddressed_message_is_a_typed_error() {
        let mut net = IdealNetwork::new(2, 0);
        let m = msg(7, 3);
        match net.inject(NodeId::new(0), m) {
            Err(InjectError::BadDest(back)) => assert_eq!(back, m),
            other => panic!("expected BadDest, got {other:?}"),
        }
        assert_eq!(net.stats().bad_dest, 1);
        assert_eq!(net.stats().injected, 0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn latency_histogram_matches_deliveries() {
        let mut net = IdealNetwork::new(2, 3);
        net.inject(NodeId::new(0), msg(1, 1)).unwrap();
        net.inject(NodeId::new(0), msg(1, 2)).unwrap();
        for _ in 0..8 {
            net.tick();
            while net.eject(NodeId::new(1)).is_some() {}
        }
        let stats = net.stats();
        assert_eq!(stats.latency_hist.total(), stats.delivered);
        // Both messages took exactly 3 cycles → bucket [2, 3].
        assert_eq!(stats.latency_hist.buckets()[2], 2);
    }
}
