//! # tcni-check — deterministic randomized testing, offline
//!
//! The workspace builds in environments with no access to crates.io, so the
//! usual `proptest`/`rand` stack is replaced by this tiny crate: a SplitMix64
//! PRNG ([`Rng`]) and a [`check`] runner that drives a closure through many
//! random cases, printing the failing case's seed so it can be replayed in
//! isolation.
//!
//! ## Replaying a failure
//!
//! When a case fails, the runner prints a line like
//!
//! ```text
//! tcni-check: case 17/256 of `roundtrip` failed; rerun with TCNI_CHECK_SEED=0x9e3779b97f4a7c15
//! ```
//!
//! Re-running that one test with the environment variable set executes only
//! the failing case:
//!
//! ```text
//! TCNI_CHECK_SEED=0x9e3779b97f4a7c15 cargo test -p tcni-isa roundtrip
//! ```
//!
//! `TCNI_CHECK_CASES=n` overrides the case count of every `check` call
//! (useful for quick smoke runs or overnight soak runs).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A SplitMix64 pseudo-random generator: tiny, fast, and with a full 64-bit
/// state-space walk, so every seed gives an independent stream. Deterministic
/// across platforms and releases — test cases are reproducible from the seed
/// alone.
///
/// # Example
///
/// ```
/// use tcni_check::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.u64(), b.u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 random bits (SplitMix64 step).
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// The next 16 random bits.
    pub fn u16(&mut self) -> u16 {
        (self.u64() >> 48) as u16
    }

    /// The next 8 random bits.
    pub fn u8(&mut self) -> u8 {
        (self.u64() >> 56) as u8
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Multiply-shift rejection-free mapping (Lemire); the bias for the
        // n ≪ 2^64 values used in tests is immeasurably small.
        ((u128::from(self.u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A uniform element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

/// FNV-1a, used to give every named check an independent seed stream.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `f` on `cases` independently-seeded [`Rng`]s; on a panic, prints the
/// failing case's seed (replayable via `TCNI_CHECK_SEED`) and re-raises.
///
/// `name` should be unique per call site (the test function name works); it
/// both labels the failure report and decorrelates seed streams between
/// checks.
///
/// Environment overrides:
///
/// * `TCNI_CHECK_SEED=<hex-or-decimal>` — run exactly one case with that
///   seed (the replay loop);
/// * `TCNI_CHECK_CASES=<n>` — override the case count.
///
/// # Panics
///
/// Re-raises the panic of the first failing case.
pub fn check(name: &str, cases: u64, mut f: impl FnMut(&mut Rng)) {
    if let Some(seed) = env_seed() {
        eprintln!("tcni-check: replaying `{name}` with TCNI_CHECK_SEED={seed:#x}");
        f(&mut Rng::new(seed));
        return;
    }
    let cases = env_cases().unwrap_or(cases);
    let base = fnv1a(name);
    for case in 0..cases {
        // Derive the case seed by running the generator itself, so seeds for
        // nearby cases are decorrelated.
        let seed = Rng::new(base ^ case).u64();
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut Rng::new(seed))));
        if let Err(panic) = result {
            eprintln!(
                "tcni-check: case {}/{cases} of `{name}` failed; rerun with TCNI_CHECK_SEED={seed:#x}",
                case + 1
            );
            resume_unwind(panic);
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn env_seed() -> Option<u64> {
    std::env::var("TCNI_CHECK_SEED")
        .ok()
        .and_then(|s| parse_u64(&s))
}

fn env_cases() -> Option<u64> {
    std::env::var("TCNI_CHECK_CASES")
        .ok()
        .and_then(|s| parse_u64(&s))
        .filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        // A known SplitMix64 vector: seed 0 first output.
        assert_eq!(Rng::new(0).u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn range_and_pick() {
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
        let xs = [1, 2, 3];
        assert!(xs.contains(rng.pick(&xs)));
    }

    #[test]
    fn check_runs_every_case() {
        let mut n = 0;
        check("check_runs_every_case", 32, |_| n += 1);
        // Under TCNI_CHECK_CASES/SEED overrides the count differs; only
        // assert the default behaviour when no override is active.
        if std::env::var("TCNI_CHECK_CASES").is_err() && std::env::var("TCNI_CHECK_SEED").is_err() {
            assert_eq!(n, 32);
        }
    }

    #[test]
    fn check_seeds_differ_between_names_and_cases() {
        let mut a = Vec::new();
        check("stream-a", 4, |rng| a.push(rng.u64()));
        let mut b = Vec::new();
        check("stream-b", 4, |rng| b.push(rng.u64()));
        if std::env::var("TCNI_CHECK_SEED").is_err() {
            assert_ne!(a, b, "per-name decorrelation");
            let mut sorted = a.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), a.len(), "per-case decorrelation");
        }
    }
}
