//! The published Table 1 (Henry & Joerg, ASPLOS 1992), transcribed for
//! side-by-side comparison with our measured table. Column order matches
//! [`tcni_sim::Model::ALL_SIX`]: optimized register / on-chip / off-chip,
//! then basic register / on-chip / off-chip.

use crate::table1::{CostRange, ModelCosts};

fn r(min: u32, max: u32) -> CostRange {
    CostRange::range(min, max)
}

fn x(v: u32) -> CostRange {
    CostRange::fixed(v)
}

/// The paper's Table 1, per model.
pub fn published() -> [ModelCosts; 6] {
    [
        // Optimized, register mapped
        ModelCosts {
            send: [x(2), r(2, 3), r(2, 4)],
            pread: r(2, 4),
            pwrite: r(0, 3),
            read: r(2, 3),
            write: r(0, 2),
            dispatch: 1,
            proc_send: [1, 2, 3],
            proc_read: 1,
            proc_write: 1,
            proc_pread_full: 9,
            proc_pread_empty: 19,
            proc_pread_deferred: 15,
            proc_pwrite_empty: 14,
            proc_pwrite_deferred_base: 15,
            proc_pwrite_deferred_slope: 6,
        },
        // Optimized, on-chip cache
        ModelCosts {
            send: [x(3), x(4), x(5)],
            pread: x(5),
            pwrite: x(3),
            read: x(4),
            write: x(2),
            dispatch: 2,
            proc_send: [1, 3, 5],
            proc_read: 3,
            proc_write: 3,
            proc_pread_full: 12,
            proc_pread_empty: 23,
            proc_pread_deferred: 19,
            proc_pwrite_empty: 17,
            proc_pwrite_deferred_base: 19,
            proc_pwrite_deferred_slope: 8,
        },
        // Optimized, off-chip cache
        ModelCosts {
            send: [x(3), x(4), x(5)],
            pread: x(5),
            pwrite: x(3),
            read: x(4),
            write: x(2),
            dispatch: 2,
            proc_send: [3, 5, 6],
            proc_read: 5,
            proc_write: 4,
            proc_pread_full: 13,
            proc_pread_empty: 23,
            proc_pread_deferred: 19,
            proc_pwrite_empty: 17,
            proc_pwrite_deferred_base: 19,
            proc_pwrite_deferred_slope: 8,
        },
        // Basic, register mapped
        ModelCosts {
            send: [x(3), r(3, 4), r(3, 5)],
            pread: r(3, 5),
            pwrite: r(1, 4),
            read: r(3, 4),
            write: r(1, 3),
            dispatch: 5,
            proc_send: [1, 2, 3],
            proc_read: 4,
            proc_write: 1,
            proc_pread_full: 12,
            proc_pread_empty: 19,
            proc_pread_deferred: 15,
            proc_pwrite_empty: 14,
            proc_pwrite_deferred_base: 16,
            proc_pwrite_deferred_slope: 6,
        },
        // Basic, on-chip cache
        ModelCosts {
            send: [x(4), x(5), x(6)],
            pread: x(7),
            pwrite: x(5),
            read: x(6),
            write: x(4),
            dispatch: 7,
            proc_send: [1, 3, 5],
            proc_read: 8,
            proc_write: 3,
            proc_pread_full: 17,
            proc_pread_empty: 23,
            proc_pread_deferred: 19,
            proc_pwrite_empty: 17,
            proc_pwrite_deferred_base: 20,
            proc_pwrite_deferred_slope: 8,
        },
        // Basic, off-chip cache
        ModelCosts {
            send: [x(4), x(5), x(6)],
            pread: x(7),
            pwrite: x(5),
            read: x(6),
            write: x(4),
            dispatch: 8,
            proc_send: [3, 5, 6],
            proc_read: 8,
            proc_write: 4,
            proc_pread_full: 17,
            proc_pread_empty: 23,
            proc_pread_deferred: 19,
            proc_pwrite_empty: 17,
            proc_pwrite_deferred_base: 20,
            proc_pwrite_deferred_slope: 8,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcription_sanity() {
        let t = published();
        // Optimized register: remote read served in 2 instructions total.
        assert_eq!(t[0].dispatch + t[0].proc_read, 2);
        // Optimization never hurts (same placement, same row).
        for (opt, basic) in [(0usize, 3usize), (1, 4), (2, 5)] {
            assert!(t[opt].dispatch <= t[basic].dispatch);
            assert!(t[opt].proc_read <= t[basic].proc_read);
            assert!(t[opt].send[0].max <= t[basic].send[0].max);
        }
    }
}
