//! Figure 12: "dynamic instruction counts for 100 by 100 matrix multiply
//! and 16 Gamteb using the six different network interface implementations."
//!
//! Methodology, reproduced from §4.2: run the program on the TAM simulator
//! to obtain dynamic instruction counts per class, then "replac\[e\] the
//! dynamic instruction count of each TAM intermediate instruction by the
//! appropriate number of RISC instructions". Message-class instructions
//! expand into Table-1 costs (sending at the sender + dispatching and
//! processing at the receiver + dispatch and `Send(1)`-processing for each
//! value reply); non-message classes expand into the fixed costs of
//! [`NonMessageCosts`] — TAM threads live in memory-resident frames, so an
//! ordinary TL0 ALU instruction is a load/load/op/store sequence on a RISC.
//! No idle or network-latency cycles are modelled, exactly like the paper.
//!
//! The expansion can run from our *measured* Table 1 or from the paper's
//! *published* one ([`CostSource`]), so the figure is reproducible from
//! either starting point.

use std::fmt;

use tcni_sim::Model;
use tcni_tam::{programs, TamClass, TamCounts};

use crate::table1::{ModelCosts, Table1};

/// RISC-cycle costs of the non-message TAM instruction classes.
///
/// TAM operands are frame slots in memory; the default costs charge the
/// implied frame traffic (e.g. an integer ALU op = two loads + op + store).
/// These are identical across the six models, which is why Figure 12's
/// bottom (non-message) bar component is constant — the paper's bars show
/// the same.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonMessageCosts {
    /// Move/immediate (load + store).
    pub mov: f64,
    /// Integer ALU (ld, ld, op, st).
    pub int_alu: f64,
    /// Floating-point ALU.
    pub float_alu: f64,
    /// Random-number draw (xorshift arithmetic + state update).
    pub rand: f64,
    /// SWITCH / branch bookkeeping.
    pub control: f64,
    /// FORK: push a continuation.
    pub fork: f64,
    /// JOIN: load, decrement, store, test.
    pub join: f64,
    /// Frame allocation (runtime service).
    pub falloc: f64,
    /// Heap-array allocation.
    pub heap_alloc: f64,
    /// STOP: pop the next continuation and jump.
    pub stop: f64,
}

impl NonMessageCosts {
    /// The default model (see type docs).
    pub fn new() -> NonMessageCosts {
        NonMessageCosts {
            mov: 2.0,
            int_alu: 4.0,
            float_alu: 4.0,
            rand: 6.0,
            control: 3.0,
            fork: 4.0,
            join: 4.0,
            falloc: 20.0,
            heap_alloc: 20.0,
            stop: 3.0,
        }
    }

    fn of(&self, class: TamClass) -> f64 {
        match class {
            TamClass::Move => self.mov,
            TamClass::IntAlu => self.int_alu,
            TamClass::FloatAlu => self.float_alu,
            TamClass::Rand => self.rand,
            TamClass::Control => self.control,
            TamClass::Fork => self.fork,
            TamClass::Join => self.join,
            TamClass::Falloc => self.falloc,
            TamClass::HeapAlloc => self.heap_alloc,
            TamClass::Stop => self.stop,
            // Message classes are charged through Table 1, not here.
            _ => 0.0,
        }
    }
}

impl Default for NonMessageCosts {
    fn default() -> Self {
        NonMessageCosts::new()
    }
}

/// Which Table 1 drives the expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostSource {
    /// Our measured table (the default).
    Measured,
    /// The paper's published Table 1.
    Published,
}

/// One bar of Figure 12, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Non-message-passing work (constant across models).
    pub compute: f64,
    /// Message dispatching.
    pub dispatch: f64,
    /// All other communication (sending + receiving message values).
    pub other_comm: f64,
}

impl Breakdown {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.compute + self.dispatch + self.other_comm
    }

    /// All communication cycles.
    pub fn comm(&self) -> f64 {
        self.dispatch + self.other_comm
    }

    /// Fraction of execution spent on message passing.
    pub fn comm_fraction(&self) -> f64 {
        self.comm() / self.total()
    }
}

/// Expands dynamic counts into one model's cycle breakdown.
pub fn breakdown(counts: &TamCounts, costs: &ModelCosts, base: &NonMessageCosts) -> Breakdown {
    let m = &counts.msgs;
    let compute: f64 = TamClass::ALL
        .iter()
        .filter(|c| !c.is_message())
        .map(|c| counts.ops(*c) as f64 * base.of(*c))
        .sum();

    let dispatch = m.dispatches() as f64 * f64::from(costs.dispatch);

    let mut other = 0.0;
    for k in 0..3 {
        other += m.send[k] as f64 * (costs.send[k].mid() + f64::from(costs.proc_send[k]));
    }
    other += m.read as f64 * (costs.read.mid() + f64::from(costs.proc_read));
    other += m.write as f64 * (costs.write.mid() + f64::from(costs.proc_write));
    other += m.pread_full as f64 * (costs.pread.mid() + f64::from(costs.proc_pread_full));
    other += m.pread_empty as f64 * (costs.pread.mid() + f64::from(costs.proc_pread_empty));
    other += m.pread_deferred as f64 * (costs.pread.mid() + f64::from(costs.proc_pread_deferred));
    other += m.pwrite_empty as f64 * (costs.pwrite.mid() + f64::from(costs.proc_pwrite_empty));
    other += m.pwrite_deferred_events as f64
        * (costs.pwrite.mid() + f64::from(costs.proc_pwrite_deferred_base));
    other += m.pwrite_deferred_readers as f64 * f64::from(costs.proc_pwrite_deferred_slope);
    // Every value reply is a type-0 Send(1 word): its *sending* is already
    // inside the server handler's processing cost (reply mode / the 6n
    // term), but the requester still dispatches and processes it — the
    // dispatch is in `dispatch` above, the processing here.
    other += m.responses as f64 * f64::from(costs.proc_send[1]);

    Breakdown {
        compute,
        dispatch,
        other_comm: other,
    }
}

/// The headline results the paper quotes from Figure 12 (§4.2.3, §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Communication-cycle ratio, basic off-chip : optimized register
    /// (paper: "about five fold").
    pub comm_reduction: f64,
    /// Communication-cycle ratio, basic off-chip : optimized off-chip
    /// (paper: "our hardware mechanisms improve its performance two fold").
    pub hw_only_reduction: f64,
    /// Total-cycle reduction, basic off-chip → optimized register
    /// (paper: "about 40%").
    pub total_cut: f64,
    /// Message-passing share of execution on basic off-chip (paper: 51%).
    pub comm_fraction_before: f64,
    /// …and on optimized register-mapped (paper: 17%).
    pub comm_fraction_after: f64,
    /// "Even the slowest optimized implementation is better than the
    /// fastest unoptimized implementation."
    pub crossover_holds: bool,
}

/// A complete Figure-12 panel for one program.
#[derive(Debug, Clone)]
pub struct Figure12 {
    /// Program name (and scale).
    pub title: String,
    /// The dynamic counts the expansion used.
    pub counts: TamCounts,
    /// One bar per model, in [`Model::ALL_SIX`] order.
    pub bars: [Breakdown; 6],
}

impl Figure12 {
    /// Expands `counts` under every model.
    pub fn from_counts(
        title: impl Into<String>,
        counts: TamCounts,
        table: &[ModelCosts; 6],
    ) -> Figure12 {
        let base = NonMessageCosts::new();
        let bars = std::array::from_fn(|i| breakdown(&counts, &table[i], &base));
        Figure12 {
            title: title.into(),
            counts,
            bars,
        }
    }

    /// The bar for a model.
    pub fn bar(&self, model: Model) -> &Breakdown {
        let idx = Model::ALL_SIX
            .iter()
            .position(|m| *m == model)
            .expect("known model");
        &self.bars[idx]
    }

    /// Computes the headline metrics (bars are ordered opt reg/on/off,
    /// basic reg/on/off).
    pub fn headline(&self) -> Headline {
        let opt_reg = &self.bars[0];
        let opt_off = &self.bars[2];
        let basic_off = &self.bars[5];
        let slowest_optimized = self.bars[..3]
            .iter()
            .map(Breakdown::total)
            .fold(0.0, f64::max);
        let fastest_basic = self.bars[3..]
            .iter()
            .map(Breakdown::total)
            .fold(f64::INFINITY, f64::min);
        Headline {
            comm_reduction: basic_off.comm() / opt_reg.comm(),
            hw_only_reduction: basic_off.comm() / opt_off.comm(),
            total_cut: 1.0 - opt_reg.total() / basic_off.total(),
            comm_fraction_before: basic_off.comm_fraction(),
            comm_fraction_after: opt_reg.comm_fraction(),
            crossover_holds: slowest_optimized <= fastest_basic,
        }
    }
}

/// Runs the paper's left panel: 100×100 blocked matrix multiply.
///
/// # Errors
///
/// Propagates TAM runtime errors.
pub fn matmul_panel(
    n: usize,
    nodes: usize,
    table: &Table1,
) -> Result<Figure12, tcni_tam::TamError> {
    let out = programs::matmul::run(n, nodes)?;
    Ok(Figure12::from_counts(
        format!("{n}×{n} Matrix Multiply"),
        out.counts,
        &table.models,
    ))
}

/// Runs the paper's right panel: Gamteb with the given batch count.
///
/// # Errors
///
/// Propagates TAM runtime errors.
pub fn gamteb_panel(
    batches: u32,
    nodes: usize,
    table: &Table1,
) -> Result<Figure12, tcni_tam::TamError> {
    let out = programs::gamteb::run(batches, nodes, 0x6A3)?;
    Ok(Figure12::from_counts(
        format!("{batches} Gamteb"),
        out.counts,
        &table.models,
    ))
}

impl Figure12 {
    /// Renders the panel as stacked horizontal bars (the shape of the
    /// paper's Figure 12): `#` non-message work, `d` dispatch, `+` other
    /// communication, scaled to `width` characters at the tallest bar.
    pub fn ascii_bars(&self, width: usize) -> String {
        use std::fmt::Write;
        let max = self.bars.iter().map(Breakdown::total).fold(0.0, f64::max);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} — '#' non-message, 'd' dispatch, '+' other comm",
            self.title
        );
        for (i, model) in Model::ALL_SIX.iter().enumerate() {
            let b = &self.bars[i];
            let scale = |v: f64| ((v / max) * width as f64).round() as usize;
            let bar: String = std::iter::repeat_n('#', scale(b.compute))
                .chain(std::iter::repeat_n('d', scale(b.dispatch)))
                .chain(std::iter::repeat_n('+', scale(b.other_comm)))
                .collect();
            let _ = writeln!(out, "{:<28} |{bar}", model.to_string());
        }
        out
    }
}

impl fmt::Display for Figure12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 12 — {}", self.title)?;
        writeln!(
            f,
            "{:<28} {:>12} {:>12} {:>12} {:>12} {:>7}",
            "model", "non-message", "dispatch", "other comm", "total", "comm%"
        )?;
        for (i, model) in Model::ALL_SIX.iter().enumerate() {
            let b = &self.bars[i];
            writeln!(
                f,
                "{:<28} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>6.1}%",
                model.to_string(),
                b.compute,
                b.dispatch,
                b.other_comm,
                b.total(),
                100.0 * b.comm_fraction()
            )?;
        }
        let h = self.headline();
        writeln!(
            f,
            "headline: comm ×{:.2} (hw-only ×{:.2}), total cut {:.0}%, comm share {:.0}% → {:.0}%, crossover {}",
            h.comm_reduction,
            h.hw_only_reduction,
            100.0 * h.total_cut,
            100.0 * h.comm_fraction_before,
            100.0 * h.comm_fraction_after,
            if h.crossover_holds { "holds" } else { "FAILS" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_small() -> TamCounts {
        programs::matmul::run(8, 4).unwrap().counts
    }

    #[test]
    fn bottom_bar_constant_across_models() {
        let table = crate::paper::published();
        let fig = Figure12::from_counts("t", counts_small(), &table);
        let c0 = fig.bars[0].compute;
        for b in &fig.bars {
            assert_eq!(b.compute, c0);
        }
    }

    fn measured_table() -> &'static Table1 {
        use std::sync::OnceLock;
        static TABLE: OnceLock<Table1> = OnceLock::new();
        TABLE.get_or_init(Table1::measure)
    }

    #[test]
    fn ordering_matches_the_paper() {
        // Under both cost sources the bars must be ordered within each
        // architecture level: register < on-chip < off-chip.
        for table in [&crate::paper::published(), &measured_table().models] {
            let fig = Figure12::from_counts("t", counts_small(), table);
            let t: Vec<f64> = fig.bars.iter().map(Breakdown::total).collect();
            assert!(t[0] < t[1] && t[1] < t[2], "optimized ordering: {t:?}");
            assert!(t[3] < t[4] && t[4] < t[5], "basic ordering: {t:?}");
        }
    }

    #[test]
    fn crossover_holds_under_measured_costs() {
        // "Even the slowest optimized implementation is better than the
        // fastest unoptimized implementation." (Under the *published* costs
        // our PRead-heavy mix narrowly violates this — see EXPERIMENTS.md.)
        let fig = Figure12::from_counts("t", counts_small(), &measured_table().models);
        assert!(fig.headline().crossover_holds);
    }

    #[test]
    fn headline_magnitudes_are_in_the_paper_zone() {
        for table in [&crate::paper::published(), &measured_table().models] {
            let fig = Figure12::from_counts("t", counts_small(), table);
            let h = fig.headline();
            assert!(
                h.comm_reduction > 2.0,
                "comm reduction {}",
                h.comm_reduction
            );
            assert!(
                h.total_cut > 0.15 && h.total_cut < 0.7,
                "total cut {}",
                h.total_cut
            );
            assert!(
                h.comm_fraction_before > h.comm_fraction_after + 0.1,
                "{} → {}",
                h.comm_fraction_before,
                h.comm_fraction_after
            );
            assert!(h.hw_only_reduction > 1.3, "hw-only {}", h.hw_only_reduction);
        }
    }
}
