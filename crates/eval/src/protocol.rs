//! The message protocol the handlers implement — the paper's conventions
//! from §2.1.4, §4.1, and Figures 3/4, made concrete.
//!
//! Message formats (word 0 always carries the destination node in its high
//! bits):
//!
//! | kind      | type | w0            | w1    | w2    | w3     | w4 (basic) |
//! |-----------|------|---------------|-------|-------|--------|------------|
//! | Send(k)   | 0    | dest ∣ FP     | IP    | data… |        | id 0       |
//! | Read      | 4    | dest ∣ addr   | FP    | IP    | —      | id 4       |
//! | Write     | 5    | dest ∣ addr   | value | —     | —      | id 5       |
//! | PRead     | 6    | dest ∣ cell   | FP    | IP    | —      | id 6       |
//! | PWrite    | 7    | dest ∣ cell   | value | —     | —      | id 7       |
//! | reply     | 0    | FP            | IP    | value | —      | id 0       |
//!
//! `Send` messages are type 0 — the handler IP travels in word 1, so the
//! optimized dispatch hardware jumps straight to the receiving thread
//! (Figure 7, case 2). Replies are ordinary `Send(1 word)` messages; on the
//! optimized architecture they are composed for free by the reply send mode.
//!
//! On the **basic** architecture the 4-bit type field carries no meaning;
//! software dispatches on the 32-bit id in word 4, which indexes the same
//! 16-byte handler table slots.
//!
//! I-structure elements are `[tag, value]` word pairs (`cell` addresses the
//! tag): tag 0 = empty, 1 = full, 2 = deferred with the value word holding
//! the head of a deferred-reader list. Deferred nodes are `[next, FP, IP]`
//! triples carved from a free list whose head lives in register `r14` by
//! handler convention.

use tcni_isa::MsgType;

/// Message type (and basic-architecture id) of `Send` messages and replies.
pub const TYPE_SEND: u8 = 0;
/// Message type/id of remote-read requests.
pub const TYPE_READ: u8 = 4;
/// Message type/id of remote-write requests.
pub const TYPE_WRITE: u8 = 5;
/// Message type/id of I-structure read requests.
pub const TYPE_PREAD: u8 = 6;
/// Message type/id of I-structure write requests.
pub const TYPE_PWRITE: u8 = 7;

/// I-structure tag values.
pub mod tag {
    /// Never written.
    pub const EMPTY: u32 = 0;
    /// Holds a value.
    pub const FULL: u32 = 1;
    /// Readers waiting; the value word heads the deferred list.
    pub const DEFERRED: u32 = 2;
}

/// Offsets within a `[next, FP, IP]` deferred-list node.
pub mod node {
    /// Next-node pointer (0 terminates).
    pub const NEXT: i16 = 0;
    /// Reader frame pointer.
    pub const FP: i16 = 4;
    /// Reader instruction pointer.
    pub const IP: i16 = 8;
    /// Node size in bytes.
    pub const SIZE: u32 = 12;
}

/// The typed constant for a protocol type byte.
///
/// # Panics
///
/// Panics if `t` exceeds 15 (protocol constants never do).
pub fn mt(t: u8) -> MsgType {
    MsgType::new(t).expect("protocol type fits in 4 bits")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_distinct_and_legal() {
        let all = [TYPE_SEND, TYPE_READ, TYPE_WRITE, TYPE_PREAD, TYPE_PWRITE];
        for t in all {
            assert_ne!(t, 1, "type 1 is reserved for exceptions");
            let _ = mt(t);
        }
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }
}
