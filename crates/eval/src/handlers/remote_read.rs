//! Complete two-node remote-read programs for every model — the paper's
//! §2.1.4 example as runnable machine code, used by integration tests and
//! mirrored (with narration) in `examples/quickstart.rs`.

use tcni_core::mapping::{cmd_addr, gpr_alias, reg_addr, NI_WINDOW_BASE};
use tcni_core::{FeatureLevel, InterfaceReg, MsgType, NiCmd, NodeId, WireFormat};
use tcni_isa::{AluOp, Assembler, Cond, Program, Reg};
use tcni_sim::{Model, NiMapping};

use crate::protocol::TYPE_READ;

/// Handler-table base used by these programs.
pub const TABLE: u32 = 0x4000;
/// Node-1 memory address served by the Read handler.
pub const REMOTE_ADDR: u32 = 0x100;
/// Node-0 memory address where the reply value lands.
pub const RESULT_ADDR: u32 = 0x80;

fn ty(n: u8) -> MsgType {
    MsgType::new(n).unwrap()
}

fn off(addr: u32) -> i16 {
    (addr - NI_WINDOW_BASE) as i16
}

fn slot(t: u8) -> u32 {
    TABLE + u32::from(t) * 16
}

fn emit_dispatch(a: &mut Assembler, model: Model) {
    match (model.level, model.mapping) {
        (FeatureLevel::Optimized, NiMapping::RegisterFile) => {
            a.label("dispatch");
            a.jmp(gpr_alias(InterfaceReg::MsgIp));
            a.nop();
            a.br("dispatch");
            a.nop();
        }
        (FeatureLevel::Optimized, _) => {
            a.label("dispatch");
            a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
            a.jmp(Reg::R3);
            a.nop();
            a.br("dispatch");
            a.nop();
        }
        (FeatureLevel::Basic, NiMapping::RegisterFile) => {
            a.label("dispatch");
            a.maski(Reg::R3, gpr_alias(InterfaceReg::Status), 1);
            a.bcnd(Cond::Eq0, Reg::R3, "dispatch");
            a.nop();
            a.shli(Reg::R5, gpr_alias(InterfaceReg::input(4)), 4);
            a.alu(AluOp::Or, Reg::R6, Reg::R10, Reg::R5);
            a.jmp(Reg::R6);
            a.nop();
        }
        (FeatureLevel::Basic, _) => {
            a.label("dispatch");
            a.ld(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::Status)));
            a.ld(Reg::R5, Reg::R9, off(reg_addr(InterfaceReg::I4)));
            a.maski(Reg::R3, Reg::R2, 1);
            a.bcnd(Cond::Eq0, Reg::R3, "dispatch");
            a.nop();
            a.shli(Reg::R6, Reg::R5, 4);
            a.alu(AluOp::Or, Reg::R7, Reg::R10, Reg::R6);
            a.jmp(Reg::R7);
            a.nop();
        }
    }
}

fn emit_setup(a: &mut Assembler, model: Model) {
    if model.mapping.is_memory_mapped() {
        a.li(Reg::R9, NI_WINDOW_BASE);
    }
    a.li(Reg::R10, TABLE);
    if model.level == FeatureLevel::Optimized {
        match model.mapping {
            NiMapping::RegisterFile => {
                a.mov(gpr_alias(InterfaceReg::IpBase), Reg::R10);
            }
            _ => {
                a.st(Reg::R10, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
            }
        }
    }
}

/// Builds the server: serves exactly one Read request, then halts.
pub fn server(model: Model) -> Program {
    let mut a = Assembler::new();
    emit_setup(&mut a, model);
    emit_dispatch(&mut a, model);
    a.org(slot(0));
    a.br("dispatch");
    a.nop();
    a.org(slot(TYPE_READ));
    match (model.level, model.mapping) {
        (FeatureLevel::Optimized, NiMapping::RegisterFile) => {
            a.ld_r_ni(
                gpr_alias(InterfaceReg::O2),
                gpr_alias(InterfaceReg::input(0)),
                Reg::R0,
                NiCmd::reply(ty(0)).with_next(),
            );
            a.halt();
        }
        (FeatureLevel::Basic, NiMapping::RegisterFile) => {
            a.mov(
                gpr_alias(InterfaceReg::O0),
                gpr_alias(InterfaceReg::input(1)),
            );
            a.mov(
                gpr_alias(InterfaceReg::O1),
                gpr_alias(InterfaceReg::input(2)),
            );
            a.mov(gpr_alias(InterfaceReg::O4), Reg::R0);
            a.ld_r_ni(
                gpr_alias(InterfaceReg::O2),
                gpr_alias(InterfaceReg::input(0)),
                Reg::R0,
                NiCmd::send(ty(0)).with_next(),
            );
            a.halt();
        }
        (FeatureLevel::Optimized, _) => {
            a.ld(Reg::R4, Reg::R9, off(reg_addr(InterfaceReg::I0)));
            a.ld(Reg::R5, Reg::R4, 0);
            a.st(
                Reg::R5,
                Reg::R9,
                off(cmd_addr(InterfaceReg::O2, NiCmd::reply(ty(0)).with_next())),
            );
            a.halt();
        }
        (FeatureLevel::Basic, _) => {
            a.ld(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::I1)));
            a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::I2)));
            a.ld(Reg::R4, Reg::R9, off(reg_addr(InterfaceReg::I0)));
            a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::O0)));
            a.st(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::O1)));
            a.ld(Reg::R5, Reg::R4, 0);
            a.st(Reg::R5, Reg::R9, off(reg_addr(InterfaceReg::O2)));
            a.st(
                Reg::R0,
                Reg::R9,
                off(cmd_addr(InterfaceReg::O4, NiCmd::send(ty(0)).with_next())),
            );
            a.halt();
        }
    }
    a.assemble().expect("server assembles")
}

/// Builds the requester: sends a Read to `server_node`, receives the reply,
/// stores the value at [`RESULT_ADDR`], and halts.
pub fn requester(model: Model, server_node: NodeId) -> Program {
    let build = |reply_ip: u32| -> Program {
        let mut a = Assembler::new();
        emit_setup(&mut a, model);
        a.li(
            Reg::R2,
            server_node.into_word_bits(WireFormat::Compact) | REMOTE_ADDR,
        );
        a.li(Reg::R3, 0x200);
        a.li(Reg::R5, reply_ip);
        match model.mapping {
            NiMapping::RegisterFile => {
                if model.level == FeatureLevel::Basic {
                    a.ori(gpr_alias(InterfaceReg::O4), Reg::R0, u16::from(TYPE_READ));
                }
                a.mov(gpr_alias(InterfaceReg::O0), Reg::R2);
                a.mov(gpr_alias(InterfaceReg::O1), Reg::R3);
                a.mov_ni(
                    gpr_alias(InterfaceReg::O2),
                    Reg::R5,
                    NiCmd::send(ty(TYPE_READ)),
                );
            }
            _ => {
                a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::O0)));
                a.st(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::O1)));
                if model.level == FeatureLevel::Basic {
                    a.st(Reg::R5, Reg::R9, off(reg_addr(InterfaceReg::O2)));
                    a.ori(Reg::R6, Reg::R0, u16::from(TYPE_READ));
                    a.st(
                        Reg::R6,
                        Reg::R9,
                        off(cmd_addr(InterfaceReg::O4, NiCmd::send(ty(TYPE_READ)))),
                    );
                } else {
                    a.st(
                        Reg::R5,
                        Reg::R9,
                        off(cmd_addr(InterfaceReg::O2, NiCmd::send(ty(TYPE_READ)))),
                    );
                }
            }
        }
        emit_dispatch(&mut a, model);
        a.org(slot(0));
        if model.level == FeatureLevel::Basic {
            // Basic id-0 slot: generic thread invoker (jump through word 1).
            match model.mapping {
                NiMapping::RegisterFile => {
                    a.jmp(gpr_alias(InterfaceReg::input(1)));
                    a.nop();
                }
                _ => {
                    a.ld(Reg::R6, Reg::R9, off(reg_addr(InterfaceReg::I1)));
                    a.jmp(Reg::R6);
                    a.nop();
                }
            }
        } else {
            a.br("dispatch");
            a.nop();
        }
        a.org(slot(0) + 0x400);
        a.label("reply_handler");
        match model.mapping {
            NiMapping::RegisterFile => {
                a.st(
                    gpr_alias(InterfaceReg::input(2)),
                    Reg::R0,
                    RESULT_ADDR as i16,
                );
                a.mov_ni(Reg::R2, Reg::R2, NiCmd::next());
            }
            _ => {
                a.ld(
                    Reg::R7,
                    Reg::R9,
                    off(cmd_addr(InterfaceReg::I2, NiCmd::next())),
                );
                a.st(Reg::R7, Reg::R0, RESULT_ADDR as i16);
            }
        }
        a.halt();
        a.assemble().expect("requester assembles")
    };
    let pass1 = build(0);
    let ip = pass1.resolve("reply_handler").expect("label defined");
    let pass2 = build(ip);
    debug_assert_eq!(pass2.resolve("reply_handler"), Some(ip));
    pass2
}
