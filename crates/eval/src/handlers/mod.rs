//! Hand-written (well — hand-*generated*) 88100 handler code for every
//! Table-1 cell: sending, dispatching, and processing each message kind,
//! under each interface placement and feature set.
//!
//! The code follows the register conventions of [`crate::harness::regs`]
//! and the message formats of [`crate::protocol`]. Every program is
//! *executed* on the cycle simulator; nothing here is a hand count.

pub mod dispatch;
pub mod processing;
pub mod remote_read;
pub mod sending;

use tcni_core::mapping::{cmd_addr, gpr_alias, reg_addr, NI_WINDOW_BASE};
use tcni_core::{InterfaceReg, NiCmd};
use tcni_isa::Reg;

/// GPR aliases of the interface registers (register-file implementation).
pub(crate) mod alias {
    use super::*;

    pub fn o(i: usize) -> Reg {
        gpr_alias(InterfaceReg::output(i))
    }

    pub fn i(idx: usize) -> Reg {
        gpr_alias(InterfaceReg::input(idx))
    }

    pub fn status() -> Reg {
        gpr_alias(InterfaceReg::Status)
    }

    pub fn msg_ip() -> Reg {
        gpr_alias(InterfaceReg::MsgIp)
    }

    pub fn next_msg_ip() -> Reg {
        gpr_alias(InterfaceReg::NextMsgIp)
    }
}

/// Offset of an interface register's plain address from the window base
/// (fits a load/store immediate).
pub(crate) fn off(reg: InterfaceReg) -> i16 {
    (reg_addr(reg) - NI_WINDOW_BASE) as i16
}

/// Offset of an interface register's address *with a command* (Figure 9)
/// from the window base.
pub(crate) fn cmd_off(reg: InterfaceReg, cmd: NiCmd) -> i16 {
    (cmd_addr(reg, cmd) - NI_WINDOW_BASE) as i16
}

/// The request kinds of Table 1's SENDING section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendKind {
    /// `Send` with `k` payload words (0–2).
    Send(usize),
    /// Remote read request.
    Read,
    /// Remote write.
    Write,
    /// I-structure read request.
    PRead,
    /// I-structure write.
    PWrite,
}

impl SendKind {
    /// All rows of the SENDING section, in paper order.
    pub const ALL: [SendKind; 7] = [
        SendKind::Send(0),
        SendKind::Send(1),
        SendKind::Send(2),
        SendKind::PRead,
        SendKind::PWrite,
        SendKind::Read,
        SendKind::Write,
    ];

    /// The 4-bit message type (and basic-architecture id).
    pub fn mtype(self) -> u8 {
        use crate::protocol::*;
        match self {
            SendKind::Send(_) => TYPE_SEND,
            SendKind::Read => TYPE_READ,
            SendKind::Write => TYPE_WRITE,
            SendKind::PRead => TYPE_PREAD,
            SendKind::PWrite => TYPE_PWRITE,
        }
    }

    /// Display label matching the paper's row names.
    pub fn label(self) -> String {
        match self {
            SendKind::Send(k) => format!("Send ({k} words)"),
            SendKind::Read => "Read".to_owned(),
            SendKind::Write => "Write".to_owned(),
            SendKind::PRead => "PRead".to_owned(),
            SendKind::PWrite => "PWrite".to_owned(),
        }
    }
}

/// The handler cases of Table 1's PROCESSING section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcCase {
    /// `Send` with `k` payload words stored into the frame.
    Send(usize),
    /// Remote read: load and reply.
    Read,
    /// Remote write: store.
    Write,
    /// PRead hitting a full element: reply immediately.
    PReadFull,
    /// PRead hitting an empty element: first deferral.
    PReadEmpty,
    /// PRead hitting an already-deferred element: append.
    PReadDeferred,
    /// PWrite to an empty element.
    PWriteEmpty,
    /// PWrite satisfying `n` deferred readers.
    PWriteDeferred(u32),
}

impl ProcCase {
    /// The paper's processing rows (deferred PWrite measured at n = 1; the
    /// table code sweeps n to fit the linear `base + slope·n` form).
    pub const ALL: [ProcCase; 10] = [
        ProcCase::Send(0),
        ProcCase::Send(1),
        ProcCase::Send(2),
        ProcCase::Read,
        ProcCase::Write,
        ProcCase::PReadFull,
        ProcCase::PReadEmpty,
        ProcCase::PReadDeferred,
        ProcCase::PWriteEmpty,
        ProcCase::PWriteDeferred(1),
    ];

    /// The message type/id that reaches this handler.
    pub fn mtype(self) -> u8 {
        use crate::protocol::*;
        match self {
            ProcCase::Send(_) => TYPE_SEND,
            ProcCase::Read => TYPE_READ,
            ProcCase::Write => TYPE_WRITE,
            ProcCase::PReadFull | ProcCase::PReadEmpty | ProcCase::PReadDeferred => TYPE_PREAD,
            ProcCase::PWriteEmpty | ProcCase::PWriteDeferred(_) => TYPE_PWRITE,
        }
    }

    /// Display label matching the paper's row names.
    pub fn label(self) -> String {
        match self {
            ProcCase::Send(k) => format!("Send ({k} words)"),
            ProcCase::Read => "Read".to_owned(),
            ProcCase::Write => "Write".to_owned(),
            ProcCase::PReadFull => "PRead (full)".to_owned(),
            ProcCase::PReadEmpty => "PRead (empty)".to_owned(),
            ProcCase::PReadDeferred => "PRead (deferred)".to_owned(),
            ProcCase::PWriteEmpty => "PWrite (empty)".to_owned(),
            ProcCase::PWriteDeferred(n) => format!("PWrite (deferred, n={n})"),
        }
    }
}
