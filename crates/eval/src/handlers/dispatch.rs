//! DISPATCHING-section code: get from "a message may have arrived" to "the
//! right handler is executing".
//!
//! Optimized (§2.2.3): read `MsgIp` and jump — the queue checks, the type
//! decode, and the poll are all folded into the hardware-computed address.
//! On the memory-mapped implementations the load is issued early so that
//! handler work (stand-in `nop`s here, tagged compute) covers its latency,
//! which is exactly the overlap the `NextMsgIp` register exists to enable.
//!
//! Basic (§2.1.4 / Figure 5): poll STATUS, extract the valid bit, branch;
//! read the 32-bit id from `i4`; scale it by the 16-byte slot size; merge
//! with the table base; jump. On the off-chip implementation the two
//! interface loads are hoisted together so one load's delay hides the
//! other's.

use tcni_core::InterfaceReg;
use tcni_isa::{AluOp, Assembler, Cond, CostClass, Reg};

use super::{alias, off};
use crate::harness::{regs, Ctx};
use tcni_sim::NiMapping;

/// Emits dispatch code at the current location. Control ends up at the
/// handler (table slot, or the in-message IP for type-0 messages). Dispatch
/// instructions are tagged [`CostClass::Dispatch`]; overlap fillers and
/// delay slots are compute.
pub fn emit(a: &mut Assembler, ctx: Ctx) {
    if ctx.features.hw_dispatch {
        match ctx.mapping {
            NiMapping::RegisterFile => {
                a.set_class(CostClass::Dispatch);
                a.jmp(alias::msg_ip());
                a.set_class(CostClass::Compute);
                a.nop(); // delay slot: fillable with handler epilogue work
            }
            _ => {
                a.set_class(CostClass::Dispatch);
                a.ld(Reg::R3, regs::NI_BASE, off(InterfaceReg::MsgIp));
                a.set_class(CostClass::Compute);
                a.nop(); // overlappable work (the NextMsgIp pipeline, §2.2.3)
                a.nop();
                a.set_class(CostClass::Dispatch);
                a.jmp(Reg::R3);
                a.set_class(CostClass::Compute);
                a.nop(); // delay slot
            }
        }
    } else {
        match ctx.mapping {
            NiMapping::RegisterFile => {
                a.label("poll");
                a.set_class(CostClass::Dispatch);
                a.maski(Reg::R3, alias::status(), 1); // valid bit
                a.bcnd(Cond::Eq0, Reg::R3, "poll");
                a.set_class(CostClass::Compute);
                a.nop(); // branch delay slot
                a.set_class(CostClass::Dispatch);
                a.shli(Reg::R5, alias::i(4), 4); // id → slot offset
                a.alu(AluOp::Or, Reg::R6, regs::TABLE_BASE, Reg::R5);
                a.jmp(Reg::R6);
                a.set_class(CostClass::Compute);
                a.nop(); // delay slot
            }
            _ => {
                a.label("poll");
                a.set_class(CostClass::Dispatch);
                a.ld(Reg::R2, regs::NI_BASE, off(InterfaceReg::Status));
                // Hoisted id load: fills the STATUS load's delay off-chip.
                a.ld(Reg::R5, regs::NI_BASE, off(InterfaceReg::I4));
                a.maski(Reg::R3, Reg::R2, 1);
                a.bcnd(Cond::Eq0, Reg::R3, "poll");
                a.set_class(CostClass::Compute);
                a.nop(); // branch delay slot
                a.set_class(CostClass::Dispatch);
                a.shli(Reg::R6, Reg::R5, 4);
                a.alu(AluOp::Or, Reg::R7, regs::TABLE_BASE, Reg::R6);
                a.jmp(Reg::R7);
                a.set_class(CostClass::Compute);
                a.nop(); // delay slot
            }
        }
    }
}

/// Emits the §2.2.3 software-pipelined handler tail for the register-mapped
/// optimized model: dispatch the *next* message while finishing the current
/// one. `NextMsgIp` already accounts for the NEXT this instruction pair
/// performs, so the jump lands on the right handler even though the current
/// message is still in the input registers when the jump issues.
///
/// ```text
/// jmp NextMsgIp, NEXT   ; dispatch next + dispose current
/// <delay slot>          ; the caller's final instruction goes here
/// ```
pub fn emit_steady_tail(a: &mut Assembler, final_op: tcni_isa::Instr) {
    a.set_class(CostClass::Dispatch);
    a.jmp_ni(alias::next_msg_ip(), tcni_core::NiCmd::next());
    a.set_class(CostClass::Compute);
    a.emit(final_op); // delay slot
}

/// Emits the basic architecture's second-level dispatch for `Send` messages:
/// the id-0 slot holds a generic thread invoker that jumps through the IP in
/// message word 1. (The optimized architecture gets this for free — type-0
/// `MsgIp` *is* word 1.)
pub fn emit_send_invoker(a: &mut Assembler, ctx: Ctx) {
    debug_assert!(!ctx.features.hw_dispatch);
    a.set_class(CostClass::Dispatch);
    match ctx.mapping {
        NiMapping::RegisterFile => {
            a.jmp(alias::i(1));
        }
        _ => {
            a.ld(Reg::R2, regs::NI_BASE, off(InterfaceReg::I1));
            a.jmp(Reg::R2);
        }
    }
    a.set_class(CostClass::Compute);
    a.nop(); // delay slot
}
