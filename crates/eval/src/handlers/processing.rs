//! PROCESSING-section programs: each runs dispatch + the real handler for
//! one staged message, then halts. The handler bodies are the library this
//! repository's multi-node programs reuse; measuring them doubles as a
//! functional test of the protocol.

use tcni_core::mapping::bare_cmd_addr;
use tcni_core::mapping::NI_WINDOW_BASE;
use tcni_core::{InterfaceReg, Message, NiCmd, NodeId, WireFormat};
use tcni_isa::{AluOp, Assembler, Cond, CostClass, Program, Reg};

use super::{alias, cmd_off, dispatch, off, ProcCase};
use crate::harness::{layout, regs, Ctx};
use crate::protocol::{self, mt, node, tag};
use tcni_sim::NiMapping;

/// A processing measurement: the program plus the staged incoming message.
pub struct ProcProbe {
    /// The program (dispatch + handler table + inlets).
    pub program: Program,
    /// The message to push before running.
    pub incoming: Message,
    /// How the I-structure cell / node pool must be staged.
    pub case: ProcCase,
}

/// Offset of a register-less (bare) command address from the window base.
fn bare_off(cmd: NiCmd) -> i16 {
    (bare_cmd_addr(cmd) - NI_WINDOW_BASE) as i16
}

/// The reply SEND command for value responses: reply mode when the
/// architecture has it, plain send otherwise.
fn reply_cmd(ctx: Ctx) -> NiCmd {
    if ctx.features.reply_forward {
        NiCmd::reply(mt(protocol::TYPE_SEND))
    } else {
        NiCmd::send(mt(protocol::TYPE_SEND))
    }
}

/// Builds the probe for one processing case.
pub fn probe(ctx: Ctx, case: ProcCase) -> ProcProbe {
    let mut a = Assembler::new();
    dispatch::emit(&mut a, ctx);
    a.org(layout::TABLE);

    match case {
        ProcCase::Send(k) => emit_send_path(&mut a, ctx, k),
        ProcCase::Read => {
            a.org(layout::slot(protocol::TYPE_READ));
            emit_read(&mut a, ctx);
        }
        ProcCase::Write => {
            a.org(layout::slot(protocol::TYPE_WRITE));
            emit_write(&mut a, ctx);
        }
        ProcCase::PReadFull | ProcCase::PReadEmpty | ProcCase::PReadDeferred => {
            a.org(layout::slot(protocol::TYPE_PREAD));
            emit_pread(&mut a, ctx);
        }
        ProcCase::PWriteEmpty | ProcCase::PWriteDeferred(_) => {
            a.org(layout::slot(protocol::TYPE_PWRITE));
            emit_pwrite(&mut a, ctx);
        }
    }

    let program = a.assemble().expect("processing program assembles");
    let incoming = build_message(&program, case);
    ProcProbe {
        program,
        incoming,
        case,
    }
}

/// The staged incoming message for a case (Send messages carry the inlet
/// label as their IP).
fn build_message(program: &Program, case: ProcCase) -> Message {
    let here = NodeId::new(0); // arriving at the node under test
    let requester = NodeId::new(2);
    let reply_fp = requester.into_word_bits(WireFormat::Compact) | 0x0800;
    let reply_ip = 0x9100;
    match case {
        ProcCase::Send(k) => {
            let inlet = program
                .resolve("inlet")
                .expect("send probes define `inlet`");
            let mut words = [layout::FRAME, inlet, 0, 0, 0];
            if k >= 1 {
                words[2] = 0xD0;
            }
            if k >= 2 {
                words[3] = 0xD1;
            }
            words[4] = u32::from(protocol::TYPE_SEND);
            Message::new(words, mt(protocol::TYPE_SEND))
        }
        ProcCase::Read => Message::new(
            [
                here.into_word_bits(WireFormat::Compact) | layout::DATUM,
                reply_fp,
                reply_ip,
                0,
                u32::from(protocol::TYPE_READ),
            ],
            mt(protocol::TYPE_READ),
        ),
        ProcCase::Write => Message::new(
            [
                here.into_word_bits(WireFormat::Compact) | layout::DATUM,
                0xBEEF,
                0,
                0,
                u32::from(protocol::TYPE_WRITE),
            ],
            mt(protocol::TYPE_WRITE),
        ),
        ProcCase::PReadFull | ProcCase::PReadEmpty | ProcCase::PReadDeferred => Message::new(
            [
                here.into_word_bits(WireFormat::Compact) | layout::CELL,
                reply_fp,
                reply_ip,
                0,
                u32::from(protocol::TYPE_PREAD),
            ],
            mt(protocol::TYPE_PREAD),
        ),
        ProcCase::PWriteEmpty | ProcCase::PWriteDeferred(_) => Message::new(
            [
                here.into_word_bits(WireFormat::Compact) | layout::CELL,
                0xABCD,
                0,
                0,
                u32::from(protocol::TYPE_PWRITE),
            ],
            mt(protocol::TYPE_PWRITE),
        ),
    }
}

// --- Send(k): deposit payload into the frame, dispose of the message -------

fn emit_send_path(a: &mut Assembler, ctx: Ctx, k: usize) {
    if !ctx.features.hw_dispatch {
        // Basic: the id-0 slot holds the generic thread invoker.
        dispatch::emit_send_invoker(a, ctx);
    }
    // Place the inlet clear of the table either way.
    a.org(layout::TABLE + 0x400);
    a.label("inlet");
    a.set_class(CostClass::Communication);
    match ctx.mapping {
        NiMapping::RegisterFile => {
            if k >= 1 {
                a.st(alias::i(2), alias::i(0), 8);
            }
            if k >= 2 {
                a.st(alias::i(3), alias::i(0), 12);
            }
            // Bring the frame pointer into a thread register + NEXT.
            a.mov_ni(Reg::R2, alias::i(0), NiCmd::next());
        }
        _ => {
            match k {
                0 => {
                    a.ld(
                        Reg::R2,
                        regs::NI_BASE,
                        cmd_off(InterfaceReg::I0, NiCmd::next()),
                    );
                }
                1 => {
                    a.ld(Reg::R2, regs::NI_BASE, off(InterfaceReg::I0));
                    a.ld(
                        Reg::R5,
                        regs::NI_BASE,
                        cmd_off(InterfaceReg::I2, NiCmd::next()),
                    );
                    a.st(Reg::R5, Reg::R2, 8);
                }
                _ => {
                    a.ld(Reg::R2, regs::NI_BASE, off(InterfaceReg::I0));
                    a.ld(Reg::R5, regs::NI_BASE, off(InterfaceReg::I2));
                    a.ld(
                        Reg::R6,
                        regs::NI_BASE,
                        cmd_off(InterfaceReg::I3, NiCmd::next()),
                    );
                    a.st(Reg::R5, Reg::R2, 8);
                    a.st(Reg::R6, Reg::R2, 12);
                }
            };
        }
    }
    a.set_class(CostClass::Compute);
    // The receiving thread's first use of the frame pointer: its stall (the
    // off-chip FP-load latency) is charged to the producing load's class.
    a.add(Reg::R3, Reg::R2, Reg::R0);
    a.halt();
}

// --- Read: load the requested word, reply ----------------------------------

fn emit_read(a: &mut Assembler, ctx: Ctx) {
    a.set_class(CostClass::Communication);
    match ctx.mapping {
        NiMapping::RegisterFile => {
            if ctx.features.reply_forward {
                // THE two-instruction remote read (§3.3): one instruction
                // here plus one dispatch instruction.
                a.ld_r_ni(
                    alias::o(2),
                    alias::i(0),
                    Reg::R0,
                    reply_cmd(ctx).with_next(),
                );
            } else {
                a.mov(alias::o(0), alias::i(1));
                a.mov(alias::o(1), alias::i(2));
                a.mov(alias::o(4), Reg::R0); // reply id 0
                a.ld_r_ni(
                    alias::o(2),
                    alias::i(0),
                    Reg::R0,
                    NiCmd::send(mt(0)).with_next(),
                );
            }
        }
        _ => {
            if ctx.features.reply_forward {
                a.ld(Reg::R2, regs::NI_BASE, off(InterfaceReg::I0));
                a.ld(Reg::R5, Reg::R2, 0);
                a.st(
                    Reg::R5,
                    regs::NI_BASE,
                    cmd_off(InterfaceReg::O2, reply_cmd(ctx).with_next()),
                );
            } else {
                // Loads hoisted so their delays overlap off-chip.
                a.ld(Reg::R2, regs::NI_BASE, off(InterfaceReg::I1));
                a.ld(Reg::R3, regs::NI_BASE, off(InterfaceReg::I2));
                a.ld(Reg::R5, regs::NI_BASE, off(InterfaceReg::I0));
                a.st(Reg::R2, regs::NI_BASE, off(InterfaceReg::O0));
                a.st(Reg::R3, regs::NI_BASE, off(InterfaceReg::O1));
                a.ld(Reg::R6, Reg::R5, 0);
                a.st(Reg::R6, regs::NI_BASE, off(InterfaceReg::O2));
                a.st(
                    Reg::R0,
                    regs::NI_BASE,
                    cmd_off(InterfaceReg::O4, NiCmd::send(mt(0)).with_next()),
                );
            }
        }
    }
    a.set_class(CostClass::Compute);
    a.halt();
}

// --- Write: store the value --------------------------------------------------

fn emit_write(a: &mut Assembler, ctx: Ctx) {
    a.set_class(CostClass::Communication);
    match ctx.mapping {
        NiMapping::RegisterFile => {
            a.st_r_ni(alias::i(1), alias::i(0), Reg::R0, NiCmd::next());
        }
        _ => {
            a.ld(Reg::R2, regs::NI_BASE, off(InterfaceReg::I0));
            a.ld(
                Reg::R5,
                regs::NI_BASE,
                cmd_off(InterfaceReg::I1, NiCmd::next()),
            );
            a.st(Reg::R5, Reg::R2, 0);
        }
    }
    a.set_class(CostClass::Compute);
    a.halt();
}

// --- PRead: full / empty / deferred ------------------------------------------

fn emit_pread(a: &mut Assembler, ctx: Ctx) {
    a.set_class(CostClass::Communication);
    match ctx.mapping {
        NiMapping::RegisterFile => {
            a.ld(Reg::R5, alias::i(0), 0); // tag
            a.alu(AluOp::Sub, Reg::R6, Reg::R5, 1u16);
            a.bcnd(Cond::Ne0, Reg::R6, "pr_notfull");
            a.nop();
            // full:
            if ctx.features.reply_forward {
                a.ld_r_ni(
                    alias::o(2),
                    alias::i(0),
                    regs::FOUR,
                    reply_cmd(ctx).with_next(),
                );
            } else {
                a.mov(alias::o(0), alias::i(1));
                a.mov(alias::o(1), alias::i(2));
                a.mov(alias::o(4), Reg::R0);
                a.ld_r_ni(
                    alias::o(2),
                    alias::i(0),
                    regs::FOUR,
                    NiCmd::send(mt(0)).with_next(),
                );
            }
            a.set_class(CostClass::Compute);
            a.halt();
            a.label("pr_notfull");
            a.set_class(CostClass::Communication);
            a.bcnd(Cond::Ne0, Reg::R5, "pr_deferred");
            a.nop();
            // empty: build a fresh single-node deferred list.
            a.ld(Reg::R2, regs::FREE, node::NEXT); // next free node
            a.st(Reg::R0, regs::FREE, node::NEXT);
            a.st(alias::i(1), regs::FREE, node::FP);
            a.st(alias::i(2), regs::FREE, node::IP);
            a.st(regs::TWO, alias::i(0), 0); // tag = DEFERRED
            a.st(regs::FREE, alias::i(0), 4); // cell.value = node
            a.mov_ni(regs::FREE, Reg::R2, NiCmd::next());
            a.set_class(CostClass::Compute);
            a.halt();
            a.label("pr_deferred");
            a.set_class(CostClass::Communication);
            a.ld(Reg::R2, regs::FREE, node::NEXT);
            a.ld(Reg::R7, alias::i(0), 4); // old list head
            a.st(Reg::R7, regs::FREE, node::NEXT);
            a.st(alias::i(1), regs::FREE, node::FP);
            a.st(alias::i(2), regs::FREE, node::IP);
            a.st(regs::FREE, alias::i(0), 4);
            a.mov_ni(regs::FREE, Reg::R2, NiCmd::next());
            a.set_class(CostClass::Compute);
            a.halt();
        }
        _ => {
            // Prefetch everything the paths may need; the loads pipeline.
            a.ld(Reg::R3, regs::NI_BASE, off(InterfaceReg::I0)); // cell
            a.ld(Reg::R7, regs::NI_BASE, off(InterfaceReg::I1)); // FP
            a.ld(Reg::R8, regs::NI_BASE, off(InterfaceReg::I2)); // IP
            a.ld(Reg::R5, Reg::R3, 0); // tag
            a.alu(AluOp::Sub, Reg::R6, Reg::R5, 1u16);
            a.bcnd(Cond::Ne0, Reg::R6, "pr_notfull");
            a.nop();
            // full:
            if ctx.features.reply_forward {
                a.ld(Reg::R2, Reg::R3, 4);
                a.st(
                    Reg::R2,
                    regs::NI_BASE,
                    cmd_off(InterfaceReg::O2, reply_cmd(ctx).with_next()),
                );
            } else {
                a.ld(Reg::R2, Reg::R3, 4);
                a.st(Reg::R7, regs::NI_BASE, off(InterfaceReg::O0));
                a.st(Reg::R8, regs::NI_BASE, off(InterfaceReg::O1));
                a.st(Reg::R2, regs::NI_BASE, off(InterfaceReg::O2));
                a.st(
                    Reg::R0,
                    regs::NI_BASE,
                    cmd_off(InterfaceReg::O4, NiCmd::send(mt(0)).with_next()),
                );
            }
            a.set_class(CostClass::Compute);
            a.halt();
            a.label("pr_notfull");
            a.set_class(CostClass::Communication);
            a.bcnd(Cond::Ne0, Reg::R5, "pr_deferred");
            a.nop();
            // empty:
            a.ld(Reg::R2, regs::FREE, node::NEXT);
            a.st(Reg::R0, regs::FREE, node::NEXT);
            a.st(Reg::R7, regs::FREE, node::FP);
            a.st(Reg::R8, regs::FREE, node::IP);
            a.st(regs::TWO, Reg::R3, 0);
            a.st(regs::FREE, Reg::R3, 4);
            a.mov(regs::FREE, Reg::R2);
            a.st(Reg::R0, regs::NI_BASE, bare_off(NiCmd::next()));
            a.set_class(CostClass::Compute);
            a.halt();
            a.label("pr_deferred");
            a.set_class(CostClass::Communication);
            a.ld(Reg::R2, regs::FREE, node::NEXT);
            a.ld(Reg::R6, Reg::R3, 4); // old head
            a.st(Reg::R6, regs::FREE, node::NEXT);
            a.st(Reg::R7, regs::FREE, node::FP);
            a.st(Reg::R8, regs::FREE, node::IP);
            a.st(regs::FREE, Reg::R3, 4);
            a.mov(regs::FREE, Reg::R2);
            a.st(Reg::R0, regs::NI_BASE, bare_off(NiCmd::next()));
            a.set_class(CostClass::Compute);
            a.halt();
        }
    }
}

// --- PWrite: empty / deferred(n) -----------------------------------------------

fn emit_pwrite(a: &mut Assembler, ctx: Ctx) {
    a.set_class(CostClass::Communication);
    match ctx.mapping {
        NiMapping::RegisterFile => {
            a.ld(Reg::R5, alias::i(0), 0); // tag
            a.bcnd(Cond::Ne0, Reg::R5, "pw_deferred");
            a.nop();
            // empty:
            a.st(alias::i(1), alias::i(0), 4);
            a.st(regs::ONE, alias::i(0), 0);
            a.mov_ni(Reg::R2, Reg::R0, NiCmd::next());
            a.set_class(CostClass::Compute);
            a.halt();
            a.label("pw_deferred");
            a.set_class(CostClass::Communication);
            a.ld(Reg::R7, alias::i(0), 4); // deferred-list head
            a.st(alias::i(1), alias::i(0), 4);
            a.st(regs::ONE, alias::i(0), 0);
            a.mov(alias::o(2), alias::i(1)); // reply value, set once
            if !ctx.features.encoded_types {
                a.mov(alias::o(4), Reg::R0); // reply id, set once
            }
            a.label("pw_loop");
            a.ld(Reg::R8, Reg::R7, node::NEXT);
            a.ld(Reg::R2, Reg::R7, node::FP);
            a.ld(Reg::R3, Reg::R7, node::IP);
            a.mov(alias::o(0), Reg::R2);
            a.mov_ni(alias::o(1), Reg::R3, NiCmd::send(mt(0)));
            a.bcnd(Cond::Ne0, Reg::R8, "pw_loop");
            a.mov(Reg::R7, Reg::R8); // delay slot: advance
            a.mov_ni(Reg::R2, Reg::R0, NiCmd::next());
            a.set_class(CostClass::Compute);
            a.halt();
        }
        _ => {
            a.ld(Reg::R3, regs::NI_BASE, off(InterfaceReg::I0)); // cell
            a.ld(Reg::R6, regs::NI_BASE, off(InterfaceReg::I1)); // value
            a.ld(Reg::R5, Reg::R3, 0); // tag
            a.bcnd(Cond::Ne0, Reg::R5, "pw_deferred");
            a.nop();
            // empty:
            a.st(Reg::R6, Reg::R3, 4);
            a.st(regs::ONE, Reg::R3, 0);
            a.st(Reg::R0, regs::NI_BASE, bare_off(NiCmd::next()));
            a.set_class(CostClass::Compute);
            a.halt();
            a.label("pw_deferred");
            a.set_class(CostClass::Communication);
            a.ld(Reg::R7, Reg::R3, 4); // list head
            a.st(Reg::R6, Reg::R3, 4);
            a.st(regs::ONE, Reg::R3, 0);
            a.st(Reg::R6, regs::NI_BASE, off(InterfaceReg::O2)); // once
            if !ctx.features.encoded_types {
                a.st(Reg::R0, regs::NI_BASE, off(InterfaceReg::O4)); // once
            }
            a.label("pw_loop");
            a.ld(Reg::R8, Reg::R7, node::NEXT);
            a.ld(Reg::R2, Reg::R7, node::FP);
            a.ld(Reg::R5, Reg::R7, node::IP);
            a.st(Reg::R2, regs::NI_BASE, off(InterfaceReg::O0));
            a.st(
                Reg::R5,
                regs::NI_BASE,
                cmd_off(InterfaceReg::O1, NiCmd::send(mt(0))),
            );
            a.bcnd(Cond::Ne0, Reg::R8, "pw_loop");
            a.mov(Reg::R7, Reg::R8); // delay slot
            a.st(Reg::R0, regs::NI_BASE, bare_off(NiCmd::next()));
            a.set_class(CostClass::Compute);
            a.halt();
        }
    }
}

/// Stages memory for a case: I-structure cell, free list, deferred chains.
pub fn stage_memory(mem: &mut tcni_cpu::MemEnv, case: ProcCase) {
    // A small free list of deferred nodes, linked through NEXT.
    let free = layout::NODES;
    for i in 0..4u32 {
        let addr = free + i * node::SIZE;
        let next = if i == 3 { 0 } else { addr + node::SIZE };
        mem.poke(addr, next);
    }
    match case {
        ProcCase::Read => mem.poke(layout::DATUM, 0x1234),
        ProcCase::Write | ProcCase::Send(_) => {}
        ProcCase::PReadFull => {
            mem.poke(layout::CELL, tag::FULL);
            mem.poke(layout::CELL + 4, 0x5678);
        }
        ProcCase::PReadEmpty | ProcCase::PWriteEmpty => {
            mem.poke(layout::CELL, tag::EMPTY);
        }
        ProcCase::PReadDeferred => {
            // One reader already waiting, in a node outside the free list.
            let existing = layout::NODES + 0x40;
            mem.poke(layout::CELL, tag::DEFERRED);
            mem.poke(layout::CELL + 4, existing);
            mem.poke(existing, 0);
            mem.poke(existing + 4, 0x0200_0900);
            mem.poke(existing + 8, 0x9200);
        }
        ProcCase::PWriteDeferred(n) => {
            // A chain of n waiting readers at NODES+0x40…
            let base = layout::NODES + 0x40;
            mem.poke(layout::CELL, tag::DEFERRED);
            mem.poke(layout::CELL + 4, base);
            for i in 0..n {
                let addr = base + i * node::SIZE;
                let next = if i + 1 == n { 0 } else { addr + node::SIZE };
                mem.poke(addr, next);
                mem.poke(
                    addr + 4,
                    NodeId::new(2).into_word_bits(WireFormat::Compact) | (0x800 + i * 0x10),
                );
                mem.poke(addr + 8, 0x9100 + i * 4);
            }
        }
    }
}
