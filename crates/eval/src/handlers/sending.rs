//! SENDING-section programs: compose and send one message of each kind.
//!
//! Host-staged registers (see [`crate::harness::regs`]):
//!
//! * `r2` — word 0 (pre-combined `dest|FP` for `Send`; `dest|addr` for
//!   `Write`; bare destination bits for `Read`/`PRead`/`PWrite`, whose
//!   address composition is part of the send)
//! * `r3` — word 1 (IP / value / FP per kind), `r5`/`r6` — further words
//! * `r8` — the local address to be combined with destination bits
//!
//! On the basic architecture the 32-bit message id must be *generated and
//! stored into word 4* (the paper's basic-handler lines 14–15); the
//! optimized architecture encodes the type in the SEND command instead.
//!
//! The register-file implementation is measured at both ends of the paper's
//! range: `best` assumes message words are computed directly into output
//! registers by instructions that exist anyway (tagged compute, with the
//! SEND riding the last one); worst moves every word explicitly.

use tcni_core::{InterfaceReg, NiCmd};
use tcni_isa::{Assembler, CostClass, Program, Reg};

use super::{alias, cmd_off, off, SendKind};
use crate::harness::{regs, Ctx};
use crate::protocol::mt;
use tcni_sim::NiMapping;

/// Builds the sending program for one Table-1 SENDING cell.
///
/// `best` selects the low end of the register-mapped range (ignored for the
/// memory-mapped implementations, which have no such freedom).
pub fn program(ctx: Ctx, kind: SendKind, best: bool) -> Program {
    let mut a = Assembler::new();
    if ctx.mapping == NiMapping::RegisterFile {
        register_mapped(&mut a, ctx, kind, best);
    } else {
        memory_mapped(&mut a, ctx, kind);
    }
    a.set_class(CostClass::Compute);
    a.halt();
    a.assemble().expect("sending program assembles")
}

fn send_cmd(ctx: Ctx, kind: SendKind) -> NiCmd {
    if ctx.features.encoded_types {
        NiCmd::send(mt(kind.mtype()))
    } else {
        NiCmd::send(mt(0)) // the basic SEND carries no meaningful type
    }
}

fn memory_mapped(a: &mut Assembler, ctx: Ctx, kind: SendKind) {
    let nib = regs::NI_BASE;
    let send = send_cmd(ctx, kind);
    a.set_class(CostClass::Communication);
    // Word composition: kinds that embed a locally-computed address combine
    // it with the destination bits as part of the send.
    let composes_addr = matches!(kind, SendKind::Read | SendKind::PRead | SendKind::PWrite);
    if composes_addr {
        a.alu(tcni_isa::AluOp::Or, Reg::R7, Reg::R2, Reg::R8);
    }
    let w0 = if composes_addr { Reg::R7 } else { Reg::R2 };
    // Gather the words after w0.
    let words: &[Reg] = match kind {
        SendKind::Send(0) => &[Reg::R3],
        SendKind::Send(1) => &[Reg::R3, Reg::R5],
        SendKind::Send(2) => &[Reg::R3, Reg::R5, Reg::R6],
        SendKind::Read | SendKind::PRead => &[Reg::R3, Reg::R5], // FP, IP
        SendKind::Write | SendKind::PWrite => &[Reg::R3],        // value
        SendKind::Send(_) => unreachable!("k ≤ 2"),
    };
    a.st(w0, nib, off(InterfaceReg::O0));
    if ctx.features.encoded_types {
        // All data stores; SEND (with its immediate type) rides the last.
        for (i, w) in words.iter().enumerate() {
            let reg = InterfaceReg::output(1 + i);
            if i + 1 == words.len() {
                a.st(*w, nib, cmd_off(reg, send));
            } else {
                a.st(*w, nib, off(reg));
            }
        }
    } else {
        for (i, w) in words.iter().enumerate() {
            a.st(*w, nib, off(InterfaceReg::output(1 + i)));
        }
        // Basic: generate the 32-bit message id and store it into word 4;
        // the SEND command rides that store (paper Figure 5, lines 14–16).
        a.ori(regs::MSG_ID, Reg::R0, u16::from(kind.mtype()));
        a.st(regs::MSG_ID, nib, cmd_off(InterfaceReg::O4, send));
    }
}

fn register_mapped(a: &mut Assembler, ctx: Ctx, kind: SendKind, best: bool) {
    let send = send_cmd(ctx, kind);
    let composes_addr = matches!(kind, SendKind::Read | SendKind::PRead | SendKind::PWrite);
    // Payload words after w0/w1, as (source reg, output index).
    let tail: &[(Reg, usize)] = match kind {
        SendKind::Send(0) => &[],
        SendKind::Send(1) => &[(Reg::R5, 2)],
        SendKind::Send(2) => &[(Reg::R5, 2), (Reg::R6, 3)],
        SendKind::Read | SendKind::PRead => &[(Reg::R5, 2)], // IP
        SendKind::Write | SendKind::PWrite => &[],
        SendKind::Send(_) => unreachable!("k ≤ 2"),
    };

    if !ctx.features.encoded_types {
        // Generate the id into o4 (dyadic or-immediate through the alias).
        a.set_class(CostClass::Communication);
        a.ori(alias::o(4), Reg::R0, u16::from(kind.mtype()));
    }

    if best {
        // Data words are produced directly into the output registers by
        // instructions the computation needs anyway.
        a.set_class(CostClass::Compute);
        if composes_addr {
            a.alu(tcni_isa::AluOp::Or, alias::o(0), Reg::R2, Reg::R8);
        }
        for (src, oi) in tail {
            a.add(alias::o(*oi), *src, Reg::R0);
        }
        // Value-carrying w1 of Write/PWrite also comes from computation; the
        // SEND rides it, making the marginal send cost zero.
        if matches!(kind, SendKind::Write | SendKind::PWrite) {
            if !composes_addr {
                // Write's pre-combined address is likewise a product of the
                // surrounding computation.
                a.add(alias::o(0), Reg::R2, Reg::R0);
            }
            a.add_ni(alias::o(1), Reg::R3, Reg::R0, send);
            return;
        }
        a.set_class(CostClass::Communication);
        if !composes_addr {
            a.mov(alias::o(0), Reg::R2);
        }
        a.mov_ni(alias::o(1), Reg::R3, send);
    } else {
        a.set_class(CostClass::Communication);
        if composes_addr {
            a.alu(tcni_isa::AluOp::Or, alias::o(0), Reg::R2, Reg::R8);
        } else {
            a.mov(alias::o(0), Reg::R2);
        }
        for (src, oi) in tail {
            a.mov(alias::o(*oi), *src);
        }
        a.mov_ni(alias::o(1), Reg::R3, send);
    }
}

/// The staged register values and the message the program must emit; used by
/// the measurement code to validate each cell's behaviour.
pub mod expect {
    use tcni_core::{Message, NodeId, WireFormat};

    use super::SendKind;
    use crate::protocol::mt;

    /// Destination node used by all sending probes.
    pub fn dest() -> NodeId {
        NodeId::new(3)
    }

    /// Stage values: (r2, r3, r5, r6, r8).
    pub fn staged(kind: SendKind) -> (u32, u32, u32, u32, u32) {
        let dest = dest().into_word_bits(WireFormat::Compact);
        match kind {
            SendKind::Send(_) => (dest | 0x0800, 0x4242, 0xD0, 0xD1, 0),
            SendKind::Read | SendKind::PRead => (dest, 0x0800, 0x4242, 0, 0x650),
            SendKind::Write | SendKind::PWrite => {
                if kind == SendKind::Write {
                    (dest | 0x650, 0x77, 0, 0, 0)
                } else {
                    (dest, 0x77, 0, 0, 0x650)
                }
            }
        }
    }

    /// The message the probe must have queued.
    pub fn message(kind: SendKind, encoded_types: bool) -> Message {
        let (r2, r3, r5, r6, r8) = staged(kind);
        let ty = if encoded_types {
            mt(kind.mtype())
        } else {
            mt(0)
        };
        let mut words = [0u32; 5];
        match kind {
            SendKind::Send(k) => {
                words[0] = r2;
                words[1] = r3;
                if k >= 1 {
                    words[2] = r5;
                }
                if k >= 2 {
                    words[3] = r6;
                }
            }
            SendKind::Read | SendKind::PRead => {
                words[0] = r2 | r8;
                words[1] = r3;
                words[2] = r5;
            }
            SendKind::Write => {
                words[0] = r2;
                words[1] = r3;
            }
            SendKind::PWrite => {
                words[0] = r2 | r8;
                words[1] = r3;
            }
        }
        if !encoded_types {
            words[4] = u32::from(kind.mtype());
        }
        Message::new(words, ty)
    }
}
