//! The single-node measurement harness behind Table 1.
//!
//! Each Table-1 cell is measured by *executing* a small handler program on
//! the `tcni-cpu` cycle simulator coupled to a real `tcni-core` interface
//! through the mapping under test. The harness owns the machine state, lets
//! the caller stage registers / memory / incoming messages, runs the program
//! to completion, and returns the per-[`CostClass`] cycle counts — the
//! measured number is whatever the cycle counter says, not a hand count.

use tcni_core::{FeatureSet, NetworkInterface, NiConfig};
use tcni_cpu::{Cpu, CpuState, MemEnv, TimingConfig};
use tcni_isa::{CostClass, Program, Reg};
use tcni_sim::{NiMapping, NodeEnv};

/// A mapping plus an exact feature set (finer-grained than
/// [`tcni_sim::Model`], for the per-optimization ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctx {
    /// Interface placement.
    pub mapping: NiMapping,
    /// Which §2.2 optimizations are present.
    pub features: FeatureSet,
}

impl Ctx {
    /// The context for one of the six §4 models.
    pub fn from_model(model: tcni_sim::Model) -> Ctx {
        Ctx {
            mapping: model.mapping,
            features: model.level.into(),
        }
    }
}

/// The machine state after a measurement run.
pub struct MeasureRun {
    /// The processor (cycle counters, registers).
    pub cpu: Cpu,
    /// The interface (output queue holds anything the handler sent).
    pub ni: NetworkInterface,
    /// Local memory.
    pub mem: MemEnv,
}

impl MeasureRun {
    /// Cycles attributed to a class.
    pub fn cycles(&self, class: CostClass) -> u64 {
        self.cpu.stats().class(class).cycles
    }
}

/// Runs `program` under `ctx`/`timing` after applying `stage` to the fresh
/// machine state.
///
/// # Panics
///
/// Panics if the program faults or fails to halt within 100k cycles — a
/// measurement program must terminate cleanly.
pub fn measure(
    ctx: Ctx,
    timing: TimingConfig,
    program: &Program,
    stage: impl FnOnce(&mut Cpu, &mut NetworkInterface, &mut MemEnv),
) -> MeasureRun {
    let config = NiConfig {
        features: ctx.features,
        ..NiConfig::default()
    };
    let mut ni = NetworkInterface::new(config);
    let mut mem = MemEnv::new(64 * 1024);
    let mut cpu = Cpu::new(timing);
    cpu.set_pc(program.base());
    stage(&mut cpu, &mut ni, &mut mem);
    {
        let mut env = NodeEnv {
            mem: &mut mem,
            ni: &mut ni,
            mapping: ctx.mapping,
        };
        while cpu.state().is_running() && cpu.cycle() < 100_000 {
            cpu.step(program, &mut env);
        }
    }
    match cpu.state() {
        CpuState::Halted => {}
        CpuState::Faulted { reason, pc } => {
            panic!("measurement program faulted at {pc:#x}: {reason}\n{program}")
        }
        CpuState::Running => panic!("measurement program did not halt"),
    }
    MeasureRun { cpu, ni, mem }
}

/// Handler-convention registers the harness pre-loads (host-side, costing
/// zero cycles — they are long-lived values a real handler loop keeps
/// resident).
pub mod regs {
    use super::Reg;

    /// NI window base (memory-mapped implementations).
    pub const NI_BASE: Reg = Reg::R9;
    /// Handler-table base (software dispatch on the basic architecture).
    pub const TABLE_BASE: Reg = Reg::R10;
    /// Constant 1 (the FULL presence tag).
    pub const ONE: Reg = Reg::R11;
    /// Constant 2 (the DEFERRED presence tag).
    pub const TWO: Reg = Reg::R12;
    /// Message-id constant (basic-architecture sending).
    pub const MSG_ID: Reg = Reg::R13;
    /// Deferred-node free-list head.
    pub const FREE: Reg = Reg::R14;
    /// Constant 4 (word offset for triadic loads).
    pub const FOUR: Reg = Reg::R4;
}

/// Common memory-layout constants for measurement programs.
pub mod layout {
    /// Base of the dispatch handler table (1 KiB aligned per §2.2.3).
    pub const TABLE: u32 = 0x4000;
    /// Byte address of an I-structure cell's tag word (value at +4).
    pub const CELL: u32 = 0x600;
    /// Base of the deferred-node free list / staged deferred chains.
    pub const NODES: u32 = 0x700;
    /// A thread frame (Send processing stores payload at +8, +12).
    pub const FRAME: u32 = 0x800;
    /// A remote memory location served by Read/Write handlers.
    pub const DATUM: u32 = 0x500;

    /// The slot address for a message type (variant 00).
    pub fn slot(mtype: u8) -> u32 {
        TABLE + u32::from(mtype) * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcni_core::FeatureLevel;
    use tcni_isa::Assembler;

    #[test]
    fn measure_runs_and_attributes() {
        let mut a = Assembler::new();
        a.set_class(CostClass::Communication);
        a.nop();
        a.nop();
        a.set_class(CostClass::Compute);
        a.halt();
        let p = a.assemble().unwrap();
        let ctx = Ctx {
            mapping: NiMapping::OnChipCache,
            features: FeatureLevel::Optimized.into(),
        };
        let run = measure(ctx, TimingConfig::new(), &p, |_, _, _| {});
        assert_eq!(run.cycles(CostClass::Communication), 2);
        assert_eq!(run.cycles(CostClass::Compute), 1);
    }

    #[test]
    #[should_panic(expected = "faulted")]
    fn faulting_program_panics() {
        let mut a = Assembler::new();
        a.ld(Reg::R2, Reg::R0, 0x7FF0); // misaligned? no: beyond? 0x7FF0 < 64k, fine
        a.nop();
        let p = a.assemble().unwrap(); // falls off the end → fetch fault
        let ctx = Ctx {
            mapping: NiMapping::OnChipCache,
            features: FeatureLevel::Optimized.into(),
        };
        let _ = measure(ctx, TimingConfig::new(), &p, |_, _, _| {});
    }
}
