//! # tcni-eval — the paper's evaluation, regenerated
//!
//! This crate reproduces §4 of Henry & Joerg (ASPLOS 1992):
//!
//! * [`table1`] — the per-message cost table, **measured** by executing real
//!   handler programs (from [`handlers`]) on the `tcni-cpu` cycle simulator
//!   coupled to the `tcni-core` interface under all six models;
//! * [`paper`] — the published Table 1, for side-by-side comparison;
//! * [`figure12`] — the program-level evaluation: dynamic TAM counts from
//!   `tcni-tam` expanded into 88100 cycles per model, split into
//!   {non-message work, dispatch, other communication};
//! * [`sweep`] — the §4.2.3 off-chip-latency sensitivity experiment and the
//!   ablation studies (queue sizing, individual optimizations).
//!
//! Every measurement point (model × timing × workload) is independent, so
//! the harness fans them out across threads (see [`par`]); set
//! `TCNI_THREADS=1` or call [`par::set_threads`]`(1)` for the serial path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure12;
pub mod handlers;
pub mod harness;
pub mod paper;
pub mod par;
pub mod protocol;
pub mod sweep;
pub mod table1;
