//! Sensitivity and ablation experiments.
//!
//! * [`offchip_sweep`] — §4.2.3: "Figure 12 assumes a two cycle latency for
//!   reads from the off-chip interface. If, however, the latency is
//!   increased to 8 cycles instead of 2, then the communication costs of the
//!   off-chip optimized model will double. As a result, relegating the
//!   network interface off-chip will not remain a viable alternative…"
//! * [`feature_ablation`] — experiment A2 of DESIGN.md: enable each §2.2
//!   optimization alone and expand the same program counts, attributing the
//!   savings to individual mechanisms.
//! * [`queue_sweep`] — experiment A1: a producer/consumer machine run under
//!   varying output-queue capacities, showing how buffering absorbs bursts
//!   (§2.1.1 flow control made quantitative).

use tcni_core::mapping::gpr_alias;
use tcni_core::{FeatureLevel, FeatureSet, InterfaceReg, NiCmd, NodeId, WireFormat};
use tcni_cpu::TimingConfig;
use tcni_isa::{AluOp, Assembler, Cond, CostClass, MsgType, Reg};
use tcni_net::FabricConfig;
use tcni_sim::{MachineBuilder, Model, NiMapping, RunOutcome};
use tcni_tam::TamCounts;

use crate::figure12::{breakdown, Breakdown, NonMessageCosts};
use crate::table1::Table1;

/// One point of the off-chip latency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffchipPoint {
    /// Extra cycles an off-chip NI load needs before its value is usable.
    pub load_extra: u32,
    /// The optimized off-chip model's breakdown at this latency.
    pub optimized_offchip: Breakdown,
    /// The basic off-chip model's breakdown at this latency.
    pub basic_offchip: Breakdown,
}

/// Sweeps the off-chip load latency, re-measuring Table 1 at each point and
/// expanding the same dynamic counts. Points are measured in parallel.
pub fn offchip_sweep(counts: &TamCounts, extras: &[u32]) -> Vec<OffchipPoint> {
    let base = NonMessageCosts::new();
    crate::par::par_map(extras.to_vec(), |e| {
        let t = Table1::measure_with(TimingConfig::new().with_offchip_load_extra(e));
        OffchipPoint {
            load_extra: e,
            optimized_offchip: breakdown(counts, t.model(Model::ALL_SIX[2]), &base),
            basic_offchip: breakdown(counts, t.model(Model::ALL_SIX[5]), &base),
        }
    })
}

/// One row of the per-optimization ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which mechanisms were enabled.
    pub label: String,
    /// The feature set.
    pub features: FeatureSet,
    /// Communication cycles per placement, in [`NiMapping::ALL`] order
    /// (off-chip, on-chip, register).
    pub comm: [f64; 3],
}

/// Measures the cost table under each optimization alone (and the two
/// corners) and expands `counts`, isolating each mechanism's contribution.
pub fn feature_ablation(counts: &TamCounts) -> Vec<AblationRow> {
    let base = NonMessageCosts::new();
    let sets: [(&str, FeatureSet); 6] = [
        ("none (basic)", FeatureSet::BASIC),
        (
            "encoded types only",
            FeatureSet {
                encoded_types: true,
                ..FeatureSet::BASIC
            },
        ),
        (
            "reply/forward only",
            FeatureSet {
                reply_forward: true,
                ..FeatureSet::BASIC
            },
        ),
        (
            "hw dispatch only",
            FeatureSet {
                hw_dispatch: true,
                ..FeatureSet::BASIC
            },
        ),
        (
            "boundary checks only",
            FeatureSet {
                boundary_checks: true,
                ..FeatureSet::BASIC
            },
        ),
        ("all (optimized)", FeatureSet::OPTIMIZED),
    ];
    crate::par::par_map(sets.to_vec(), |(label, features)| {
        let per_mapping = Table1::measure_features(features, TimingConfig::new());
        let comm = std::array::from_fn(|i| {
            let b = breakdown(counts, &per_mapping[i], &base);
            b.comm()
        });
        AblationRow {
            label: label.to_owned(),
            features,
            comm,
        }
    })
}

/// The 88110MP experiment (extension A3): Table 1 re-measured under dual
/// issue. The paper's industrial implementation "is dual issue and the
/// network interface can execute two coprocessor network instructions per
/// cycle" — pairing independent interface accesses shortens the
/// memory-mapped handler sequences.
pub fn dual_issue_tables() -> (Table1, Table1) {
    let single = Table1::measure_with(TimingConfig::new());
    let dual = Table1::measure_with(TimingConfig::new().with_dual_issue());
    (single, dual)
}

/// One point of the queue-capacity ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePoint {
    /// Output- and input-queue capacity in messages.
    pub capacity: usize,
    /// Machine cycles to deliver and process the whole burst.
    pub cycles: u64,
    /// Producer cycles lost stalling on a full output queue.
    pub producer_env_stalls: u64,
}

const BURST: u16 = 48;
const QUEUE_MSG_TYPE: u8 = 2;

fn producer_program() -> tcni_isa::Program {
    let o0 = gpr_alias(InterfaceReg::O0);
    let o1 = gpr_alias(InterfaceReg::O1);
    let mut a = Assembler::new();
    a.set_class(CostClass::Communication);
    a.ori(Reg::R2, Reg::R0, BURST);
    a.li(Reg::R3, NodeId::new(1).into_word_bits(WireFormat::Compact));
    a.label("loop");
    a.mov(o0, Reg::R3);
    a.mov_ni(
        o1,
        Reg::R2,
        NiCmd::send(MsgType::new(QUEUE_MSG_TYPE).unwrap()),
    );
    a.alu(AluOp::Sub, Reg::R2, Reg::R2, 1u16);
    a.bcnd(Cond::Ne0, Reg::R2, "loop");
    a.nop();
    a.halt();
    a.assemble().expect("producer assembles")
}

fn consumer_program() -> tcni_isa::Program {
    let msgip = gpr_alias(InterfaceReg::MsgIp);
    let mut a = Assembler::new();
    // Host stages IpBase = 0x4000 and r8 = BURST.
    a.label("dispatch");
    a.set_class(CostClass::Dispatch);
    a.jmp(msgip);
    a.set_class(CostClass::Compute);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(0x4000); // type-0 slot: nothing arrived yet
    a.br("dispatch");
    a.nop();
    a.org(0x4000 + u32::from(QUEUE_MSG_TYPE) * 16);
    a.set_class(CostClass::Communication);
    // Per-message work: slow enough that the producer can outrun us.
    for _ in 0..6 {
        a.nop();
    }
    a.mov_ni(Reg::R5, Reg::R0, NiCmd::next());
    a.addi(Reg::R6, Reg::R6, 1);
    a.alu(AluOp::CmpEq, Reg::R7, Reg::R6, Reg::R8);
    a.bcnd(Cond::Ne0, Reg::R7, "done");
    a.nop();
    a.br("dispatch");
    a.nop();
    a.label("done");
    a.halt();
    a.assemble().expect("consumer assembles")
}

/// Runs the producer/consumer burst under each queue capacity.
///
/// # Panics
///
/// Panics if a run fails to quiesce (would indicate a flow-control bug).
pub fn queue_sweep(capacities: &[usize]) -> Vec<QueuePoint> {
    crate::par::par_map(capacities.to_vec(), |cap| {
        let model = Model::new(NiMapping::RegisterFile, FeatureLevel::Optimized);
        // A finite-buffered fabric, so congestion genuinely backs up
        // into the sender's output queue (§2.1.1).
        let mut machine = MachineBuilder::new(2)
            .model(model)
            .ni_queues(cap, cap)
            .program(0, producer_program())
            .program(1, consumer_program())
            .network_fabric(FabricConfig::new(2, 1))
            .build();
        machine
            .node_mut(1)
            .ni_mut()
            .write_reg(InterfaceReg::IpBase, 0x4000)
            .expect("IpBase writable");
        machine
            .node_mut(1)
            .cpu_mut()
            .set_reg(Reg::R8, u32::from(BURST));
        let outcome = machine.run(200_000);
        assert_eq!(
            outcome,
            RunOutcome::Quiescent,
            "queue sweep cap={cap}: {outcome:?}"
        );
        assert_eq!(
            machine.node(1).cpu().reg(Reg::R6),
            u32::from(BURST),
            "all messages processed"
        );
        QueuePoint {
            capacity: cap,
            cycles: machine.cycle(),
            producer_env_stalls: machine.node(0).cpu().stats().env_stalls,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcni_tam::programs;

    fn counts() -> TamCounts {
        programs::matmul::run(8, 4).unwrap().counts
    }

    #[test]
    fn offchip_latency_roughly_doubles_offchip_comm() {
        let c = counts();
        let pts = offchip_sweep(&c, &[2, 8]);
        let ratio = pts[1].optimized_offchip.comm() / pts[0].optimized_offchip.comm();
        assert!(
            (1.5..=2.6).contains(&ratio),
            "§4.2.3 predicts roughly doubled communication cost, got ×{ratio:.2}"
        );
        // Compute work is untouched by interface latency.
        assert_eq!(
            pts[0].optimized_offchip.compute,
            pts[1].optimized_offchip.compute
        );
    }

    #[test]
    fn each_feature_alone_helps_and_all_beat_each() {
        let c = counts();
        let rows = feature_ablation(&c);
        let basic = rows[0].comm;
        let all = rows[5].comm;
        for (i, row) in rows.iter().enumerate().skip(1).take(3) {
            for (p, (got, base)) in row.comm.iter().zip(basic.iter()).enumerate() {
                assert!(
                    got <= &(base + 1e-9),
                    "feature {} must not hurt at placement {p}: {got} vs basic {base}",
                    row.label,
                );
            }
            let helps_somewhere = row
                .comm
                .iter()
                .zip(basic.iter())
                .any(|(g, b)| g < &(b - 1e-9));
            assert!(helps_somewhere, "feature {i} ({}) never helps", row.label);
        }
        for (p, (a, b)) in all.iter().zip(basic.iter()).enumerate() {
            assert!(a < b, "all features must beat basic at {p}");
        }
    }

    #[test]
    fn deeper_queues_absorb_bursts() {
        let pts = queue_sweep(&[2, 16]);
        assert!(
            pts[1].producer_env_stalls <= pts[0].producer_env_stalls,
            "{pts:?}"
        );
        assert!(
            pts[0].producer_env_stalls > 0,
            "shallow queues must stall: {pts:?}"
        );
        assert!(pts[1].cycles <= pts[0].cycles + 8, "{pts:?}");
    }
}
