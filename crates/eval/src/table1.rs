//! Table 1, measured: "the number of 88100 RISC processor cycles it takes
//! each network interface implementation to send a message, to dispatch an
//! arrived message to the appropriate message handler, and to process a
//! message."
//!
//! Every cell is produced by executing the corresponding handler program on
//! the cycle simulator and reading the attributed cycle counters; the
//! staging code also *validates* each handler's architectural effect (the
//! right message sent, the right memory mutated), so the table doubles as a
//! protocol test suite.

use std::fmt;

use tcni_core::mapping::NI_WINDOW_BASE;
use tcni_core::InterfaceReg;
use tcni_cpu::TimingConfig;
use tcni_isa::CostClass;
use tcni_sim::{Model, NiMapping};

use crate::handlers::{dispatch, processing, sending, ProcCase, SendKind};
use crate::harness::{layout, measure, regs, Ctx, MeasureRun};
use crate::protocol;

/// A measured cost, possibly a range (register-mapped sending, where the
/// cost depends on whether values are computed directly into the output
/// registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostRange {
    /// Best case.
    pub min: u32,
    /// Worst case.
    pub max: u32,
}

impl CostRange {
    /// A fixed (non-range) cost.
    pub fn fixed(v: u32) -> CostRange {
        CostRange { min: v, max: v }
    }

    /// A range cost.
    pub fn range(min: u32, max: u32) -> CostRange {
        CostRange { min, max }
    }

    /// The midpoint, used by the Figure-12 expansion ("we expect that the
    /// cost will typically be in the low to middle part of this range" —
    /// §4.1; we take the middle).
    pub fn mid(&self) -> f64 {
        f64::from(self.min + self.max) / 2.0
    }
}

impl fmt::Display for CostRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.min == self.max {
            write!(f, "{}", self.min)
        } else {
            write!(f, "{}-{}", self.min, self.max)
        }
    }
}

/// Measured costs for one of the six models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCosts {
    /// SENDING: Send(0/1/2 words).
    pub send: [CostRange; 3],
    /// SENDING: Read request.
    pub read: CostRange,
    /// SENDING: Write.
    pub write: CostRange,
    /// SENDING: PRead request.
    pub pread: CostRange,
    /// SENDING: PWrite.
    pub pwrite: CostRange,
    /// DISPATCHING.
    pub dispatch: u32,
    /// PROCESSING: Send(0/1/2 words).
    pub proc_send: [u32; 3],
    /// PROCESSING: Read.
    pub proc_read: u32,
    /// PROCESSING: Write.
    pub proc_write: u32,
    /// PROCESSING: PRead (full).
    pub proc_pread_full: u32,
    /// PROCESSING: PRead (empty).
    pub proc_pread_empty: u32,
    /// PROCESSING: PRead (deferred).
    pub proc_pread_deferred: u32,
    /// PROCESSING: PWrite (empty).
    pub proc_pwrite_empty: u32,
    /// PROCESSING: PWrite (deferred) = base + slope·n.
    pub proc_pwrite_deferred_base: u32,
    /// Per-reader slope of the deferred PWrite.
    pub proc_pwrite_deferred_slope: u32,
}

impl ModelCosts {
    /// Sending cost of a kind.
    pub fn sending(&self, kind: SendKind) -> CostRange {
        match kind {
            SendKind::Send(k) => self.send[k],
            SendKind::Read => self.read,
            SendKind::Write => self.write,
            SendKind::PRead => self.pread,
            SendKind::PWrite => self.pwrite,
        }
    }
}

/// The whole measured table: the six models in Table-1 column order.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The timing configuration measured under.
    pub timing: TimingConfig,
    /// Costs per model (see [`Model::ALL_SIX`] for order).
    pub models: [ModelCosts; 6],
}

impl Table1 {
    /// Measures the table under the paper's baseline timing.
    pub fn measure() -> Table1 {
        Table1::measure_with(TimingConfig::new())
    }

    /// Measures the table under an explicit timing configuration (the
    /// off-chip latency sweep of §4.2.3 uses this). The six models are
    /// measured in parallel (each on its own private simulator).
    pub fn measure_with(timing: TimingConfig) -> Table1 {
        let models = crate::par::par_map_array(Model::ALL_SIX, |m| {
            measure_model(Ctx::from_model(m), timing)
        });
        Table1 { timing, models }
    }

    /// Measures the table for an arbitrary feature set at every placement —
    /// the per-optimization ablation. Returns placements in
    /// [`NiMapping::ALL`] order (off-chip, on-chip, register).
    pub fn measure_features(
        features: tcni_core::FeatureSet,
        timing: TimingConfig,
    ) -> [ModelCosts; 3] {
        crate::par::par_map_array(NiMapping::ALL, |mapping| {
            measure_model(Ctx { mapping, features }, timing)
        })
    }

    /// The costs for a model.
    pub fn model(&self, model: Model) -> &ModelCosts {
        let idx = Model::ALL_SIX
            .iter()
            .position(|m| *m == model)
            .expect("one of the six models");
        &self.models[idx]
    }
}

fn stage_common(
    ctx: Ctx,
) -> impl Fn(&mut tcni_cpu::Cpu, &mut tcni_core::NetworkInterface, &mut tcni_cpu::MemEnv) {
    move |cpu, ni, _mem| {
        cpu.set_reg(regs::NI_BASE, NI_WINDOW_BASE);
        cpu.set_reg(regs::TABLE_BASE, layout::TABLE);
        cpu.set_reg(regs::FOUR, 4);
        cpu.set_reg(regs::ONE, 1);
        cpu.set_reg(regs::TWO, 2);
        cpu.set_reg(regs::FREE, layout::NODES);
        if ctx.features.hw_dispatch {
            ni.write_reg(InterfaceReg::IpBase, layout::TABLE)
                .expect("IpBase writable with hardware dispatch");
        }
    }
}

/// Measures one SENDING cell, validating the emitted message.
fn measure_sending(ctx: Ctx, timing: TimingConfig, kind: SendKind, best: bool) -> u32 {
    let program = sending::program(ctx, kind, best);
    let common = stage_common(ctx);
    let run = measure(ctx, timing, &program, |cpu, ni, mem| {
        common(cpu, ni, mem);
        let (r2, r3, r5, r6, r8) = sending::expect::staged(kind);
        cpu.set_reg(tcni_isa::Reg::R2, r2);
        cpu.set_reg(tcni_isa::Reg::R3, r3);
        cpu.set_reg(tcni_isa::Reg::R5, r5);
        cpu.set_reg(tcni_isa::Reg::R6, r6);
        cpu.set_reg(tcni_isa::Reg::R8, r8);
    });
    let mut ni = run.ni;
    let sent = ni
        .pop_outgoing()
        .expect("probe must send exactly one message");
    assert!(
        ni.pop_outgoing().is_none(),
        "probe must send exactly one message"
    );
    let expected = sending::expect::message(kind, ctx.features.encoded_types);
    assert_eq!(sent.words, expected.words, "{kind:?} message payload");
    assert_eq!(sent.mtype, expected.mtype, "{kind:?} message type");
    run.cpu.stats().class(CostClass::Communication).cycles as u32
}

/// Measures the DISPATCHING row with a typed (Read) message.
fn measure_dispatch(ctx: Ctx, timing: TimingConfig) -> u32 {
    let mut a = tcni_isa::Assembler::new();
    dispatch::emit(&mut a, ctx);
    a.org(layout::slot(protocol::TYPE_READ));
    a.set_class(CostClass::Compute);
    a.halt();
    let program = a.assemble().expect("dispatch probe assembles");
    let common = stage_common(ctx);
    let run = measure(ctx, timing, &program, |cpu, ni, mem| {
        common(cpu, ni, mem);
        let probe = processing::probe(ctx, ProcCase::Read);
        ni.push_incoming(probe.incoming).expect("empty input queue");
    });
    run.cycles(CostClass::Dispatch) as u32
}

/// Measures one PROCESSING cell, validating the handler's effect.
fn measure_processing(ctx: Ctx, timing: TimingConfig, case: ProcCase) -> u32 {
    let probe = processing::probe(ctx, case);
    let common = stage_common(ctx);
    let incoming = probe.incoming;
    let run = measure(ctx, timing, &probe.program, |cpu, ni, mem| {
        common(cpu, ni, mem);
        processing::stage_memory(mem, case);
        ni.push_incoming(incoming).expect("empty input queue");
    });
    validate_processing(&run, case, &incoming);
    run.cycles(CostClass::Communication) as u32
}

fn validate_processing(run: &MeasureRun, case: ProcCase, incoming: &tcni_core::Message) {
    let mut ni = run.ni.clone();
    assert!(
        !ni.msg_valid(),
        "{case:?}: handler must consume the message (NEXT)"
    );
    match case {
        ProcCase::Send(k) => {
            if k >= 1 {
                assert_eq!(run.mem.peek(layout::FRAME + 8), 0xD0, "{case:?}: payload 0");
            }
            if k >= 2 {
                assert_eq!(
                    run.mem.peek(layout::FRAME + 12),
                    0xD1,
                    "{case:?}: payload 1"
                );
            }
            assert_eq!(
                run.cpu.reg(tcni_isa::Reg::R2),
                layout::FRAME,
                "{case:?}: FP in thread reg"
            );
        }
        ProcCase::Read => {
            let reply = ni.pop_outgoing().expect("Read must reply");
            assert_eq!(reply.words[0], incoming.words[1], "reply to requester FP");
            assert_eq!(reply.words[1], incoming.words[2], "reply handler IP");
            assert_eq!(reply.words[2], 0x1234, "the requested value");
        }
        ProcCase::Write => {
            assert_eq!(run.mem.peek(layout::DATUM), 0xBEEF);
            assert!(ni.pop_outgoing().is_none(), "Write sends nothing");
        }
        ProcCase::PReadFull => {
            let reply = ni.pop_outgoing().expect("full PRead must reply");
            assert_eq!(reply.words[2], 0x5678);
        }
        ProcCase::PReadEmpty => {
            assert!(ni.pop_outgoing().is_none(), "deferral sends nothing");
            assert_eq!(run.mem.peek(layout::CELL), protocol::tag::DEFERRED);
            assert_eq!(run.mem.peek(layout::CELL + 4), layout::NODES);
            assert_eq!(run.mem.peek(layout::NODES + 4), incoming.words[1]);
            assert_eq!(run.mem.peek(layout::NODES + 8), incoming.words[2]);
            assert_eq!(
                run.cpu.reg(regs::FREE),
                layout::NODES + protocol::node::SIZE,
                "free list advanced"
            );
        }
        ProcCase::PReadDeferred => {
            assert!(ni.pop_outgoing().is_none());
            assert_eq!(
                run.mem.peek(layout::CELL + 4),
                layout::NODES,
                "new node prepended"
            );
            assert_eq!(
                run.mem.peek(layout::NODES),
                layout::NODES + 0x40,
                "new node links to the old head"
            );
        }
        ProcCase::PWriteEmpty => {
            assert!(ni.pop_outgoing().is_none());
            assert_eq!(run.mem.peek(layout::CELL), protocol::tag::FULL);
            assert_eq!(run.mem.peek(layout::CELL + 4), 0xABCD);
        }
        ProcCase::PWriteDeferred(n) => {
            assert_eq!(run.mem.peek(layout::CELL), protocol::tag::FULL);
            assert_eq!(run.mem.peek(layout::CELL + 4), 0xABCD);
            for i in 0..n {
                let reply = ni
                    .pop_outgoing()
                    .unwrap_or_else(|| panic!("reply {i} of {n}"));
                assert_eq!(reply.words[2], 0xABCD, "forwarded value");
                assert_eq!(
                    reply.words[0] & 0x00FF_FFFF,
                    0x800 + i * 0x10,
                    "reader {i} FP"
                );
                assert_eq!(reply.words[1], 0x9100 + i * 4, "reader {i} IP");
            }
            assert!(ni.pop_outgoing().is_none(), "exactly n replies");
        }
    }
}

fn measure_model(ctx: Ctx, timing: TimingConfig) -> ModelCosts {
    let send_range = |kind| {
        if ctx.mapping == NiMapping::RegisterFile {
            CostRange::range(
                measure_sending(ctx, timing, kind, true),
                measure_sending(ctx, timing, kind, false),
            )
        } else {
            CostRange::fixed(measure_sending(ctx, timing, kind, false))
        }
    };
    // Deferred PWrite: sweep n to fit base + slope·n and verify linearity.
    let pw = |n| measure_processing(ctx, timing, ProcCase::PWriteDeferred(n));
    let (c1, c2, c3) = (pw(1), pw(2), pw(3));
    let slope = c2 - c1;
    let base = c1 - slope;
    assert_eq!(c3, base + 3 * slope, "deferred PWrite must be linear in n");

    ModelCosts {
        send: [
            send_range(SendKind::Send(0)),
            send_range(SendKind::Send(1)),
            send_range(SendKind::Send(2)),
        ],
        read: send_range(SendKind::Read),
        write: send_range(SendKind::Write),
        pread: send_range(SendKind::PRead),
        pwrite: send_range(SendKind::PWrite),
        dispatch: measure_dispatch(ctx, timing),
        proc_send: [
            measure_processing(ctx, timing, ProcCase::Send(0)),
            measure_processing(ctx, timing, ProcCase::Send(1)),
            measure_processing(ctx, timing, ProcCase::Send(2)),
        ],
        proc_read: measure_processing(ctx, timing, ProcCase::Read),
        proc_write: measure_processing(ctx, timing, ProcCase::Write),
        proc_pread_full: measure_processing(ctx, timing, ProcCase::PReadFull),
        proc_pread_empty: measure_processing(ctx, timing, ProcCase::PReadEmpty),
        proc_pread_deferred: measure_processing(ctx, timing, ProcCase::PReadDeferred),
        proc_pwrite_empty: measure_processing(ctx, timing, ProcCase::PWriteEmpty),
        proc_pwrite_deferred_base: base,
        proc_pwrite_deferred_slope: slope,
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header = [
            "", "Register", "On-chip", "Off-chip", "Register", "On-chip", "Off-chip",
        ];
        writeln!(
            f,
            "{:<24} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            "", "Optimized", "", "", "Basic", "", ""
        )?;
        writeln!(
            f,
            "{:<24} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            header[0], header[1], header[2], header[3], header[4], header[5], header[6]
        )?;
        let row = |f: &mut fmt::Formatter<'_>,
                   label: &str,
                   get: &dyn Fn(&ModelCosts) -> String|
         -> fmt::Result {
            writeln!(
                f,
                "{:<24} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
                label,
                get(&self.models[0]),
                get(&self.models[1]),
                get(&self.models[2]),
                get(&self.models[3]),
                get(&self.models[4]),
                get(&self.models[5]),
            )
        };
        writeln!(f, "SENDING")?;
        for kind in SendKind::ALL {
            row(f, &format!("  {}", kind.label()), &|m| {
                m.sending(kind).to_string()
            })?;
        }
        writeln!(f, "DISPATCHING")?;
        row(f, "  -", &|m| m.dispatch.to_string())?;
        writeln!(f, "PROCESSING")?;
        for k in 0..3 {
            row(f, &format!("  Send ({k} words)"), &|m| {
                m.proc_send[k].to_string()
            })?;
        }
        row(f, "  Read", &|m| m.proc_read.to_string())?;
        row(f, "  Write", &|m| m.proc_write.to_string())?;
        row(f, "  PRead (full)", &|m| m.proc_pread_full.to_string())?;
        row(f, "  PRead (empty)", &|m| m.proc_pread_empty.to_string())?;
        row(f, "  PRead (deferred)", &|m| {
            m.proc_pread_deferred.to_string()
        })?;
        row(f, "  PWrite (empty)", &|m| m.proc_pwrite_empty.to_string())?;
        row(f, "  PWrite (deferred)", &|m| {
            format!(
                "{}+{}n",
                m.proc_pwrite_deferred_base, m.proc_pwrite_deferred_slope
            )
        })?;
        Ok(())
    }
}
