//! Scoped-thread parallel map — the evaluation harness's only concurrency
//! primitive, built on `std::thread::scope` (no external crates).
//!
//! Every Table-1 cell, sweep point, and ablation row is an independent pure
//! measurement: a private CPU + interface + memory simulated to completion.
//! [`par_map`] fans those out over a shared work queue so the full pipeline
//! scales with cores, while preserving output order.
//!
//! Thread count resolution (first match wins):
//!
//! 1. [`set_threads`] — a process-wide programmatic override (`1` forces the
//!    serial path, used by benches to measure the serial/parallel ratio);
//! 2. the `TCNI_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide override; 0 = resolve automatically.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for all subsequent [`par_map`] calls in this
/// process. `1` forces serial in-place execution (no threads spawned);
/// `0` restores automatic resolution.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`par_map`] would use right now.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    if let Ok(s) = std::env::var("TCNI_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel, returning results in input order.
///
/// Work is distributed dynamically (a shared queue), so unevenly-sized items
/// — e.g. the six Table-1 models, whose handler programs differ in length —
/// balance across workers. With one worker (or one item) it degrades to a
/// plain serial map with no thread spawned, which is the tested fallback for
/// single-core hosts.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // A LIFO queue of (index, item); results carry the index back so the
    // output preserves input order regardless of completion order.
    let queue = Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>());
    let results = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop();
                let Some((i, item)) = job else { break };
                let out = f(item);
                results.lock().expect("results poisoned").push((i, out));
            });
        }
    });
    let mut out = results.into_inner().expect("results poisoned");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, u)| u).collect()
}

/// [`par_map`] over a fixed-size array, preserving the array shape.
pub fn par_map_array<T, U, F, const N: usize>(items: [T; N], f: F) -> [U; N]
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let v = par_map(Vec::from(items), f);
    match v.try_into() {
        Ok(arr) => arr,
        Err(_) => unreachable!("par_map preserves length"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_length() {
        let out = par_map((0..100).collect::<Vec<_>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_override_matches_parallel() {
        let items: Vec<u64> = (0..40).collect();
        set_threads(1);
        let serial = par_map(items.clone(), |i| i * i);
        set_threads(0);
        let auto = par_map(items, |i| i * i);
        assert_eq!(serial, auto);
    }

    #[test]
    fn array_map_keeps_shape() {
        let out = par_map_array([1, 2, 3, 4, 5, 6], |i| i + 10);
        assert_eq!(out, [11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }
}
