//! Scoped-thread parallel map — re-exported from [`tcni_util::par`], the
//! workspace's single threading substrate.
//!
//! Every Table-1 cell, sweep point, and ablation row is an independent pure
//! measurement: a private CPU + interface + memory simulated to completion.
//! [`par_map`] fans those out over a shared work queue so the full pipeline
//! scales with cores, while preserving output order.
//!
//! The implementation (thread-count resolution from `TCNI_THREADS`, the
//! scoped map, and the machine simulator's persistent worker pool) lives in
//! `tcni-util` so eval and sim resolve the thread count in exactly one
//! place; this module remains as the evaluation pipeline's import path.

pub use tcni_util::par::{par_map, par_map_array, set_threads, threads};
