//! Validates the §2.2.3 `NextMsgIp` software pipeline in executed code: a
//! handler that dispatches the next message *while* finishing the current
//! one, sustaining a 3-cycle-per-message Write service loop.

use tcni_core::mapping::gpr_alias;
use tcni_core::{InterfaceReg, Message, MsgType, NiConfig};
use tcni_cpu::{Cpu, CpuState, MemEnv, TimingConfig};
use tcni_eval::handlers::dispatch;
use tcni_eval::protocol::TYPE_WRITE;
use tcni_isa::{Assembler, CostClass, Instr, NiCmd, Operand, Reg};
use tcni_sim::{NiMapping, NodeEnv};

const TABLE: u32 = 0x4000;

#[test]
fn next_msg_ip_pipelines_write_handlers() {
    let i0 = gpr_alias(InterfaceReg::input(0));
    let i1 = gpr_alias(InterfaceReg::input(1));
    let msgip = gpr_alias(InterfaceReg::MsgIp);

    let mut a = Assembler::new();
    // Cold-start dispatch for the first message only.
    a.set_class(CostClass::Dispatch);
    a.jmp(msgip);
    a.set_class(CostClass::Compute);
    a.nop();
    a.org(TABLE); // idle slot: everything processed
    a.halt();
    a.org(TABLE + u32::from(TYPE_WRITE) * 16);
    // The Write handler, software-pipelined: store the current value, then
    // dispatch the next message; the delay slot counts served requests.
    a.set_class(CostClass::Communication);
    a.st_r(i1, i0, Reg::R0);
    dispatch::emit_steady_tail(
        &mut a,
        Instr::Alu {
            op: tcni_isa::AluOp::Add,
            rd: Reg::R6,
            rs1: Reg::R6,
            rs2: Operand::Imm(1),
            ni: NiCmd::NONE,
        },
    );
    let program = a.assemble().unwrap();

    let mut ni = tcni_core::NetworkInterface::new(NiConfig::default());
    ni.write_reg(InterfaceReg::IpBase, TABLE).unwrap();
    let wty = MsgType::new(TYPE_WRITE).unwrap();
    for k in 0..3u32 {
        ni.push_incoming(Message::new([0x500 + 4 * k, 0xA0 + k, 0, 0, 0], wty))
            .unwrap();
    }
    let mut mem = MemEnv::new(64 * 1024);
    let mut cpu = Cpu::new(TimingConfig::new());
    {
        let mut env = NodeEnv {
            mem: &mut mem,
            ni: &mut ni,
            mapping: NiMapping::RegisterFile,
        };
        while cpu.state().is_running() && cpu.cycle() < 1000 {
            cpu.step(&program, &mut env);
        }
    }
    assert_eq!(*cpu.state(), CpuState::Halted);
    for k in 0..3u32 {
        assert_eq!(mem.peek(0x500 + 4 * k), 0xA0 + k, "write {k} must land");
    }
    assert_eq!(cpu.reg(Reg::R6), 3, "delay slot ran once per message");
    assert!(ni.is_quiescent());
    // Steady-state cost: 1 store + 1 dispatch jump + 1 (useful) delay slot
    // per message, plus the cold-start dispatch pair and the final halt.
    assert_eq!(cpu.stats().cycles, 2 + 3 * 3 + 1, "{:?}", cpu.stats());
}

#[test]
fn table1_measurement_is_deterministic() {
    let a = tcni_eval::table1::Table1::measure();
    let b = tcni_eval::table1::Table1::measure();
    assert_eq!(a.models, b.models);
}
