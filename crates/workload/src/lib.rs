//! # tcni-workload — synthetic traffic and offered-load characterization
//!
//! The paper evaluates the tightly-coupled interface on real programs (TAM,
//! Table 1, Figure 12); this crate adds the complementary *synthetic* axis:
//! parameterized traffic patterns driven into the same six §4 interface
//! models over the same two fabrics, swept across offered load to find where
//! each configuration saturates.
//!
//! * [`Pattern`] / [`Topology`] — deterministic destination generators:
//!   uniform-random, nearest-neighbour, transpose, complement, hotspot.
//! * [`Injector`] — a [`tcni_sim::CycleDriver`] that plays every node's
//!   processor: open-loop (fixed offered rate, bounded backlog, shedding
//!   counted) or closed-loop (outstanding-window, reply-driven), with
//!   per-model processor occupancy from the published Table 1.
//! * [`run_open_curve`] / [`run_closed_curve`] — steady-state measurement
//!   windows over warmed-up machines, latency percentiles from the fabric
//!   histograms, and rule-based saturation detection.
//! * [`LoadReport`] — the versioned `tcni-load/1` JSON artifact.
//! * [`run_coll_sweep`] / [`CollReport`] — NIC-combining vs software
//!   collectives (barrier / broadcast / reduce) under a collective-storm
//!   load model, emitted as the versioned `tcni-coll/1` artifact.
//!
//! Everything is integer-arithmetic and seed-deterministic: the same seed
//! yields a byte-identical artifact on any host at any thread count.
//!
//! ## Example
//!
//! ```
//! use tcni_sim::Model;
//! use tcni_workload::{run_open_curve, Fabric, Pattern, SweepConfig, Topology};
//!
//! let mut sweep = SweepConfig::new(Topology::new(2, 2));
//! sweep.warmup = 200;
//! sweep.measure = 400;
//! let curve = run_open_curve(
//!     Model::ALL_SIX[0],
//!     Fabric::Ideal { latency: 2 },
//!     Pattern::Uniform,
//!     &[100, 300],
//!     &sweep,
//! );
//! assert_eq!(curve.points.len(), 2);
//! assert!(curve.points[0].delivered > 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coll;
mod inject;
mod pattern;
mod report;
mod sweep;

pub use coll::{
    run_coll_point, run_coll_sweep, CollMode, CollPoint, CollReport, CollStormConfig, COLL_SCHEMA,
};
pub use inject::{InjectCounters, Injector, InjectorConfig, LoopMode, ServiceCosts};
pub use pattern::{Pattern, Topology, DEFAULT_HOT_PM};
pub use report::{LoadReport, LOAD_SCHEMA};
pub use sweep::{
    detect_saturation, run_closed_curve, run_open_curve, run_point, Curve, Fabric, PointStats,
    SweepConfig, DEFAULT_IDEAL_LATENCY,
};
