//! NIC-combining vs software-emulation collectives.
//!
//! The tentpole comparison for the in-network collective engine: the same
//! all-nodes barrier / broadcast / reduce rounds, run two ways on the same
//! mesh —
//!
//! * **NIC mode** ([`CollMode::Nic`]): the machine is built with the
//!   combining-tree [`Collective`](tcni_sim::Collective) engine; the driver
//!   latches one contribution per node per round
//!   ([`Node::coll_request`](tcni_sim::Node::coll_request)) and polls for
//!   posted completions. Combining happens *in the network interfaces*,
//!   one up-message per tree edge and one down-message per tree edge.
//! * **Software mode** ([`CollMode::Soft`]): the machine has no engine at
//!   all (so the run also proves the engine-off fast path carries real
//!   workloads); the driver emulates the textbook flat scheme over the
//!   architected interface — every node SENDs its contribution to the
//!   root, the root consumes them one per cycle, combines in software, and
//!   SENDs the result back to every node, one per cycle through its single
//!   output port.
//!
//! The *collective storm* load model fires rounds at a per-mille rate
//! ([`CollStormConfig::rate_pm`]; `0` = back-to-back). A round only starts
//! when the previous one has fully completed — storms that outrun the
//! machine are counted as [`CollPoint::deferred`] fires, never stacked.
//!
//! Everything is integer-arithmetic and seed-deterministic: the same
//! config yields a byte-identical [`CollReport`] at any `TCNI_THREADS`.

use std::collections::VecDeque;

use tcni_core::{CollectiveOp, InterfaceReg, MsgType, NetworkInterface, NodeId, SendMode};
use tcni_net::{CombiningTree, FabricConfig, FaultConfig};
use tcni_sim::{CycleDriver, DeliveryConfig, Machine, MachineBuilder, Node, RunOutcome};

use crate::pattern::Topology;
use crate::sweep::Fabric;

/// Which implementation of the collective a point measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollMode {
    /// In-network combining: the machine's [`Collective`](tcni_sim::Collective)
    /// engine over a mesh-embedded combining tree.
    Nic,
    /// Software emulation: flat gather/scatter through the root's processor
    /// over ordinary point-to-point interface traffic.
    Soft,
}

impl CollMode {
    /// Both modes, report order.
    pub const BOTH: [CollMode; 2] = [CollMode::Nic, CollMode::Soft];

    /// Short machine-readable name (stable; used in `tcni-coll/1` output).
    pub fn key(self) -> &'static str {
        match self {
            CollMode::Nic => "nic",
            CollMode::Soft => "soft",
        }
    }
}

/// Shared parameters for every point of a collective sweep.
#[derive(Debug, Clone, Copy)]
pub struct CollStormConfig {
    /// Node grid (and switched-fabric geometry).
    pub topo: Topology,
    /// The fabric under the storm. NIC mode embeds the matching combining
    /// tree: a grid tree on the mesh, a wrap-aware grid tree on the torus,
    /// and a star on the ring / fully-connected / ideal fabrics.
    pub fabric: Fabric,
    /// Master seed for the per-round contribution values.
    pub seed: u64,
    /// Rounds each point completes.
    pub rounds: u32,
    /// Combining-tree radix for NIC mode (see [`CombiningTree::mesh`]).
    pub radix: usize,
    /// Safety cap on cycles per point (a point that cannot finish its
    /// rounds within the cap stops there; `rounds_done` tells).
    pub max_cycles: u64,
    /// In-flight occupancy samples taken across the run (≥ 1).
    pub samples: u32,
    /// Uniform fault rate (per-mille) wrapping the mesh; nonzero requires
    /// [`delivery`](Self::delivery), exactly as in the load sweeps.
    pub fault_pm: u32,
    /// Whether the machine runs the end-to-end delivery protocol.
    pub delivery: bool,
}

impl CollStormConfig {
    /// Defaults: mesh fabric, seed 1, 32 rounds, radix 4, 200k-cycle cap,
    /// 8 samples, fault-free, no protocol.
    pub fn new(topo: Topology) -> CollStormConfig {
        CollStormConfig {
            topo,
            fabric: Fabric::Mesh,
            seed: 1,
            rounds: 32,
            radix: 4,
            max_cycles: 200_000,
            samples: 8,
            fault_pm: 0,
            delivery: false,
        }
    }
}

/// One measured {mode, op, rate} cell. All fixed-point fields are scaled
/// integers so the artifact is bit-identical across hosts and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollPoint {
    /// The implementation measured.
    pub mode: CollMode,
    /// The collective operation.
    pub op: CollectiveOp,
    /// Storm rate in rounds per mille cycles (`0` = back-to-back).
    pub rate_pm: u32,
    /// Rounds that completed (equals the configured target unless the
    /// cycle cap cut the run short).
    pub rounds_done: u32,
    /// Cycles the point ran.
    pub cycles: u64,
    /// Mean completion latency ×100 (request latched → every node holds
    /// the result), or `None` if no round completed.
    pub lat_mean_x100: Option<u64>,
    /// Fastest completed round.
    pub lat_min: Option<u64>,
    /// Slowest completed round.
    pub lat_max: Option<u64>,
    /// Messages the fabric delivered over the whole point — the wire cost
    /// of the chosen scheme.
    pub fabric_delivered: u64,
    /// Mean sampled fabric in-flight occupancy ×100.
    pub inflight_mean_x100: u64,
    /// Peak sampled fabric in-flight occupancy.
    pub inflight_max: u64,
    /// Storm fires that found the previous round still running.
    pub deferred: u64,
    /// Completions whose value disagreed with the host-computed expected
    /// result (always 0 on a healthy machine; the cross-check that both
    /// schemes compute the *same* collective).
    pub wrong_results: u64,
    /// Engine combines folded at interfaces (NIC mode; 0 in software mode).
    pub combined: u64,
    /// Engine up-messages forwarded (NIC mode; 0 in software mode).
    pub forwarded_up: u64,
    /// Engine down-messages fanned out (NIC mode; 0 in software mode).
    pub fanned_down: u64,
}

/// The deterministic per-node contribution for a round — both modes use
/// this exact formula, so their results must agree bit for bit.
fn value_of(seed: u64, round: u32, node: usize) -> u32 {
    let x = seed
        ^ (u64::from(round).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((node as u64).wrapping_add(1)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x >> 32) as u32 ^ (x as u32)
}

/// The result every node must end the round holding (root = node 0 in both
/// modes, matching [`CombiningTree::mesh`]).
fn expected_of(op: CollectiveOp, seed: u64, round: u32, nodes: usize) -> u32 {
    match op {
        CollectiveOp::Barrier => 0,
        CollectiveOp::Bcast => value_of(seed, round, 0),
        CollectiveOp::Sum | CollectiveOp::Min => (0..nodes)
            .map(|i| value_of(seed, round, i))
            .fold(op.identity(), |acc, v| op.combine(acc, v)),
    }
}

/// Round sequencing and latency bookkeeping shared by both drivers: the
/// storm accumulator, the open-round latch, and the completion statistics.
#[derive(Debug)]
struct Storm {
    op: CollectiveOp,
    seed: u64,
    rate_pm: u32,
    target: u32,
    nodes: usize,
    /// Per-mille storm accumulator (`rate_pm == 0` bypasses it).
    acc: u32,
    /// Fires waiting for the machine (capped at 1: a storm never stacks).
    credit: bool,
    round: u32,
    open: bool,
    started_at: u64,
    /// Nodes still to report the current round's result.
    awaiting: usize,
    expected: u32,
    rounds_done: u32,
    deferred: u64,
    wrong: u64,
    lat_sum: u64,
    lat_min: u64,
    lat_max: u64,
}

impl Storm {
    fn new(op: CollectiveOp, seed: u64, rate_pm: u32, target: u32, nodes: usize) -> Storm {
        assert!(rate_pm <= 1000, "storm rate is per-mille: 0..=1000");
        Storm {
            op,
            seed,
            rate_pm,
            target,
            nodes,
            acc: 0,
            credit: false,
            round: 0,
            open: false,
            started_at: 0,
            awaiting: 0,
            expected: 0,
            rounds_done: 0,
            deferred: 0,
            wrong: 0,
            lat_sum: 0,
            lat_min: u64::MAX,
            lat_max: 0,
        }
    }

    /// Accrues the storm rate; returns whether a new round should start
    /// this cycle (only when none is open).
    fn accrue(&mut self) -> bool {
        if self.rounds_done >= self.target {
            return false;
        }
        if self.rate_pm == 0 {
            return !self.open;
        }
        self.acc += self.rate_pm;
        if self.acc >= 1000 {
            self.acc -= 1000;
            if self.open || self.credit {
                // The machine is behind the storm: count it, don't stack.
                self.deferred += 1;
            } else {
                self.credit = true;
            }
        }
        if self.credit && !self.open {
            self.credit = false;
            return true;
        }
        false
    }

    fn start(&mut self, cycle: u64) {
        debug_assert!(!self.open);
        self.open = true;
        self.started_at = cycle;
        self.awaiting = self.nodes;
        self.expected = expected_of(self.op, self.seed, self.round, self.nodes);
    }

    /// One node reported the current round's result.
    fn collect(&mut self, value: u32, cycle: u64) {
        debug_assert!(self.open && self.awaiting > 0);
        if value != self.expected {
            self.wrong += 1;
        }
        self.awaiting -= 1;
        if self.awaiting == 0 {
            self.open = false;
            self.round += 1;
            self.rounds_done += 1;
            let lat = cycle - self.started_at;
            self.lat_sum += lat;
            self.lat_min = self.lat_min.min(lat);
            self.lat_max = self.lat_max.max(lat);
        }
    }

    fn finished(&self) -> bool {
        self.rounds_done >= self.target && !self.open
    }
}

/// The NIC-mode driver: latches contributions, polls completions. The
/// engine and the fabric do everything else.
#[derive(Debug)]
struct NicDriver {
    storm: Storm,
}

impl CycleDriver for NicDriver {
    fn on_cycle(&mut self, cycle: u64, nodes: &mut [Node]) -> bool {
        // Collect completions first: a round can close and a new one fire
        // in the same cycle.
        for node in nodes.iter_mut() {
            while let Some(done) = node.coll_take_done() {
                self.storm.collect(done.value, cycle);
            }
        }
        if self.storm.accrue() {
            let round = self.storm.round;
            let seed = self.storm.seed;
            let op = self.storm.op;
            self.storm.start(cycle);
            for (i, node) in nodes.iter_mut().enumerate() {
                node.coll_request(op, value_of(seed, round, i));
            }
        }
        !self.storm.finished()
    }
}

/// Message-kind tags for the software emulation (low bits of word 0, the
/// same convention as the load injector's kinds).
const KIND_CONTRIB: u32 = 5;
const KIND_RESULT: u32 = 6;
const KIND_MASK: u32 = 0xF;

/// One queued software-emulation send: the two words for O0/O1.
#[derive(Debug, Clone, Copy)]
struct Pending {
    w0: u32,
    w1: u32,
}

/// The software-mode driver: the flat gather/scatter baseline over the
/// architected interface, one costed action per node per cycle.
#[derive(Debug)]
struct SoftDriver {
    storm: Storm,
    format: tcni_core::WireFormat,
    mtype: MsgType,
    /// Per-node unsent messages (contributions at leaves, results at the
    /// root) waiting for the output queue.
    backlog: Vec<VecDeque<Pending>>,
    /// Root-side combine state for the open round.
    acc: u32,
    gathered: usize,
}

impl SoftDriver {
    fn new(storm: Storm, format: tcni_core::WireFormat) -> SoftDriver {
        let nodes = storm.nodes;
        SoftDriver {
            storm,
            format,
            mtype: MsgType::new(2).expect("type 2 is a plain message type"),
            backlog: vec![VecDeque::new(); nodes],
            acc: 0,
            gathered: 0,
        }
    }

    /// The root folded every contribution: report its own completion and
    /// queue the scatter.
    fn root_finish(&mut self, cycle: u64) {
        let result = match self.storm.op {
            CollectiveOp::Barrier => 0,
            CollectiveOp::Bcast => value_of(self.storm.seed, self.storm.round, 0),
            CollectiveOp::Sum | CollectiveOp::Min => self.acc,
        };
        for i in 1..self.storm.nodes {
            let dest = NodeId::from_index(i);
            self.backlog[0].push_back(Pending {
                w0: dest.into_word_bits(self.format) | KIND_RESULT,
                w1: result,
            });
        }
        self.storm.collect(result, cycle);
    }

    /// Consumes the message in node `i`'s input registers.
    fn receive(&mut self, i: usize, cycle: u64, ni: &mut NetworkInterface) {
        let w0 = ni.read_reg(InterfaceReg::I0).expect("I0 readable");
        let w1 = ni.read_reg(InterfaceReg::I1).expect("I1 readable");
        ni.next();
        match w0 & KIND_MASK {
            KIND_CONTRIB => {
                debug_assert_eq!(i, 0, "contributions flow to the root");
                self.acc = self.storm.op.combine(self.acc, w1);
                self.gathered += 1;
                if self.gathered == self.storm.nodes - 1 {
                    self.root_finish(cycle);
                }
            }
            KIND_RESULT => self.storm.collect(w1, cycle),
            _ => unreachable!("the soft collective is the only traffic source"),
        }
    }
}

impl CycleDriver for SoftDriver {
    fn on_cycle(&mut self, cycle: u64, nodes: &mut [Node]) -> bool {
        if self.storm.accrue() {
            let round = self.storm.round;
            let seed = self.storm.seed;
            self.storm.start(cycle);
            // The root's own contribution is a local combine; everyone
            // else gathers to it over the wire.
            self.acc = self
                .storm
                .op
                .combine(self.storm.op.identity(), value_of(seed, round, 0));
            self.gathered = 0;
            if self.storm.nodes == 1 {
                self.root_finish(cycle);
            }
            let root = NodeId::from_index(0);
            for i in 1..self.storm.nodes {
                self.backlog[i].push_back(Pending {
                    w0: root.into_word_bits(self.format) | KIND_CONTRIB,
                    w1: value_of(seed, round, i),
                });
            }
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            let ni = node.ni_mut();
            if ni.msg_valid() {
                self.receive(i, cycle, ni);
            } else if let Some(&p) = self.backlog[i].front() {
                if ni.send_would_stall() {
                    continue; // full output queue: retry next cycle
                }
                ni.write_reg(InterfaceReg::O0, p.w0).expect("O0 writable");
                ni.write_reg(InterfaceReg::O1, p.w1).expect("O1 writable");
                ni.send(SendMode::Send, self.mtype).expect("send accepted");
                self.backlog[i].pop_front();
            }
        }
        !self.storm.finished()
    }
}

/// Salt separating the fault schedule from the contribution values.
const COLL_FAULT_SALT: u64 = 0x5851_F42D_4C95_7F2D;

fn build_machine(mode: CollMode, cfg: &CollStormConfig) -> Machine {
    let topo = &cfg.topo;
    let mut b = MachineBuilder::new(topo.nodes());
    b = match cfg.fabric {
        Fabric::Ideal { latency } => b.network_ideal(latency),
        Fabric::Mesh => b.network_fabric(FabricConfig::new(topo.width, topo.height)),
        Fabric::Torus => b.network_fabric(FabricConfig::torus(topo.width, topo.height)),
        Fabric::Ring => b.network_fabric(FabricConfig::ring(topo.nodes())),
        Fabric::Full => b.network_fabric(FabricConfig::full(topo.nodes())),
    };
    if cfg.fault_pm > 0 {
        b = b.network_fault(FaultConfig::uniform(
            cfg.seed ^ COLL_FAULT_SALT,
            cfg.fault_pm,
        ));
    }
    if cfg.delivery {
        b = b.delivery(DeliveryConfig::default());
    }
    if mode == CollMode::Nic {
        // The tree that actually embeds in the chosen fabric: grid trees
        // follow the grid links (wrap-aware on the torus); topologies with
        // no grid at all take the geometry-free star.
        let tree = match cfg.fabric {
            Fabric::Ideal { .. } | Fabric::Mesh => {
                CombiningTree::mesh(topo.width, topo.height, cfg.radix)
            }
            Fabric::Torus => CombiningTree::torus(topo.width, topo.height, cfg.radix),
            Fabric::Ring | Fabric::Full => CombiningTree::star(topo.nodes()),
        };
        b = b.collective(tree);
    }
    b.build()
}

/// Runs one {mode, op, rate} point to completion (or the cycle cap).
pub fn run_coll_point(
    mode: CollMode,
    op: CollectiveOp,
    rate_pm: u32,
    cfg: &CollStormConfig,
) -> CollPoint {
    assert!(
        cfg.fault_pm == 0 || cfg.delivery,
        "a faulty fabric needs the delivery protocol (dropped messages \
         would wedge a collective round forever)"
    );
    let mut machine = build_machine(mode, cfg);
    let storm = Storm::new(op, cfg.seed, rate_pm, cfg.rounds, cfg.topo.nodes());
    let chunk = (cfg.max_cycles / u64::from(cfg.samples.max(1))).max(1);
    let (mut inflight_sum, mut inflight_max, mut samples) = (0u64, 0u64, 0u64);
    let mut run_chunks = |machine: &mut Machine, driver: &mut dyn DynDriver| loop {
        let left = cfg.max_cycles - machine.cycle();
        let outcome = driver.drive(machine, chunk.min(left));
        let inflight = machine.net_in_flight() as u64;
        inflight_sum += inflight;
        inflight_max = inflight_max.max(inflight);
        samples += 1;
        if outcome == RunOutcome::DriverStopped || machine.cycle() >= cfg.max_cycles {
            break;
        }
    };
    let storm = match mode {
        CollMode::Nic => {
            let mut driver = NicDriver { storm };
            run_chunks(&mut machine, &mut driver);
            driver.storm
        }
        CollMode::Soft => {
            let format = machine.wire_format();
            let mut driver = SoftDriver::new(storm, format);
            run_chunks(&mut machine, &mut driver);
            driver.storm
        }
    };
    let coll_stats = machine.collective_stats().unwrap_or_default();
    let done = storm.rounds_done;
    CollPoint {
        mode,
        op,
        rate_pm,
        rounds_done: done,
        cycles: machine.cycle(),
        lat_mean_x100: (done > 0).then(|| storm.lat_sum * 100 / u64::from(done)),
        lat_min: (done > 0).then_some(storm.lat_min),
        lat_max: (done > 0).then_some(storm.lat_max),
        fabric_delivered: machine.net_stats().delivered,
        inflight_mean_x100: inflight_sum * 100 / samples.max(1),
        inflight_max,
        deferred: storm.deferred,
        wrong_results: storm.wrong,
        combined: coll_stats.combined,
        forwarded_up: coll_stats.forwarded_up,
        fanned_down: coll_stats.fanned_down,
    }
}

/// Object-safe shim so [`run_coll_point`] can share its chunked run loop
/// across the two concrete driver types.
trait DynDriver {
    fn drive(&mut self, machine: &mut Machine, cycles: u64) -> RunOutcome;
}

impl DynDriver for NicDriver {
    fn drive(&mut self, machine: &mut Machine, cycles: u64) -> RunOutcome {
        machine.run_driven(self, cycles)
    }
}

impl DynDriver for SoftDriver {
    fn drive(&mut self, machine: &mut Machine, cycles: u64) -> RunOutcome {
        machine.run_driven(self, cycles)
    }
}

/// Runs the full grid: both modes × the given ops × the given storm rates,
/// in that nesting order.
pub fn run_coll_sweep(
    ops: &[CollectiveOp],
    rates_pm: &[u32],
    cfg: &CollStormConfig,
) -> Vec<CollPoint> {
    let mut points = Vec::with_capacity(2 * ops.len() * rates_pm.len());
    for mode in CollMode::BOTH {
        for &op in ops {
            for &rate_pm in rates_pm {
                points.push(run_coll_point(mode, op, rate_pm, cfg));
            }
        }
    }
    points
}

/// Schema identifier for the collective artifact.
pub const COLL_SCHEMA: &str = "tcni-coll/1";

/// A complete collective run: the shared storm parameters plus one point
/// per {mode, op, rate} cell, serialized as the versioned `tcni-coll/1`
/// JSON artifact.
///
/// Schema:
///
/// ```json
/// {
///   "schema": "tcni-coll/1",
///   "topology": {"width": W, "height": H, "nodes": N},
///   "seed": S, "rounds": R, "radix": K, "max_cycles": M,
///   "rates_pm": [...],
///   "points": [
///     {"mode": "nic", "op": "barrier", "rate_pm": r, "rounds_done": n,
///      "cycles": c, "lat_mean_x100": n-or-null, "lat_min": n-or-null,
///      "lat_max": n-or-null, "fabric_delivered": n,
///      "inflight_mean_x100": n, "inflight_max": n, "deferred": n,
///      "wrong_results": n, "combined": n, "forwarded_up": n,
///      "fanned_down": n}, ...]
/// }
/// ```
///
/// Non-mesh runs carry a top-level `"fabric"` key (`"torus"`, `"ring"`,
/// `"full"`, or `"ideal"`); mesh runs omit it, keeping pre-topology mesh
/// goldens byte-identical. Faulted runs additionally carry `"fault_pm"`
/// and `"delivery"` at the top level; fault-free runs omit both
/// (golden-enforced). Every numeric field is an integer, so same-config
/// runs serialize byte-identically at any `TCNI_THREADS`.
#[derive(Debug, Clone)]
pub struct CollReport {
    /// The shared storm parameters.
    pub config: CollStormConfig,
    /// The storm-rate axis the sweep walked.
    pub rates_pm: Vec<u32>,
    /// All points, in sweep order (mode-major, then op, then rate).
    pub points: Vec<CollPoint>,
}

impl CollReport {
    /// Serializes the report (see the type docs for the schema).
    pub fn to_json(&self) -> String {
        fn num(o: &mut String, v: u64) {
            o.push_str(&v.to_string());
        }
        fn opt(o: &mut String, v: Option<u64>) {
            match v {
                Some(v) => num(o, v),
                None => o.push_str("null"),
            }
        }
        let mut o = String::with_capacity(512 + self.points.len() * 256);
        o.push_str("{\n  \"schema\": \"");
        o.push_str(COLL_SCHEMA);
        o.push_str("\",\n  \"topology\": {\"width\": ");
        num(&mut o, self.config.topo.width as u64);
        o.push_str(", \"height\": ");
        num(&mut o, self.config.topo.height as u64);
        o.push_str(", \"nodes\": ");
        num(&mut o, self.config.topo.nodes() as u64);
        o.push_str("},\n  \"seed\": ");
        num(&mut o, self.config.seed);
        o.push_str(",\n  \"rounds\": ");
        num(&mut o, u64::from(self.config.rounds));
        o.push_str(",\n  \"radix\": ");
        num(&mut o, self.config.radix as u64);
        o.push_str(",\n  \"max_cycles\": ");
        num(&mut o, self.config.max_cycles);
        if self.config.fabric != Fabric::Mesh {
            o.push_str(",\n  \"fabric\": \"");
            o.push_str(self.config.fabric.key());
            o.push('"');
        }
        if self.config.fault_pm > 0 {
            o.push_str(",\n  \"fault_pm\": ");
            num(&mut o, u64::from(self.config.fault_pm));
            o.push_str(",\n  \"delivery\": ");
            o.push_str(if self.config.delivery {
                "true"
            } else {
                "false"
            });
        }
        o.push_str(",\n  \"rates_pm\": [");
        for (i, &r) in self.rates_pm.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            num(&mut o, u64::from(r));
        }
        o.push_str("],\n  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    {\"mode\": \"");
            o.push_str(p.mode.key());
            o.push_str("\", \"op\": \"");
            o.push_str(p.op.key());
            o.push_str("\", \"rate_pm\": ");
            num(&mut o, u64::from(p.rate_pm));
            o.push_str(", \"rounds_done\": ");
            num(&mut o, u64::from(p.rounds_done));
            o.push_str(", \"cycles\": ");
            num(&mut o, p.cycles);
            o.push_str(", \"lat_mean_x100\": ");
            opt(&mut o, p.lat_mean_x100);
            o.push_str(", \"lat_min\": ");
            opt(&mut o, p.lat_min);
            o.push_str(", \"lat_max\": ");
            opt(&mut o, p.lat_max);
            o.push_str(", \"fabric_delivered\": ");
            num(&mut o, p.fabric_delivered);
            o.push_str(", \"inflight_mean_x100\": ");
            num(&mut o, p.inflight_mean_x100);
            o.push_str(", \"inflight_max\": ");
            num(&mut o, p.inflight_max);
            o.push_str(", \"deferred\": ");
            num(&mut o, p.deferred);
            o.push_str(", \"wrong_results\": ");
            num(&mut o, p.wrong_results);
            o.push_str(", \"combined\": ");
            num(&mut o, p.combined);
            o.push_str(", \"forwarded_up\": ");
            num(&mut o, p.forwarded_up);
            o.push_str(", \"fanned_down\": ");
            num(&mut o, p.fanned_down);
            o.push('}');
        }
        if !self.points.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("]\n}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CollStormConfig {
        let mut c = CollStormConfig::new(Topology::new(4, 4));
        c.rounds = 8;
        c.max_cycles = 40_000;
        c
    }

    #[test]
    fn nic_point_completes_all_rounds_with_correct_results() {
        for op in CollectiveOp::ALL {
            let p = run_coll_point(CollMode::Nic, op, 0, &cfg());
            assert_eq!(p.rounds_done, 8, "{op:?}: {p:?}");
            assert_eq!(p.wrong_results, 0, "{op:?}: {p:?}");
            assert!(p.lat_mean_x100.is_some());
            assert!(p.combined > 0, "combines happen at interfaces: {p:?}");
            assert!(p.forwarded_up > 0 && p.fanned_down > 0, "{p:?}");
        }
    }

    #[test]
    fn soft_point_completes_all_rounds_with_correct_results() {
        for op in CollectiveOp::ALL {
            let p = run_coll_point(CollMode::Soft, op, 0, &cfg());
            assert_eq!(p.rounds_done, 8, "{op:?}: {p:?}");
            assert_eq!(p.wrong_results, 0, "{op:?}: {p:?}");
            assert_eq!(
                (p.combined, p.forwarded_up, p.fanned_down),
                (0, 0, 0),
                "no engine in software mode"
            );
        }
    }

    #[test]
    fn nic_combining_beats_the_flat_software_gather() {
        // The headline claim at 4×4; the 16×16 version is pinned by the
        // root-level collectives test.
        for op in [CollectiveOp::Barrier, CollectiveOp::Sum] {
            let nic = run_coll_point(CollMode::Nic, op, 0, &cfg());
            let soft = run_coll_point(CollMode::Soft, op, 0, &cfg());
            assert!(
                nic.lat_mean_x100 < soft.lat_mean_x100,
                "{op:?}: nic {:?} vs soft {:?}",
                nic.lat_mean_x100,
                soft.lat_mean_x100
            );
        }
    }

    #[test]
    fn storm_rate_defers_instead_of_stacking() {
        let mut c = cfg();
        c.rounds = 4;
        // 500 per-mille fires a round every 2 cycles — far faster than a
        // 16-node collective completes, so fires must be deferred.
        let p = run_coll_point(CollMode::Nic, CollectiveOp::Barrier, 500, &c);
        assert_eq!(p.rounds_done, 4);
        assert!(p.deferred > 0, "{p:?}");
    }

    #[test]
    fn points_are_deterministic() {
        let go = |mode| run_coll_point(mode, CollectiveOp::Min, 10, &cfg());
        assert_eq!(go(CollMode::Nic), go(CollMode::Nic));
        assert_eq!(go(CollMode::Soft), go(CollMode::Soft));
    }

    #[test]
    fn collectives_survive_a_faulty_fabric_under_the_protocol() {
        let mut c = cfg();
        c.rounds = 4;
        c.fault_pm = 30;
        c.delivery = true;
        for mode in CollMode::BOTH {
            let p = run_coll_point(mode, CollectiveOp::Sum, 0, &c);
            assert_eq!(p.rounds_done, 4, "{mode:?}: {p:?}");
            assert_eq!(p.wrong_results, 0, "{mode:?}: {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "needs the delivery protocol")]
    fn faults_without_the_protocol_are_rejected() {
        let mut c = cfg();
        c.fault_pm = 50;
        run_coll_point(CollMode::Nic, CollectiveOp::Barrier, 0, &c);
    }

    #[test]
    fn collectives_complete_on_every_switched_topology() {
        // The NIC engine rides whatever tree matches the fabric — grid on
        // mesh, wrap-aware grid on torus, star on ring/full — and every
        // one of them finishes its rounds with bit-correct results.
        for fabric in [Fabric::Mesh, Fabric::Torus, Fabric::Ring, Fabric::Full] {
            let mut c = cfg();
            c.fabric = fabric;
            c.rounds = 4;
            for mode in CollMode::BOTH {
                let p = run_coll_point(mode, CollectiveOp::Sum, 0, &c);
                assert_eq!(p.rounds_done, 4, "{fabric:?}/{mode:?}: {p:?}");
                assert_eq!(p.wrong_results, 0, "{fabric:?}/{mode:?}: {p:?}");
            }
        }
    }

    #[test]
    fn torus_collective_storm_survives_faults() {
        // The ISSUE acceptance point: an 8×8 torus collective storm under
        // 25‰ uniform faults (with the delivery protocol) never reports a
        // wrong result.
        let mut c = CollStormConfig::new(Topology::new(8, 8));
        c.fabric = Fabric::Torus;
        c.rounds = 4;
        c.max_cycles = 100_000;
        c.fault_pm = 25;
        c.delivery = true;
        for op in [CollectiveOp::Barrier, CollectiveOp::Sum] {
            let p = run_coll_point(CollMode::Nic, op, 0, &c);
            assert_eq!(p.rounds_done, 4, "{op:?}: {p:?}");
            assert_eq!(p.wrong_results, 0, "{op:?}: {p:?}");
            assert!(p.combined > 0, "combining happened in-network: {p:?}");
        }
    }

    #[test]
    fn non_mesh_reports_carry_the_fabric_key() {
        let mut c = cfg();
        c.fabric = Fabric::Torus;
        c.rounds = 2;
        let rates = vec![0];
        let points = run_coll_sweep(&[CollectiveOp::Barrier], &rates, &c);
        let report = CollReport {
            config: c,
            rates_pm: rates,
            points,
        };
        assert!(report.to_json().contains("\"fabric\": \"torus\""));
    }

    #[test]
    fn report_json_is_versioned_and_balanced() {
        let mut c = cfg();
        c.rounds = 2;
        let rates = vec![0];
        let points = run_coll_sweep(&[CollectiveOp::Barrier], &rates, &c);
        assert_eq!(points.len(), 2, "one per mode");
        let report = CollReport {
            config: c,
            rates_pm: rates,
            points,
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"tcni-coll/1\""));
        assert!(json.contains("\"mode\": \"nic\""));
        assert!(json.contains("\"mode\": \"soft\""));
        assert!(json.contains("\"op\": \"barrier\""));
        assert!(json.contains("\"lat_mean_x100\": "));
        assert!(!json.contains("fault_pm"), "fault-free runs omit the axis");
        assert!(
            !json.contains("\"fabric\""),
            "mesh runs omit the fabric key"
        );
        assert!(json.ends_with("]\n}\n"));
        let depth: i64 = json
            .chars()
            .map(|ch| match ch {
                '{' | '[' => 1,
                '}' | ']' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(depth, 0);
        assert_eq!(json, report.to_json(), "serialization is deterministic");
    }
}
