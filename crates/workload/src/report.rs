//! The versioned `tcni-load/1` artifact: throughput–latency curves as JSON.
//!
//! Hand-rolled like the simulator's `tcni-trace/1` (the workspace is
//! dependency-free). Every numeric field is an integer (fixed-point where a
//! fraction is needed), so two same-seed runs — at any `TCNI_THREADS` —
//! serialize byte-identically.
//!
//! Schema (`tcni-load/1`):
//!
//! ```json
//! {
//!   "schema": "tcni-load/1",
//!   "topology": {"width": W, "height": H, "nodes": N},
//!   "seed": S, "warmup_cycles": ..., "measure_cycles": ...,
//!   "rates_pm": [...], "windows": [...],
//!   "curves": [
//!     {"model": "opt-reg", "fabric": "mesh", "pattern": "uniform",
//!      "mode": "open", "saturation_index": i-or-null,
//!      "points": [
//!        {"load": r, "cycles": c, "offered": n, "shed": n, "issued": n,
//!         "delivered": n, "consumed": n, "completed": n, "delivered_pm": n,
//!         "mean_latency_x100": n-or-null, "p50": n-or-null,
//!         "p95": n-or-null, "p99": n-or-null,
//!         "residency_mean_x100": n, "residency_max": n}, ...]}, ...]
//! }
//! ```
//!
//! `load` is the offered rate in per-mille (open loop) or the window size
//! (closed loop); `delivered_pm` is delivered messages per node per 1000
//! cycles, directly comparable to an open-loop `load`. Percentiles use the
//! histogram's upper-bound-of-bucket convention and are `null` when the
//! window delivered nothing.
//!
//! Runs with a fault axis additionally carry `"fault_rates_pm": [...]` at
//! the top level, `"fault_pm"`/`"delivery"` per curve, and
//! `"fault_dropped"`, `"fault_duplicated"`, `"fault_corrupted"`,
//! `"fault_stalls"`, `"retransmits"`, `"abandoned"`, `"goodput_pm"` per
//! point. A run without a fault axis omits all of them, so legacy artifacts
//! are byte-identical (enforced by the golden-artifact tests).

use crate::pattern::Topology;
use crate::sweep::Curve;

/// Schema identifier for the load artifact.
pub const LOAD_SCHEMA: &str = "tcni-load/1";

/// A complete load-generation run: shared sweep parameters plus one curve
/// per {model, fabric, pattern, mode} cell.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Node grid.
    pub topo: Topology,
    /// Master seed.
    pub seed: u64,
    /// Warmup cycles per point.
    pub warmup: u64,
    /// Measurement-window cycles per point.
    pub measure: u64,
    /// The open-loop load axis (per-mille offered rates, ascending).
    pub rates_pm: Vec<u32>,
    /// The closed-loop load axis (window sizes, ascending; empty when the
    /// run is open-loop only).
    pub windows: Vec<u32>,
    /// The fault-rate axis (uniform per-mille fault rates, one sweep of
    /// every cell per rate). Empty = fault-free legacy run, and the report
    /// serializes byte-identically to the pre-fault schema — no fault or
    /// protocol fields appear anywhere in the JSON.
    pub fault_rates_pm: Vec<u32>,
    /// All curves, in cell order.
    pub curves: Vec<Curve>,
}

fn push_num(out: &mut String, v: u64) {
    out.push_str(&v.to_string());
}

fn push_opt(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => push_num(out, v),
        None => out.push_str("null"),
    }
}

fn push_axis(out: &mut String, axis: &[u32]) {
    out.push('[');
    for (i, &v) in axis.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_num(out, u64::from(v));
    }
    out.push(']');
}

impl LoadReport {
    /// Serializes the report (see the module docs for the schema).
    pub fn to_json(&self) -> String {
        let points: usize = self.curves.iter().map(|c| c.points.len()).sum();
        let mut o = String::with_capacity(1024 + self.curves.len() * 128 + points * 224);
        o.push_str("{\n  \"schema\": \"");
        o.push_str(LOAD_SCHEMA);
        o.push_str("\",\n  \"topology\": {\"width\": ");
        push_num(&mut o, self.topo.width as u64);
        o.push_str(", \"height\": ");
        push_num(&mut o, self.topo.height as u64);
        o.push_str(", \"nodes\": ");
        push_num(&mut o, self.topo.nodes() as u64);
        o.push_str("},\n  \"seed\": ");
        push_num(&mut o, self.seed);
        o.push_str(",\n  \"warmup_cycles\": ");
        push_num(&mut o, self.warmup);
        o.push_str(",\n  \"measure_cycles\": ");
        push_num(&mut o, self.measure);
        o.push_str(",\n  \"rates_pm\": ");
        push_axis(&mut o, &self.rates_pm);
        o.push_str(",\n  \"windows\": ");
        push_axis(&mut o, &self.windows);
        // The fault axis and its per-curve/per-point fields appear only on
        // faulted runs, keeping fault-free artifacts byte-identical to the
        // original schema (golden-enforced).
        let faulted = !self.fault_rates_pm.is_empty();
        if faulted {
            o.push_str(",\n  \"fault_rates_pm\": ");
            push_axis(&mut o, &self.fault_rates_pm);
        }
        o.push_str(",\n  \"curves\": [");
        for (ci, c) in self.curves.iter().enumerate() {
            if ci > 0 {
                o.push(',');
            }
            o.push_str("\n    {\"model\": \"");
            o.push_str(c.model.key());
            o.push_str("\", \"fabric\": \"");
            o.push_str(c.fabric.key());
            o.push_str("\", \"pattern\": \"");
            o.push_str(c.pattern.key());
            o.push_str("\", \"mode\": \"");
            o.push_str(c.mode);
            o.push('"');
            if faulted {
                o.push_str(", \"fault_pm\": ");
                push_num(&mut o, u64::from(c.fault_pm));
                o.push_str(", \"delivery\": ");
                o.push_str(if c.delivery { "true" } else { "false" });
            }
            o.push_str(", \"saturation_index\": ");
            push_opt(&mut o, c.saturation.map(|i| i as u64));
            o.push_str(", \"points\": [");
            for (pi, p) in c.points.iter().enumerate() {
                if pi > 0 {
                    o.push(',');
                }
                o.push_str("\n      {\"load\": ");
                push_num(&mut o, u64::from(p.load));
                o.push_str(", \"cycles\": ");
                push_num(&mut o, p.cycles);
                o.push_str(", \"offered\": ");
                push_num(&mut o, p.offered);
                o.push_str(", \"shed\": ");
                push_num(&mut o, p.shed);
                o.push_str(", \"issued\": ");
                push_num(&mut o, p.issued);
                o.push_str(", \"delivered\": ");
                push_num(&mut o, p.delivered);
                o.push_str(", \"consumed\": ");
                push_num(&mut o, p.consumed);
                o.push_str(", \"completed\": ");
                push_num(&mut o, p.completed);
                o.push_str(", \"delivered_pm\": ");
                push_num(&mut o, p.delivered_pm);
                o.push_str(", \"mean_latency_x100\": ");
                push_opt(&mut o, p.mean_latency_x100);
                o.push_str(", \"p50\": ");
                push_opt(&mut o, p.p50);
                o.push_str(", \"p95\": ");
                push_opt(&mut o, p.p95);
                o.push_str(", \"p99\": ");
                push_opt(&mut o, p.p99);
                o.push_str(", \"residency_mean_x100\": ");
                push_num(&mut o, p.residency_mean_x100);
                o.push_str(", \"residency_max\": ");
                push_num(&mut o, p.residency_max);
                if faulted {
                    o.push_str(", \"fault_dropped\": ");
                    push_num(&mut o, p.fault_dropped);
                    o.push_str(", \"fault_duplicated\": ");
                    push_num(&mut o, p.fault_duplicated);
                    o.push_str(", \"fault_corrupted\": ");
                    push_num(&mut o, p.fault_corrupted);
                    o.push_str(", \"fault_stalls\": ");
                    push_num(&mut o, p.fault_stalls);
                    o.push_str(", \"retransmits\": ");
                    push_num(&mut o, p.retransmits);
                    o.push_str(", \"abandoned\": ");
                    push_num(&mut o, p.abandoned);
                    o.push_str(", \"goodput_pm\": ");
                    push_num(&mut o, p.goodput_pm);
                }
                o.push('}');
            }
            if !c.points.is_empty() {
                o.push_str("\n    ");
            }
            o.push_str("]}");
        }
        if !self.curves.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("]\n}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::sweep::{run_open_curve, Fabric, SweepConfig};
    use tcni_sim::Model;

    fn tiny_report() -> LoadReport {
        let mut sweep = SweepConfig::new(Topology::new(2, 2));
        sweep.warmup = 200;
        sweep.measure = 800;
        sweep.samples = 2;
        let rates = vec![100, 400];
        let curves = vec![run_open_curve(
            Model::ALL_SIX[0],
            Fabric::Ideal { latency: 2 },
            Pattern::Uniform,
            &rates,
            &sweep,
        )];
        LoadReport {
            topo: sweep.topo,
            seed: sweep.seed,
            warmup: sweep.warmup,
            measure: sweep.measure,
            rates_pm: rates,
            windows: Vec::new(),
            fault_rates_pm: Vec::new(),
            curves,
        }
    }

    #[test]
    fn json_is_versioned_and_carries_the_curve() {
        let json = tiny_report().to_json();
        assert!(json.starts_with("{\n  \"schema\": \"tcni-load/1\""));
        assert!(json.contains("\"model\": \"opt-reg\""));
        assert!(json.contains("\"fabric\": \"ideal\""));
        assert!(json.contains("\"pattern\": \"uniform\""));
        assert!(json.contains("\"mode\": \"open\""));
        assert!(json.contains("\"load\": 100"));
        assert!(json.contains("\"load\": 400"));
        assert!(json.contains("\"p99\": "));
        assert!(json.ends_with("]\n}\n"));
        // Brace balance — cheap structural sanity for hand-rolled JSON.
        let depth: i64 = json
            .chars()
            .map(|c| match c {
                '{' | '[' => 1,
                '}' | ']' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(depth, 0);
    }

    #[test]
    fn same_seed_reports_serialize_identically() {
        assert_eq!(tiny_report().to_json(), tiny_report().to_json());
    }

    #[test]
    fn fault_free_reports_omit_every_fault_field() {
        let json = tiny_report().to_json();
        for key in [
            "fault_rates_pm",
            "fault_pm",
            "delivery",
            "fault_dropped",
            "goodput_pm",
        ] {
            assert!(!json.contains(key), "legacy schema must not carry {key}");
        }
    }

    #[test]
    fn faulted_reports_carry_the_fault_axis_and_goodput() {
        let mut sweep = SweepConfig::new(Topology::new(2, 2));
        sweep.warmup = 200;
        sweep.measure = 800;
        sweep.samples = 2;
        sweep.fault_pm = 100;
        sweep.delivery = true;
        let rates = vec![200];
        let curves = vec![run_open_curve(
            Model::ALL_SIX[0],
            Fabric::Ideal { latency: 2 },
            Pattern::Uniform,
            &rates,
            &sweep,
        )];
        let report = LoadReport {
            topo: sweep.topo,
            seed: sweep.seed,
            warmup: sweep.warmup,
            measure: sweep.measure,
            rates_pm: rates,
            windows: Vec::new(),
            fault_rates_pm: vec![0, 100],
            curves,
        };
        let json = report.to_json();
        assert!(json.contains("\"fault_rates_pm\": [0, 100]"), "{json}");
        assert!(
            json.contains("\"fault_pm\": 100, \"delivery\": true"),
            "{json}"
        );
        assert!(json.contains("\"fault_dropped\": "), "{json}");
        assert!(json.contains("\"retransmits\": "), "{json}");
        assert!(json.contains("\"goodput_pm\": "), "{json}");
        let depth: i64 = json
            .chars()
            .map(|c| match c {
                '{' | '[' => 1,
                '}' | ']' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(depth, 0);
    }
}
