//! Offered-load sweeps and saturation detection.
//!
//! A *point* is one steady-state measurement: build a machine, drive it with
//! an [`Injector`] through a warmup, then measure a fixed window and report
//! the window's delivered throughput, latency percentiles (from the fabric's
//! power-of-two histogram, [`LatencyHist::since`]-differenced against the
//! warmup snapshot) and queue residency. A *curve* walks the load axis —
//! offered rate for open loop, window size for closed loop — and marks the
//! saturation point.
//!
//! **Saturation rule** (documented in `EXPERIMENTS.md`). Point *i* is
//! saturated when either:
//!
//! * *Shedding* (open loop only) — at least 10% of the window's offers were
//!   shed at full backlogs: the generator could not even hand the traffic to
//!   the interface, which happens when the per-model processor occupancy is
//!   the bottleneck (the fabric itself may stay uncongested); or
//! * *Plateau and divergence*, measured against point *i−1* and the curve's
//!   first point — the marginal delivered count is less than half the
//!   marginal offered count (open loop; closed loop: doubling the window
//!   improves delivered count by less than 10%), **and** p99 latency or
//!   peak queue residency is at least 4× the first (uncongested) point's
//!   value.
//!
//! The conjunction in the second arm avoids both false positives (a plateau
//! caused by a pattern running out of destinations, with latency flat) and
//! false negatives (latency creep while throughput still scales); the
//! shedding arm catches processor-bound saturation the fabric never sees.

use tcni_net::{FabricConfig, FaultConfig, LatencyHist, NetStats};
use tcni_sim::{DeliveryConfig, DeliveryStats, Machine, MachineBuilder, Model};

use crate::inject::{InjectCounters, Injector, InjectorConfig, LoopMode, ServiceCosts};
use crate::pattern::{Pattern, Topology};

/// Which fabric a sweep cell instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fabric {
    /// The ideal fixed-latency network.
    Ideal {
        /// Constant fabric latency in cycles.
        latency: u64,
    },
    /// The 2-D wormhole mesh with finite buffers and backpressure.
    Mesh,
    /// The wrap-around 2-D torus (same grid, dateline-disciplined wrap
    /// links).
    Torus,
    /// The bidirectional ring over `width × height` nodes.
    Ring,
    /// The fully-connected fabric: every pair one hop apart.
    Full,
}

/// The ideal fabric's default latency for sweeps (matches the paper's
/// assumed low-latency network).
pub const DEFAULT_IDEAL_LATENCY: u64 = 2;

impl Fabric {
    /// Both fabrics, sweep default order.
    pub const BOTH: [Fabric; 2] = [
        Fabric::Ideal {
            latency: DEFAULT_IDEAL_LATENCY,
        },
        Fabric::Mesh,
    ];

    /// Short machine-readable name (stable; used in `tcni-load/1` output).
    pub fn key(&self) -> &'static str {
        match self {
            Fabric::Ideal { .. } => "ideal",
            Fabric::Mesh => "mesh",
            Fabric::Torus => "torus",
            Fabric::Ring => "ring",
            Fabric::Full => "full",
        }
    }

    /// Parses a fabric name as accepted by the `loadgen` CLI: `ideal`,
    /// `ideal:N` (explicit latency), or a switched topology — `mesh`,
    /// `torus`, `ring`, `full`.
    pub fn parse(s: &str) -> Option<Fabric> {
        Some(match s {
            "ideal" => Fabric::Ideal {
                latency: DEFAULT_IDEAL_LATENCY,
            },
            "mesh" => Fabric::Mesh,
            "torus" => Fabric::Torus,
            "ring" => Fabric::Ring,
            "full" => Fabric::Full,
            _ => Fabric::Ideal {
                latency: s.strip_prefix("ideal:")?.parse().ok()?,
            },
        })
    }
}

/// Sweep parameters shared by every cell of a run.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Node grid (and mesh geometry).
    pub topo: Topology,
    /// Master seed.
    pub seed: u64,
    /// Cycles run (and discarded) before the measurement window.
    pub warmup: u64,
    /// Measurement-window length in cycles.
    pub measure: u64,
    /// Residency samples taken across the window (≥ 1).
    pub samples: u32,
    /// Per-node injector backlog bound.
    pub backlog_limit: usize,
    /// Uniform fault rate applied to every fault kind (drop, duplicate,
    /// corrupt, stall) in per-mille; `0` leaves the fabric unwrapped and the
    /// run bit-identical to a pre-fault sweep. Nonzero rates require
    /// [`delivery`](Self::delivery) — without the protocol a corrupted or
    /// dropped message breaks the injector's request/reply bookkeeping.
    pub fault_pm: u32,
    /// Whether the machine runs the end-to-end delivery protocol.
    pub delivery: bool,
    /// Replace the per-model Table-1 service costs with
    /// [`ServiceCosts::unit`]: every send/receive occupies the node for one
    /// cycle, so the *fabric* is the only bottleneck. This is the topology
    /// sensitivity mode — on the paper models the processor occupancy caps
    /// per-node throughput well below any 16×16 fabric's bisection, hiding
    /// the mesh/torus difference the wrap links create.
    pub unit_costs: bool,
}

impl SweepConfig {
    /// Defaults: 4×4 grid, seed 1, 2000-cycle warmup, 6000-cycle window,
    /// 8 residency samples, backlog 16, Table-1 service costs.
    pub fn new(topo: Topology) -> SweepConfig {
        SweepConfig {
            topo,
            seed: 1,
            warmup: 2000,
            measure: 6000,
            samples: 8,
            backlog_limit: 16,
            fault_pm: 0,
            delivery: false,
            unit_costs: false,
        }
    }
}

/// One steady-state measurement. All quantities cover the measurement
/// window only (warmup excluded); fixed-point fields are scaled integers so
/// the artifact is bit-identical across hosts and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointStats {
    /// The load-axis value: offered rate in per-mille (open loop) or window
    /// size (closed loop).
    pub load: u32,
    /// Window length in cycles.
    pub cycles: u64,
    /// Messages the load model generated.
    pub offered: u64,
    /// Offers shed at full backlogs (open loop).
    pub shed: u64,
    /// Messages accepted by interface SENDs (includes closed-loop replies).
    pub issued: u64,
    /// Messages the fabric delivered.
    pub delivered: u64,
    /// Messages consumed at receivers.
    pub consumed: u64,
    /// Closed-loop round trips completed.
    pub completed: u64,
    /// Delivered throughput in messages per node per 1000 cycles — the same
    /// unit as the open-loop offered rate, so the two axes are comparable.
    pub delivered_pm: u64,
    /// Mean fabric latency ×100, or `None` if the window delivered nothing.
    pub mean_latency_x100: Option<u64>,
    /// Window latency percentiles (upper-bound-of-bucket convention, see
    /// [`LatencyHist::percentile`]); `None` if the window delivered nothing.
    pub p50: Option<u64>,
    /// 95th percentile.
    pub p95: Option<u64>,
    /// 99th percentile.
    pub p99: Option<u64>,
    /// Mean sampled queue residency ×100 (injector backlogs + interface
    /// queues + fabric in-flight + delivery-protocol buffers).
    pub residency_mean_x100: u64,
    /// Peak sampled queue residency.
    pub residency_max: u64,
    /// Messages the fault layer dropped inside the window (`0` on a
    /// fault-free run).
    pub fault_dropped: u64,
    /// Messages the fault layer duplicated inside the window.
    pub fault_duplicated: u64,
    /// Messages the fault layer corrupted inside the window.
    pub fault_corrupted: u64,
    /// Transient port stalls the fault layer started inside the window.
    pub fault_stalls: u64,
    /// Data copies the delivery protocol queued for retransmission inside
    /// the window (`0` with the protocol off).
    pub retransmits: u64,
    /// Messages the delivery protocol abandoned (retransmit budget spent).
    pub abandoned: u64,
    /// Goodput in messages per node per 1000 cycles: unique in-order
    /// protocol deliveries when the protocol is on (duplicates and
    /// retransmitted copies excluded), otherwise identical to
    /// `delivered_pm`. The fault axis degrades this, not `delivered_pm`.
    pub goodput_pm: u64,
}

/// One throughput–latency curve: a load axis walked upward for a fixed
/// {model, fabric, pattern, loop mode} cell.
#[derive(Debug, Clone)]
pub struct Curve {
    /// The §4 interface model.
    pub model: Model,
    /// The fabric.
    pub fabric: Fabric,
    /// The traffic pattern.
    pub pattern: Pattern,
    /// `"open"` or `"closed"`.
    pub mode: &'static str,
    /// One point per load-axis value, in the order given.
    pub points: Vec<PointStats>,
    /// Index into `points` of the first saturated point, if any (see the
    /// module docs for the rule).
    pub saturation: Option<usize>,
    /// The uniform fault rate this curve ran under (per-mille; `0` =
    /// fault-free).
    pub fault_pm: u32,
    /// Whether the end-to-end delivery protocol was enabled.
    pub delivery: bool,
}

/// Total message-queue residency across the whole machine: generator
/// backlogs, interface input/output queues (and the input registers), and
/// messages inside the fabric.
fn residency(machine: &Machine, injector: &Injector) -> u64 {
    let queues: u64 = machine
        .nodes()
        .iter()
        .map(|n| {
            let ni = n.ni();
            (ni.output_len() + ni.input_len() + usize::from(ni.msg_valid())) as u64
        })
        .sum();
    injector.backlog() + queues + machine.net_in_flight() as u64 + machine.delivery_residency()
}

/// Salt separating the fault layer's fault schedule from the injector's
/// destination draws (both derive from the sweep's master seed).
const FAULT_SEED_SALT: u64 = 0x6C62_272E_07BB_0142;

/// Builds the cell's machine: CPUs halt immediately (the injector is the
/// only actor), fabric per `fabric`, queue sizing per the paper's example,
/// fault layer and delivery protocol per the sweep config.
fn build_machine(model: Model, fabric: Fabric, sweep: &SweepConfig) -> Machine {
    let topo = &sweep.topo;
    let mut b = MachineBuilder::new(topo.nodes()).model(model);
    b = match fabric {
        Fabric::Ideal { latency } => b.network_ideal(latency),
        Fabric::Mesh => b.network_fabric(FabricConfig::new(topo.width, topo.height)),
        Fabric::Torus => b.network_fabric(FabricConfig::torus(topo.width, topo.height)),
        Fabric::Ring => b.network_fabric(FabricConfig::ring(topo.nodes())),
        Fabric::Full => b.network_fabric(FabricConfig::full(topo.nodes())),
    };
    if sweep.fault_pm > 0 {
        b = b.network_fault(FaultConfig::uniform(
            sweep.seed ^ FAULT_SEED_SALT,
            sweep.fault_pm,
        ));
    }
    if sweep.delivery {
        b = b.delivery(DeliveryConfig::default());
    }
    b.build()
}

/// Runs one steady-state point.
pub fn run_point(
    model: Model,
    fabric: Fabric,
    pattern: Pattern,
    mode: LoopMode,
    sweep: &SweepConfig,
) -> PointStats {
    assert!(
        sweep.fault_pm == 0 || sweep.delivery,
        "a faulty fabric needs the delivery protocol (corrupted or dropped \
         messages break the injector's request/reply bookkeeping)"
    );
    let mut machine = build_machine(model, fabric, sweep);
    let mut injector = Injector::new(InjectorConfig {
        pattern,
        topo: sweep.topo,
        mode,
        seed: sweep.seed,
        backlog_limit: sweep.backlog_limit,
        costs: if sweep.unit_costs {
            ServiceCosts::unit()
        } else {
            ServiceCosts::for_model(model)
        },
        format: machine.wire_format(),
    });
    machine.run_driven(&mut injector, sweep.warmup);
    let base_stats: NetStats = machine.net_stats();
    let base_counts: InjectCounters = injector.counters();
    let base_hist: LatencyHist = base_stats.latency_hist;
    let base_delivery: DeliveryStats = machine.delivery_stats().unwrap_or_default();

    // The measurement window, chopped into residency-sampling chunks.
    let samples = sweep.samples.max(1);
    let chunk = (sweep.measure / u64::from(samples)).max(1);
    let mut run = 0;
    let (mut res_sum, mut res_max, mut res_n) = (0u64, 0u64, 0u64);
    while run < sweep.measure {
        let step = chunk.min(sweep.measure - run);
        machine.run_driven(&mut injector, step);
        run += step;
        let r = residency(&machine, &injector);
        res_sum += r;
        res_max = res_max.max(r);
        res_n += 1;
    }

    let stats = machine.net_stats();
    let counts = injector.counters();
    let hist = stats.latency_hist.since(&base_hist);
    let delivered = stats.delivered - base_stats.delivered;
    let total_latency = stats.total_latency - base_stats.total_latency;
    let faults = stats.faults.since(&base_stats.faults);
    let delivery = machine.delivery_stats().unwrap_or_default();
    let n = sweep.topo.nodes() as u64;
    let per_node_pm = |count: u64| {
        u64::try_from(u128::from(count) * 1000 / u128::from(sweep.measure * n))
            .expect("throughput fits")
    };
    PointStats {
        load: match mode {
            LoopMode::Open { rate_pm } => rate_pm,
            LoopMode::Closed { window } => window,
        },
        cycles: sweep.measure,
        offered: counts.offered - base_counts.offered,
        shed: counts.shed - base_counts.shed,
        issued: counts.issued - base_counts.issued,
        delivered,
        consumed: counts.consumed - base_counts.consumed,
        completed: counts.completed - base_counts.completed,
        delivered_pm: per_node_pm(delivered),
        mean_latency_x100: (delivered > 0).then(|| total_latency * 100 / delivered),
        p50: hist.percentile(50),
        p95: hist.percentile(95),
        p99: hist.percentile(99),
        residency_mean_x100: res_sum * 100 / res_n,
        residency_max: res_max,
        fault_dropped: faults.dropped,
        fault_duplicated: faults.duplicated,
        fault_corrupted: faults.corrupted,
        fault_stalls: faults.stalls,
        retransmits: delivery.retransmits - base_delivery.retransmits,
        abandoned: delivery.abandoned - base_delivery.abandoned,
        goodput_pm: if sweep.delivery {
            per_node_pm(delivery.delivered_unique - base_delivery.delivered_unique)
        } else {
            per_node_pm(delivered)
        },
    }
}

/// Applies the saturation rule (module docs) to a curve's points. `open`
/// selects the open-loop plateau test; the closed-loop test assumes the
/// load axis roughly doubles per point.
pub fn detect_saturation(points: &[PointStats], open: bool) -> Option<usize> {
    let first = points.first()?;
    let p99_floor = first.p99.unwrap_or(0).max(1);
    let res_floor = first.residency_max.max(1);
    for (i, cur) in points.iter().enumerate() {
        if open && cur.offered > 0 && cur.shed * 10 >= cur.offered {
            return Some(i);
        }
        let Some(prev) = i.checked_sub(1).map(|j| &points[j]) else {
            continue;
        };
        let plateau = if open {
            let d_off = cur.offered.saturating_sub(prev.offered);
            let d_del = cur.delivered.saturating_sub(prev.delivered);
            d_off > 0 && 2 * d_del < d_off
        } else {
            // Less than 10% more throughput for a bigger window.
            cur.delivered * 10 < prev.delivered * 11
        };
        let diverged = cur.p99.unwrap_or(0) >= 4 * p99_floor || cur.residency_max >= 4 * res_floor;
        if plateau && diverged {
            return Some(i);
        }
    }
    None
}

/// Walks an open-loop curve: one point per offered rate (per-mille,
/// ascending).
pub fn run_open_curve(
    model: Model,
    fabric: Fabric,
    pattern: Pattern,
    rates_pm: &[u32],
    sweep: &SweepConfig,
) -> Curve {
    let points: Vec<PointStats> = rates_pm
        .iter()
        .map(|&rate_pm| run_point(model, fabric, pattern, LoopMode::Open { rate_pm }, sweep))
        .collect();
    let saturation = detect_saturation(&points, true);
    Curve {
        model,
        fabric,
        pattern,
        mode: "open",
        points,
        saturation,
        fault_pm: sweep.fault_pm,
        delivery: sweep.delivery,
    }
}

/// Walks a closed-loop curve: one point per window size (ascending,
/// conventionally doubling).
pub fn run_closed_curve(
    model: Model,
    fabric: Fabric,
    pattern: Pattern,
    windows: &[u32],
    sweep: &SweepConfig,
) -> Curve {
    let points: Vec<PointStats> = windows
        .iter()
        .map(|&window| run_point(model, fabric, pattern, LoopMode::Closed { window }, sweep))
        .collect();
    let saturation = detect_saturation(&points, false);
    Curve {
        model,
        fabric,
        pattern,
        mode: "closed",
        points,
        saturation,
        fault_pm: sweep.fault_pm,
        delivery: sweep.delivery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> SweepConfig {
        let mut s = SweepConfig::new(Topology::new(2, 2));
        s.warmup = 500;
        s.measure = 2000;
        s.samples = 4;
        s
    }

    #[test]
    fn light_load_delivers_what_it_offers() {
        let p = run_point(
            Model::ALL_SIX[0],
            Fabric::Ideal { latency: 2 },
            Pattern::Uniform,
            LoopMode::Open { rate_pm: 100 },
            &sweep(),
        );
        assert_eq!(p.offered, 4 * 2000 * 100 / 1000);
        assert_eq!(p.shed, 0);
        // Steady state: the window delivers within a queue-depth of offers.
        assert!(p.delivered + 64 >= p.offered, "{p:?}");
        assert!(p.p50.is_some() && p.p99.is_some());
        assert!(p.p50 <= p.p99);
        assert_eq!(p.delivered_pm, p.delivered * 1000 / (4 * 2000));
    }

    #[test]
    fn open_curve_finds_saturation_on_the_mesh() {
        // basic-off: the shared send+recv occupancy caps per-node capacity
        // well under 100 per-mille; offering up to 800 must saturate.
        let curve = run_open_curve(
            Model::ALL_SIX[5],
            Fabric::Mesh,
            Pattern::Uniform,
            &[20, 200, 500, 800],
            &sweep(),
        );
        assert_eq!(curve.points.len(), 4);
        let sat = curve.saturation.expect("overdriven curve saturates");
        assert!(sat >= 1);
        let s = &curve.points[sat];
        assert!(s.shed > 0 || s.residency_max > curve.points[0].residency_max);
        // The load axis is monotone and throughput never exceeds offers.
        for w in curve.points.windows(2) {
            assert!(w[0].load < w[1].load);
        }
        for p in &curve.points {
            assert!(p.delivered <= p.offered + 64, "{p:?}");
        }
    }

    #[test]
    fn closed_curve_is_self_throttling() {
        let curve = run_closed_curve(
            Model::ALL_SIX[0],
            Fabric::Ideal { latency: 2 },
            Pattern::Neighbor,
            &[1, 2, 4],
            &sweep(),
        );
        for p in &curve.points {
            assert_eq!(p.shed, 0, "closed loop never sheds");
            assert!(p.completed > 0, "round trips complete: {p:?}");
        }
        // Bigger windows never hurt delivered throughput much; the curve is
        // (weakly) increasing until the round-trip pipe is full.
        assert!(curve.points[1].delivered + 16 >= curve.points[0].delivered);
    }

    #[test]
    fn points_are_deterministic() {
        let go = || {
            run_point(
                Model::ALL_SIX[3],
                Fabric::Mesh,
                Pattern::Hotspot { hot_pm: 300 },
                LoopMode::Open { rate_pm: 300 },
                &sweep(),
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn fault_free_points_report_zero_fault_activity() {
        let p = run_point(
            Model::ALL_SIX[0],
            Fabric::Ideal { latency: 2 },
            Pattern::Uniform,
            LoopMode::Open { rate_pm: 100 },
            &sweep(),
        );
        assert_eq!(
            (
                p.fault_dropped,
                p.fault_duplicated,
                p.fault_corrupted,
                p.fault_stalls
            ),
            (0, 0, 0, 0)
        );
        assert_eq!((p.retransmits, p.abandoned), (0, 0));
        assert_eq!(
            p.goodput_pm, p.delivered_pm,
            "no protocol: goodput is throughput"
        );
    }

    #[test]
    fn fault_axis_counts_faults_and_recovers_with_retransmits() {
        let mut s = sweep();
        s.measure = 4000;
        s.fault_pm = 100;
        s.delivery = true;
        for fabric in [Fabric::Ideal { latency: 2 }, Fabric::Mesh] {
            let p = run_point(
                Model::ALL_SIX[0],
                fabric,
                Pattern::Uniform,
                LoopMode::Open { rate_pm: 200 },
                &s,
            );
            let fault_total =
                p.fault_dropped + p.fault_duplicated + p.fault_corrupted + p.fault_stalls;
            assert!(fault_total > 0, "10% fault rates must fire: {p:?}");
            assert!(
                p.retransmits > 0,
                "drops must trigger retransmission: {p:?}"
            );
            assert!(p.goodput_pm > 0, "the protocol still makes progress: {p:?}");
            // Raw fabric deliveries include acks, duplicates, and
            // retransmitted copies; goodput counts none of them.
            assert!(p.goodput_pm < p.delivered_pm, "{p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "needs the delivery protocol")]
    fn faults_without_the_protocol_are_rejected() {
        let mut s = sweep();
        s.fault_pm = 50;
        run_point(
            Model::ALL_SIX[0],
            Fabric::Ideal { latency: 2 },
            Pattern::Uniform,
            LoopMode::Open { rate_pm: 100 },
            &s,
        );
    }

    #[test]
    fn faulty_points_are_deterministic() {
        let go = || {
            let mut s = sweep();
            s.fault_pm = 80;
            s.delivery = true;
            run_point(
                Model::ALL_SIX[0],
                Fabric::Mesh,
                Pattern::Uniform,
                LoopMode::Open { rate_pm: 250 },
                &s,
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn fabric_parse_round_trips() {
        assert_eq!(Fabric::parse("ideal"), Some(Fabric::Ideal { latency: 2 }));
        assert_eq!(Fabric::parse("ideal:7"), Some(Fabric::Ideal { latency: 7 }));
        for (s, f) in [
            ("mesh", Fabric::Mesh),
            ("torus", Fabric::Torus),
            ("ring", Fabric::Ring),
            ("full", Fabric::Full),
        ] {
            assert_eq!(Fabric::parse(s), Some(f));
            assert_eq!(f.key(), s);
        }
        assert_eq!(Fabric::parse("hypercube"), None);
    }

    #[test]
    fn every_switched_topology_sweeps() {
        // The same steady-state point runs on every switched fabric; light
        // uniform load delivers on all of them, deterministically.
        for fabric in [Fabric::Mesh, Fabric::Torus, Fabric::Ring, Fabric::Full] {
            let go = || {
                run_point(
                    Model::ALL_SIX[0],
                    fabric,
                    Pattern::Uniform,
                    LoopMode::Open { rate_pm: 100 },
                    &sweep(),
                )
            };
            let p = go();
            assert!(p.delivered > 0, "{fabric:?} delivers: {p:?}");
            assert_eq!(p.shed, 0, "{fabric:?} light load never sheds");
            assert_eq!(p, go(), "{fabric:?} points are deterministic");
        }
    }
}
