//! Deterministic synthetic traffic patterns.
//!
//! Every pattern maps a *source* node to a *destination* node over a logical
//! `width × height` grid (the same grid the [`Fabric`](tcni_net::Fabric)
//! fabric routes on; the ideal fabric simply ignores the geometry). Random
//! patterns draw from a caller-supplied SplitMix64 [`Rng`] — one independent
//! stream per node — so a whole run is reproducible from a single seed and
//! independent of host, thread count, and evaluation order.
//!
//! The menu is the classical NoC characterization set: uniform-random and
//! hotspot stress global capacity; nearest-neighbour is the friendly
//! baseline; bit-transpose and bit-complement are the adversarial
//! permutations that concentrate load on the mesh bisection.

use tcni_check::Rng;
use tcni_core::NodeId;

/// The logical node grid a pattern addresses.
///
/// Matches [`FabricConfig`](tcni_net::FabricConfig)'s `width × height` when the
/// fabric is the mesh; on the ideal fabric the grid is only the pattern's
/// coordinate system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Grid width (columns); node `i` sits at `(i % width, i / width)`.
    pub width: usize,
    /// Grid height (rows).
    pub height: usize,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid or one exceeding the wide-format address
    /// space ([`NodeId::MAX_NODES`]).
    pub fn new(width: usize, height: usize) -> Topology {
        assert!(width > 0 && height > 0, "empty topology");
        assert!(
            width * height <= NodeId::MAX_NODES,
            "NodeId address space is {} nodes",
            NodeId::MAX_NODES
        );
        Topology { width, height }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }
}

/// A synthetic destination pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Uniform-random over all *other* nodes (self-sends excluded).
    Uniform,
    /// Ring successor `(i + 1) mod n` — on a row-major mesh this is the +x
    /// neighbour except at row ends, the same shape as the `netstats` ring
    /// workload.
    Neighbor,
    /// Matrix transpose `(x, y) → (y, x)`; requires a square grid. Diagonal
    /// nodes have no partner and generate no traffic ([`dest`](Pattern::dest)
    /// returns `None` for them).
    Transpose,
    /// Index complement `i → n − 1 − i` (bit-complement for power-of-two
    /// `n`): every message crosses the mesh centre.
    Complement,
    /// `hot_pm` per-mille of traffic converges on node 0; the rest is
    /// uniform-random over the other nodes.
    Hotspot {
        /// Per-mille of messages addressed to the hot node (`0..=1000`).
        hot_pm: u32,
    },
}

/// The default hotspot skew: 20% of all traffic to node 0.
pub const DEFAULT_HOT_PM: u32 = 200;

impl Pattern {
    /// The patterns the load generator sweeps by default.
    pub const DEFAULT_SET: [Pattern; 4] = [
        Pattern::Uniform,
        Pattern::Neighbor,
        Pattern::Complement,
        Pattern::Hotspot {
            hot_pm: DEFAULT_HOT_PM,
        },
    ];

    /// Short machine-readable name (stable; used in `tcni-load/1` output).
    pub fn key(&self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Neighbor => "neighbor",
            Pattern::Transpose => "transpose",
            Pattern::Complement => "complement",
            Pattern::Hotspot { .. } => "hotspot",
        }
    }

    /// Parses a pattern name as accepted by the `loadgen` CLI: a
    /// [`key`](Pattern::key), with `hotspot` optionally carrying a skew as
    /// `hotspot:NNN` (per-mille).
    pub fn parse(s: &str) -> Option<Pattern> {
        Some(match s {
            "uniform" => Pattern::Uniform,
            "neighbor" => Pattern::Neighbor,
            "transpose" => Pattern::Transpose,
            "complement" => Pattern::Complement,
            "hotspot" => Pattern::Hotspot {
                hot_pm: DEFAULT_HOT_PM,
            },
            _ => {
                let pm = s.strip_prefix("hotspot:")?.parse().ok()?;
                if pm > 1000 {
                    return None;
                }
                Pattern::Hotspot { hot_pm: pm }
            }
        })
    }

    /// Whether the pattern is defined on this topology.
    pub fn supports(&self, topo: &Topology) -> bool {
        match self {
            Pattern::Transpose => topo.width == topo.height,
            _ => topo.nodes() >= 2,
        }
    }

    /// The destination for one message from `src`, or `None` when the
    /// pattern gives `src` no partner (a transpose-diagonal node, or a
    /// degenerate one-node grid). Random patterns advance `rng`; fixed
    /// permutations never touch it.
    ///
    /// # Panics
    ///
    /// Panics if `src` is outside the topology or the pattern does not
    /// support it (see [`supports`](Pattern::supports)).
    pub fn dest(&self, src: usize, topo: &Topology, rng: &mut Rng) -> Option<NodeId> {
        let n = topo.nodes();
        assert!(src < n, "source {src} outside {n}-node topology");
        let id = NodeId::from_index;
        match self {
            Pattern::Uniform => Some(id(uniform_other(src, n, rng)?)),
            Pattern::Neighbor => {
                if n < 2 {
                    return None;
                }
                Some(id((src + 1) % n))
            }
            Pattern::Transpose => {
                assert!(self.supports(topo), "transpose needs a square grid");
                let (x, y) = (src % topo.width, src / topo.width);
                if x == y {
                    return None;
                }
                Some(id(x * topo.width + y))
            }
            Pattern::Complement => {
                let d = n - 1 - src;
                if d == src {
                    return None;
                }
                Some(id(d))
            }
            Pattern::Hotspot { hot_pm } => {
                const HOT: usize = 0;
                if src != HOT && rng.below(1000) < u64::from(*hot_pm) {
                    return Some(id(HOT));
                }
                Some(id(uniform_other(src, n, rng)?))
            }
        }
    }
}

/// A uniform node index in `[0, n)` excluding `src`.
fn uniform_other(src: usize, n: usize, rng: &mut Rng) -> Option<usize> {
    if n < 2 {
        return None;
    }
    let d = rng.below(n as u64 - 1) as usize;
    Some(if d >= src { d + 1 } else { d })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(4, 4)
    }

    #[test]
    fn destinations_are_valid_and_never_self() {
        let topo = topo();
        for pattern in [
            Pattern::Uniform,
            Pattern::Neighbor,
            Pattern::Transpose,
            Pattern::Complement,
            Pattern::Hotspot { hot_pm: 500 },
        ] {
            let mut rng = Rng::new(1);
            for src in 0..topo.nodes() {
                for _ in 0..100 {
                    if let Some(d) = pattern.dest(src, &topo, &mut rng) {
                        assert!(d.index() < topo.nodes(), "{pattern:?}");
                        assert_ne!(d.index(), src, "{pattern:?} self-send");
                    }
                }
            }
        }
    }

    #[test]
    fn fixed_patterns_are_permutations() {
        let topo = topo();
        let mut rng = Rng::new(0);
        // Complement is a full permutation; transpose permutes off-diagonal.
        let mut seen = [false; 16];
        for src in 0..16 {
            let d = Pattern::Complement
                .dest(src, &topo, &mut rng)
                .expect("even n: total");
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
        assert_eq!(
            Pattern::Transpose.dest(6, &topo, &mut rng), // (2,1) → (1,2)
            Some(NodeId::new(9))
        );
        assert_eq!(Pattern::Transpose.dest(5, &topo, &mut rng), None); // diagonal
    }

    #[test]
    fn hotspot_skews_toward_node_zero() {
        let topo = topo();
        let mut rng = Rng::new(7);
        let pattern = Pattern::Hotspot { hot_pm: 500 };
        let mut hot = 0;
        let trials = 4000;
        for _ in 0..trials {
            if pattern.dest(5, &topo, &mut rng).unwrap().index() == 0 {
                hot += 1;
            }
        }
        // ~50% + uniform spillover; far more than the uniform 1/15.
        assert!(hot > trials / 3, "hot fraction {hot}/{trials}");
        // And uniform for comparison stays near 1/15.
        let mut uni = 0;
        for _ in 0..trials {
            if Pattern::Uniform.dest(5, &topo, &mut rng).unwrap().index() == 0 {
                uni += 1;
            }
        }
        assert!(uni < trials / 8, "uniform fraction {uni}/{trials}");
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = topo();
        let run = |seed| {
            let mut rng = Rng::new(seed);
            (0..64)
                .map(|i| {
                    Pattern::Uniform
                        .dest(i % 16, &topo, &mut rng)
                        .unwrap()
                        .index()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn parse_round_trips() {
        for s in ["uniform", "neighbor", "transpose", "complement"] {
            assert_eq!(Pattern::parse(s).unwrap().key(), s);
        }
        assert_eq!(
            Pattern::parse("hotspot"),
            Some(Pattern::Hotspot { hot_pm: 200 })
        );
        assert_eq!(
            Pattern::parse("hotspot:900"),
            Some(Pattern::Hotspot { hot_pm: 900 })
        );
        assert_eq!(Pattern::parse("hotspot:1001"), None);
        assert_eq!(Pattern::parse("nope"), None);
    }

    #[test]
    fn transpose_requires_square() {
        assert!(!Pattern::Transpose.supports(&Topology::new(4, 2)));
        assert!(Pattern::Transpose.supports(&Topology::new(3, 3)));
    }
}
