//! The §2.2.4 exception path: "we disallow messages of type 1. Whenever
//! there is an exception, the four handler ID bits of MsgIp are set to 0001
//! … The exception handler can then check the STATUS register to see
//! precisely which exceptional condition has occurred."

use tcni_core::mapping::{cmd_addr, reg_addr, NI_WINDOW_BASE};
use tcni_core::{Control, ExceptionCode, InterfaceReg, MsgType, NiCmd, OverflowPolicy, Status};
use tcni_isa::{Assembler, Reg};
use tcni_sim::{MachineBuilder, Model, NiMapping, RunOutcome};

const TABLE: u32 = 0x4000;

fn off(addr: u32) -> i16 {
    (addr - NI_WINDOW_BASE) as i16
}

/// A node whose input port fails mid-run: the hardware latches the
/// exception, dispatch lands in slot 1, the handler captures STATUS and
/// halts.
#[test]
fn input_port_error_dispatches_through_slot_one() {
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
    a.label("dispatch");
    a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R3);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(TABLE); // idle: keep polling until the error is injected
    a.br("dispatch");
    a.nop();
    a.org(TABLE + 16); // slot 1: the exception handler
    a.ld(Reg::R5, Reg::R9, off(reg_addr(InterfaceReg::Status)));
    a.st(Reg::R5, Reg::R0, 0x100); // record precisely what happened
    a.halt();
    let program = a.assemble().unwrap();

    let mut machine = MachineBuilder::new(1)
        .model(Model::new(
            NiMapping::OnChipCache,
            tcni_core::FeatureLevel::Optimized,
        ))
        .program(0, program)
        .build();
    // Let the node spin in its idle loop, then break the input port.
    for _ in 0..50 {
        machine.step();
    }
    assert!(
        !machine.node(0).is_stopped(),
        "node should be polling its idle handler"
    );
    machine.node_mut(0).ni_mut().inject_input_port_error();
    let outcome = machine.run(1_000);
    assert!(
        matches!(
            outcome,
            RunOutcome::Quiescent | RunOutcome::StoppedWithTraffic
        ),
        "{outcome:?}"
    );
    let recorded = Status::from_bits(machine.node(0).mem().peek(0x100));
    assert_eq!(recorded.exception(), ExceptionCode::InputPortError);
}

/// A send of the reserved type 1 (a software bug) must not transmit; it
/// latches [`ExceptionCode::ReservedType`] and the very next dispatch lands
/// in the exception slot.
#[test]
fn reserved_type_send_latches_and_dispatches() {
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
    // The buggy send: type 1.
    a.li(Reg::R3, 0x44);
    a.st(
        Reg::R3,
        Reg::R9,
        off(cmd_addr(
            InterfaceReg::O0,
            NiCmd::send(MsgType::new(1).unwrap()),
        )),
    );
    // Dispatch: must land in slot 1 even though no message ever arrived.
    a.ld(Reg::R4, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R4);
    a.nop();
    a.org(TABLE); // idle slot: would mean the exception was missed
    a.halt();
    a.org(TABLE + 16); // exception slot
    a.ld(Reg::R5, Reg::R9, off(reg_addr(InterfaceReg::Status)));
    a.st(Reg::R5, Reg::R0, 0x100);
    a.halt();
    let program = a.assemble().unwrap();

    let mut machine = MachineBuilder::new(1)
        .model(Model::new(
            NiMapping::OnChipCache,
            tcni_core::FeatureLevel::Optimized,
        ))
        .program(0, program)
        .build();
    assert_eq!(machine.run(1_000), RunOutcome::Quiescent);
    let recorded = Status::from_bits(machine.node(0).mem().peek(0x100));
    assert_eq!(recorded.exception(), ExceptionCode::ReservedType);
    assert_eq!(
        machine.node(0).ni().stats().sends,
        0,
        "the reserved-type message must not have been queued"
    );
}

/// Output-queue overflow under the exception policy (§2.1.1): the dropped
/// send latches the exception and the handler observes it.
#[test]
fn output_overflow_exception_policy() {
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
    // Burst more sends than the whole path can buffer (nobody consumes, and
    // the mesh's finite FIFOs fill), so some sends must overflow.
    a.li(Reg::R3, 0x00); // self-addressed payload (node 0)
    for _ in 0..40 {
        a.st(
            Reg::R3,
            Reg::R9,
            off(cmd_addr(
                InterfaceReg::O0,
                NiCmd::send(MsgType::new(2).unwrap()),
            )),
        );
    }
    a.ld(Reg::R4, Reg::R9, off(reg_addr(InterfaceReg::Status)));
    a.st(Reg::R4, Reg::R0, 0x100);
    a.halt();
    let program = a.assemble().unwrap();

    let mut machine = MachineBuilder::new(1)
        .model(Model::new(
            NiMapping::OnChipCache,
            tcni_core::FeatureLevel::Optimized,
        ))
        .ni_queues(2, 2)
        .program(0, program)
        .network_fabric(tcni_net::FabricConfig::new(1, 1))
        .build();
    machine
        .node_mut(0)
        .ni_mut()
        .set_control(Control::new().with_overflow_policy(OverflowPolicy::Exception));
    let outcome = machine.run(1_000);
    assert!(
        matches!(
            outcome,
            RunOutcome::Quiescent | RunOutcome::StoppedWithTraffic
        ),
        "{outcome:?}"
    );
    let recorded = Status::from_bits(machine.node(0).mem().peek(0x100));
    assert_eq!(recorded.exception(), ExceptionCode::OutputOverflow);
    assert!(machine.node(0).ni().stats().overflows > 0);
}
