//! The machine trace captures the remote-read conversation in causal order.

use tcni_core::NodeId;
use tcni_sim::{MachineBuilder, Model, RunOutcome, TraceEvent};

// Reuse the shared remote-read programs through the facade is not possible
// here (sim cannot depend on eval); a minimal ping suffices: node 0 sends a
// type-2 message to node 1, whose handler halts.
use tcni_core::mapping::{cmd_addr, reg_addr, NI_WINDOW_BASE};
use tcni_core::{InterfaceReg, MsgType, NiCmd, WireFormat};
use tcni_isa::{Assembler, Reg};

fn off(addr: u32) -> i16 {
    (addr - NI_WINDOW_BASE) as i16
}

#[test]
fn trace_records_sends_deliveries_and_halts_in_order() {
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(
        Reg::R2,
        NodeId::new(1).into_word_bits(WireFormat::Compact) | 0x7,
    );
    a.st(
        Reg::R2,
        Reg::R9,
        off(cmd_addr(
            InterfaceReg::O0,
            NiCmd::send(MsgType::new(2).unwrap()),
        )),
    );
    a.halt();
    let sender = a.assemble().unwrap();

    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(Reg::R2, 0x4000);
    a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
    a.label("dispatch");
    a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R3);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(0x4000);
    a.br("dispatch");
    a.nop();
    a.org(0x4000 + 2 * 16);
    a.ld(
        Reg::R4,
        Reg::R9,
        off(cmd_addr(InterfaceReg::I0, NiCmd::next())),
    );
    a.halt();
    let receiver = a.assemble().unwrap();

    let mut machine = MachineBuilder::new(2)
        .model(Model::ALL_SIX[1]) // optimized on-chip
        .program(0, sender)
        .program(1, receiver)
        .network_ideal(2)
        .build();
    machine.enable_trace(64);
    assert_eq!(machine.run(1_000), RunOutcome::Quiescent);

    let trace = machine.trace().expect("tracing enabled");
    let kinds: Vec<&str> = trace
        .events()
        .map(|e| match e {
            TraceEvent::Sent { .. } => "sent",
            TraceEvent::Delivered { .. } => "delivered",
            TraceEvent::Halted { .. } => "halted",
            TraceEvent::Faulted { .. } => "faulted",
        })
        .collect();
    // Causal order: the send precedes the delivery precedes the receiver's
    // halt; the sender halts right after its send.
    assert_eq!(kinds.iter().filter(|k| **k == "sent").count(), 1);
    assert_eq!(kinds.iter().filter(|k| **k == "delivered").count(), 1);
    assert_eq!(kinds.iter().filter(|k| **k == "halted").count(), 2);
    let sent_at = kinds.iter().position(|k| *k == "sent").unwrap();
    let delivered_at = kinds.iter().position(|k| *k == "delivered").unwrap();
    assert!(sent_at < delivered_at);
    let cycles: Vec<u64> = trace.events().map(TraceEvent::cycle).collect();
    assert!(
        cycles.windows(2).all(|w| w[0] <= w[1]),
        "monotone: {cycles:?}"
    );
    // The delivered payload is the one the sender composed, and its stamp
    // follows the documented convention: Delivered − Sent equals the
    // fabric-accounted latency (here the configured ideal latency, 2).
    match trace.events().nth(delivered_at).unwrap() {
        TraceEvent::Delivered { cycle, node, msg } => {
            assert_eq!(*node, 1);
            assert_eq!(msg.words[0] & 0xFF, 0x7);
            let sent_cycle = trace.events().nth(sent_at).unwrap().cycle();
            assert_eq!(cycle - sent_cycle, 2);
            assert_eq!(cycle - sent_cycle, machine.net_stats().total_latency);
        }
        other => panic!("unexpected event {other:?}"),
    }
    assert_eq!(trace.dropped(), 0);
    assert_eq!(
        trace.for_node(0).count() + trace.for_node(1).count(),
        trace.events().len()
    );
}
