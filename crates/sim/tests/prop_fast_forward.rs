//! Randomized equivalence tests for the quiescence fast-forward: a machine
//! run with `skip_ahead` enabled must be *bit-identical* — registers, memory,
//! per-node cycle counts, statistics, network counters, outcome — to the
//! naive one-cycle-at-a-time loop. The workloads are chosen to drive each of
//! the fast-forward's three paths:
//!
//! * the **ideal jump** (a predictive fabric fast-forwards straight to the
//!   next arrival) — a SCROLL consumer stalled on a flit that is still
//!   crossing a high-latency ideal network;
//! * the **network-only loop** (an unpredictable fabric is ticked without
//!   stepping stalled processors) — a producer wedged against a clogged
//!   mesh;
//! * the **deadlock burn** (nothing in flight, nothing outgoing, every
//!   running processor stalled forever) — a consumer waiting for a flit that
//!   was never sent.

use tcni_check::check;
use tcni_core::mapping::{
    cmd_addr, gpr_alias, reg_addr, scroll_in_addr, scroll_out_addr, NI_WINDOW_BASE,
};
use tcni_core::{FeatureLevel, InterfaceReg, MsgType, NiCmd, NodeId, WireFormat};
use tcni_isa::{Assembler, Program, Reg};
use tcni_net::FabricConfig;
use tcni_sim::{Machine, MachineBuilder, Model, NiMapping, RunOutcome};

const TABLE_MODEL: Model = Model {
    mapping: NiMapping::OnChipCache,
    level: FeatureLevel::Optimized,
};
const LONG_TYPE: u8 = 6;
const SINK: i16 = 0x200;

fn ty(n: u8) -> MsgType {
    MsgType::new(n).unwrap()
}

fn off(addr: u32) -> i16 {
    (addr - NI_WINDOW_BASE) as i16
}

/// Runs the same machine with and without the fast-forward and asserts every
/// piece of observable state is identical. The pair is then re-run with
/// tracing and message-lifecycle observability enabled: instrumentation must
/// neither perturb the simulation nor diverge under the skip paths — trace
/// events, ring-buffer dropped counts, and the `tcni-trace/1` report are all
/// bit-identical. Returns the fast machine (for workload-specific
/// assertions) and the outcome.
fn assert_equivalent(build: &dyn Fn(bool) -> Machine, budget: u64) -> (Machine, RunOutcome) {
    let mut fast = build(true);
    let mut slow = build(false);
    let of = fast.run(budget);
    let os = slow.run(budget);
    assert_eq!(of, os, "outcome");
    assert_eq!(fast.cycle(), slow.cycle(), "machine cycle");
    assert_eq!(fast.net_stats(), slow.net_stats(), "network statistics");
    assert_eq!(fast.net_in_flight(), slow.net_in_flight(), "in flight");
    assert_eq!(fast.is_quiescent(), slow.is_quiescent());
    assert_eq!(slow.skipped_cycles(), 0, "naive loop never skips");
    for i in 0..fast.node_count() {
        let (f, s) = (fast.node(i), slow.node(i));
        assert_eq!(f.cpu().cycle(), s.cpu().cycle(), "node {i} cpu cycle");
        assert_eq!(f.cpu().stats(), s.cpu().stats(), "node {i} cpu stats");
        for r in Reg::ALL {
            assert_eq!(f.cpu().reg(r), s.cpu().reg(r), "node {i} register {r}");
        }
    }

    // Same pair, instrumented. The small ring capacities force wraparound on
    // the longer workloads so the dropped counters are exercised too.
    let mut obs_fast = build(true);
    let mut obs_slow = build(false);
    for machine in [&mut obs_fast, &mut obs_slow] {
        machine.enable_trace(64);
        machine.enable_obs(64);
    }
    assert_eq!(obs_fast.run(budget), of, "instrumented fast outcome");
    assert_eq!(obs_slow.run(budget), os, "instrumented slow outcome");
    assert_eq!(
        obs_fast.cycle(),
        fast.cycle(),
        "instrumentation changed timing"
    );
    assert_eq!(
        obs_fast.net_stats(),
        fast.net_stats(),
        "instrumentation changed network statistics"
    );
    let (tf, ts) = (obs_fast.trace().unwrap(), obs_slow.trace().unwrap());
    assert_eq!(
        tf.dropped(),
        ts.dropped(),
        "trace dropped count under fast-forward"
    );
    assert!(
        tf.events().eq(ts.events()),
        "trace events under fast-forward"
    );
    assert_eq!(
        obs_fast.obs_report().unwrap().to_json(),
        obs_slow.obs_report().unwrap().to_json(),
        "tcni-trace/1 report under fast-forward"
    );
    (fast, of)
}

/// Sender: `flits` five-word flits to node 1 (SCROLL-OUT, final flit SEND),
/// with `delay` cycles of busy-work before each continuation flit, then halt.
fn scroll_sender(flits: u32, delay: usize) -> Program {
    assert!(flits >= 1);
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    for flit in 0..flits {
        for _ in 0..(if flit > 0 { delay } else { 0 }) {
            a.nop();
        }
        for lane in 0..5u32 {
            let value = 100 * flit + lane;
            let value = if flit == 0 && lane == 0 {
                NodeId::new(1).into_word_bits(WireFormat::Compact) | value
            } else {
                value
            };
            a.li(Reg::R2, value);
            let reg = InterfaceReg::output(lane as usize);
            if lane == 4 {
                let addr = if flit + 1 < flits {
                    scroll_out_addr(Some(reg), ty(LONG_TYPE))
                } else {
                    cmd_addr(reg, NiCmd::send(ty(LONG_TYPE)))
                };
                a.st(Reg::R2, Reg::R9, off(addr));
            } else {
                a.st(Reg::R2, Reg::R9, off(reg_addr(reg)));
            }
        }
    }
    a.halt();
    a.assemble().expect("sender assembles")
}

/// Receiver: dispatches on the long-message type, then reads `flits`
/// five-word windows into memory at [`SINK`]. SCROLL-IN with the
/// continuation flit still in flight stalls, which is exactly what the
/// fast-forward accelerates.
fn scroll_receiver(flits: i16) -> Program {
    const TABLE: u32 = 0x4000;
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
    a.label("dispatch");
    a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R3);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(TABLE); // idle slot: no message yet
    a.br("dispatch");
    a.nop();
    a.org(TABLE + u32::from(LONG_TYPE) * 16);
    for flit in 0..flits {
        for lane in 0..5i16 {
            let reg = InterfaceReg::input(lane as usize);
            if lane == 4 {
                let addr = if flit + 1 < flits {
                    scroll_in_addr(Some(reg))
                } else {
                    cmd_addr(reg, NiCmd::next())
                };
                a.ld(Reg::R4, Reg::R9, off(addr));
            } else {
                a.ld(Reg::R4, Reg::R9, off(reg_addr(reg)));
            }
            a.st(Reg::R4, Reg::R0, SINK + (flit * 5 + lane) * 4);
        }
    }
    a.halt();
    a.assemble().expect("receiver assembles")
}

/// The scroll pipeline under random sender delays and fabric latencies, on
/// both fabrics; every combination must quiesce identically with the skip on
/// and off, and the sink memory must hold the streamed words.
#[test]
fn scroll_stream_is_equivalent_on_both_fabrics() {
    check("scroll_stream_is_equivalent_on_both_fabrics", 24, |rng| {
        let delay = rng.below(200) as usize;
        let latency = rng.below(1200);
        let mesh = rng.bool();
        let build = |skip: bool| {
            let b = MachineBuilder::new(2)
                .model(TABLE_MODEL)
                .program(0, scroll_sender(3, delay))
                .program(1, scroll_receiver(3))
                .skip_ahead(skip);
            if mesh {
                b.network_fabric(FabricConfig::new(2, 1)).build()
            } else {
                b.network_ideal(latency).build()
            }
        };
        let (fast, outcome) = assert_equivalent(&build, 25_000);
        assert_eq!(
            outcome,
            RunOutcome::Quiescent,
            "delay {delay} latency {latency} mesh {mesh}"
        );
        for flit in 0..3u32 {
            for lane in 0..5u32 {
                let expect = if flit == 0 && lane == 0 {
                    NodeId::new(1).into_word_bits(WireFormat::Compact)
                } else {
                    100 * flit + lane
                };
                assert_eq!(
                    fast.node(1).mem().peek(0x200 + (flit * 5 + lane) * 4),
                    expect,
                    "flit {flit} lane {lane}"
                );
            }
        }
    });
}

/// Deterministic ideal-jump coverage: the sender parks a continuation flit in
/// a high-latency ideal network and halts while the consumer is stalled on
/// SCROLL-IN, so the only way forward is the arithmetic jump to the arrival.
#[test]
fn ideal_jump_skips_the_flight_time() {
    let build = |skip: bool| {
        MachineBuilder::new(2)
            .model(TABLE_MODEL)
            .program(0, scroll_sender(3, 400))
            .program(1, scroll_receiver(3))
            .network_ideal(1_000)
            .skip_ahead(skip)
            .build()
    };
    let (fast, outcome) = assert_equivalent(&build, 25_000);
    assert_eq!(outcome, RunOutcome::Quiescent);
    assert!(
        fast.skipped_cycles() > 200,
        "the flight time must be jumped, not stepped: skipped {}",
        fast.skipped_cycles()
    );
    assert!(
        fast.node(1).cpu().stats().env_stalls > 200,
        "the bulk charge must land in the consumer's stall counter"
    );
}

/// A consumer stalled on a flit that was never sent: nothing in flight,
/// nothing outgoing, one processor wedged forever. The fast-forward must
/// burn the remaining budget in one step and charge it identically.
#[test]
fn abandoned_scroll_burns_to_the_limit() {
    check("abandoned_scroll_burns_to_the_limit", 16, |rng| {
        let latency = rng.below(60);
        let mesh = rng.bool();
        let budget = rng.range(2_000, 20_000);
        let build = |skip: bool| {
            let b = MachineBuilder::new(2)
                .model(TABLE_MODEL)
                // One SCROLL-OUT flit only: the receiver's second window
                // never arrives.
                .program(0, scroll_sender(1, 0))
                .program(1, scroll_receiver(3))
                .skip_ahead(skip);
            if mesh {
                b.network_fabric(FabricConfig::new(2, 1)).build()
            } else {
                b.network_ideal(latency).build()
            }
        };
        let (fast, outcome) = assert_equivalent(&build, budget);
        assert_eq!(
            outcome,
            RunOutcome::CycleLimit,
            "latency {latency} mesh {mesh}"
        );
        assert!(
            fast.skipped_cycles() > budget / 2,
            "most of the budget must be burned, not stepped: {} of {budget}",
            fast.skipped_cycles()
        );
    });
}

/// A producer wedged against a clogged mesh (the receiver halts immediately
/// and its input queue fills): the mesh cannot predict arrivals, so the
/// fast-forward falls back to network-only cycles. Injection-refusal and
/// blocked-hop counters must match the naive loop exactly.
#[test]
fn clogged_mesh_network_only_loop_is_equivalent() {
    check("clogged_mesh_network_only_loop_is_equivalent", 16, |rng| {
        let input_cap = rng.range(1, 6) as usize;
        let output_cap = rng.range(1, 4) as usize;
        let budget = rng.range(1_000, 10_000);
        let o0 = gpr_alias(InterfaceReg::O0);
        let o1 = gpr_alias(InterfaceReg::O1);
        let mut a = Assembler::new();
        a.li(Reg::R3, NodeId::new(1).into_word_bits(WireFormat::Compact));
        a.label("loop");
        a.mov(o0, Reg::R3);
        a.mov_ni(o1, Reg::R2, NiCmd::send(ty(2)));
        a.br("loop");
        a.nop();
        let producer = a.assemble().expect("producer assembles");
        let build = |skip: bool| {
            MachineBuilder::new(2)
                .model(Model::new(NiMapping::RegisterFile, FeatureLevel::Optimized))
                .ni_queues(input_cap, output_cap)
                .program(0, producer.clone())
                .network_fabric(FabricConfig::new(2, 1))
                .skip_ahead(skip)
                .build()
        };
        let (fast, outcome) = assert_equivalent(&build, budget);
        assert_eq!(outcome, RunOutcome::CycleLimit);
        assert!(
            fast.skipped_cycles() > 0,
            "the wedged phase must fast-forward"
        );
        assert!(
            fast.node(0).cpu().stats().env_stalls > 0,
            "the producer must have stalled on the full queue"
        );
    });
}
