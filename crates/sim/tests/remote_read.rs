//! End-to-end remote read (§2.1.4 / §2.2 of the paper) on real assembled
//! programs, for both coupling paths: the register-file implementation with
//! NI commands in instruction bits, and the memory-mapped implementations
//! with Figure-9 command addresses.
//!
//! Protocol (Figures 3 and 4 of the paper):
//! * request, type `READ`:  `[dest|addr, reply FP, reply IP, -, -]`
//! * reply, type 0:         `[FP, IP, value, -, -]` — dispatched straight to
//!   its IP by the hardware (Figure 7, case 2).

use tcni_core::mapping::{cmd_addr, gpr_alias, reg_addr, NI_WINDOW_BASE};
use tcni_core::{InterfaceReg, MsgType, NiCmd, NodeId, WireFormat};
use tcni_isa::{Assembler, Program, Reg};
use tcni_sim::{MachineBuilder, Model, NiMapping, RunOutcome};

const READ_TYPE: u8 = 4;
const TABLE: u32 = 0x4000;
const REMOTE_ADDR: u32 = 0x100; // where the server keeps the value
const RESULT_ADDR: u32 = 0x80; // where the requester stores the reply
const SECRET: u32 = 0xDEAD_0042;

fn ty(n: u8) -> MsgType {
    MsgType::new(n).unwrap()
}

/// Offset of an NI window address from the window base (fits ld/st
/// immediates).
fn off(addr: u32) -> i16 {
    (addr - NI_WINDOW_BASE) as i16
}

fn slot(t: u8) -> u32 {
    TABLE + u32::from(t) * 16
}

/// Register-mapped requester: compose, SEND, dispatch-loop; the reply's
/// in-message IP lands in `reply_handler`.
fn requester_register(server: NodeId) -> Program {
    let o0 = gpr_alias(InterfaceReg::O0);
    let o1 = gpr_alias(InterfaceReg::O1);
    let o2 = gpr_alias(InterfaceReg::O2);
    let i2 = gpr_alias(InterfaceReg::I2);
    let ipb = gpr_alias(InterfaceReg::IpBase);
    let msgip = gpr_alias(InterfaceReg::MsgIp);

    let mut a = Assembler::new();
    a.li(Reg::R2, TABLE);
    a.mov(ipb, Reg::R2);
    // o0 = server | remote address
    a.li(
        Reg::R3,
        server.into_word_bits(WireFormat::Compact) | REMOTE_ADDR,
    );
    a.mov(o0, Reg::R3);
    // o1 = reply FP (this node = 0, so plain frame address)
    a.li(Reg::R4, 0x200);
    a.mov(o1, Reg::R4);
    // o2 = reply IP, with the SEND riding on the same triadic move.
    a.li(Reg::R5, 0); // patched below via label: li then re-mov
    a.label("load_ip");
    a.mov_ni(o2, Reg::R5, NiCmd::send(ty(READ_TYPE)));
    a.label("dispatch");
    a.jmp_ni(msgip, NiCmd::NONE);
    a.nop(); // delay slot
    a.br("dispatch");
    a.nop();
    a.org(slot(0)); // idle handler: no message yet → spin
    a.br("dispatch");
    a.nop();
    a.org(slot(0) + 16 * 16); // safety: halt-padded table handled by org
    a.label("reply_handler");
    a.st(i2, Reg::R0, RESULT_ADDR as i16); // value → memory
    a.halt();
    let mut p = a.assemble().unwrap();
    // Fix up the reply IP constant now that the label exists: easiest is to
    // reassemble with the known address.
    let ip = p.resolve("reply_handler").unwrap();
    p = {
        let mut a = Assembler::new();
        a.li(Reg::R2, TABLE);
        a.mov(ipb, Reg::R2);
        a.li(
            Reg::R3,
            server.into_word_bits(WireFormat::Compact) | REMOTE_ADDR,
        );
        a.mov(o0, Reg::R3);
        a.li(Reg::R4, 0x200);
        a.mov(o1, Reg::R4);
        a.li(Reg::R5, ip);
        a.label("load_ip");
        a.mov_ni(o2, Reg::R5, NiCmd::send(ty(READ_TYPE)));
        a.label("dispatch");
        a.jmp_ni(msgip, NiCmd::NONE);
        a.nop();
        a.br("dispatch");
        a.nop();
        a.org(slot(0));
        a.br("dispatch");
        a.nop();
        a.org(slot(0) + 16 * 16);
        a.label("reply_handler");
        a.st(i2, Reg::R0, RESULT_ADDR as i16);
        a.mov_ni(Reg::R2, Reg::R2, NiCmd::next()); // dispose the reply
        a.halt();
        a.assemble().unwrap()
    };
    assert_eq!(
        p.resolve("reply_handler"),
        Some(ip),
        "layout must be stable"
    );
    p
}

/// Register-mapped server: dispatch loop; the Read handler is ONE
/// instruction — `ld o2, [i0+r0], SEND-reply, NEXT` — the paper's
/// two-RISC-instruction remote read (§3.3, §5).
fn server_register() -> Program {
    let o2 = gpr_alias(InterfaceReg::O2);
    let i0 = gpr_alias(InterfaceReg::I0);
    let ipb = gpr_alias(InterfaceReg::IpBase);
    let msgip = gpr_alias(InterfaceReg::MsgIp);

    let mut a = Assembler::new();
    a.li(Reg::R2, TABLE);
    a.mov(ipb, Reg::R2);
    a.label("dispatch");
    a.jmp_ni(msgip, NiCmd::NONE);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(slot(0)); // no message yet: keep polling
    a.br("dispatch");
    a.nop();
    a.org(slot(READ_TYPE));
    // THE two-instruction remote read: this one + the dispatch jmp.
    a.ld_r_ni(o2, i0, Reg::R0, NiCmd::reply(ty(0)).with_next());
    a.halt(); // serve exactly one request, then stop
    a.assemble().unwrap()
}

/// Memory-mapped requester (works for both cache placements).
fn requester_memory(server: NodeId) -> Program {
    let nib = Reg::R9; // NI window base register
    let mut a = Assembler::new();
    a.li(nib, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, nib, off(reg_addr(InterfaceReg::IpBase)));
    a.li(
        Reg::R3,
        server.into_word_bits(WireFormat::Compact) | REMOTE_ADDR,
    );
    a.st(Reg::R3, nib, off(reg_addr(InterfaceReg::O0)));
    a.li(Reg::R4, 0x200);
    a.st(Reg::R4, nib, off(reg_addr(InterfaceReg::O1)));
    a.li(Reg::R5, 0); // reply IP placeholder (second pass below)
    a.st(
        Reg::R5,
        nib,
        off(cmd_addr(InterfaceReg::O2, NiCmd::send(ty(READ_TYPE)))),
    );
    a.label("dispatch");
    a.ld(Reg::R6, nib, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R6);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(slot(0));
    a.br("dispatch");
    a.nop();
    a.org(slot(0) + 16 * 16);
    a.label("reply_handler");
    a.ld(Reg::R7, nib, off(cmd_addr(InterfaceReg::I2, NiCmd::next())));
    a.st(Reg::R7, Reg::R0, RESULT_ADDR as i16);
    a.halt();
    let p = a.assemble().unwrap();
    let ip = p.resolve("reply_handler").unwrap();

    let mut a = Assembler::new();
    a.li(nib, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, nib, off(reg_addr(InterfaceReg::IpBase)));
    a.li(
        Reg::R3,
        server.into_word_bits(WireFormat::Compact) | REMOTE_ADDR,
    );
    a.st(Reg::R3, nib, off(reg_addr(InterfaceReg::O0)));
    a.li(Reg::R4, 0x200);
    a.st(Reg::R4, nib, off(reg_addr(InterfaceReg::O1)));
    a.li(Reg::R5, ip);
    a.st(
        Reg::R5,
        nib,
        off(cmd_addr(InterfaceReg::O2, NiCmd::send(ty(READ_TYPE)))),
    );
    a.label("dispatch");
    a.ld(Reg::R6, nib, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R6);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(slot(0));
    a.br("dispatch");
    a.nop();
    a.org(slot(0) + 16 * 16);
    a.label("reply_handler");
    a.ld(Reg::R7, nib, off(cmd_addr(InterfaceReg::I2, NiCmd::next())));
    a.st(Reg::R7, Reg::R0, RESULT_ADDR as i16);
    a.halt();
    let p2 = a.assemble().unwrap();
    assert_eq!(p2.resolve("reply_handler"), Some(ip));
    p2
}

/// Memory-mapped server: the Read handler fits its 16-byte slot exactly —
/// `ld addr; ld value; st value+SEND-reply+NEXT; halt`.
fn server_memory() -> Program {
    let nib = Reg::R9;
    let mut a = Assembler::new();
    a.li(nib, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, nib, off(reg_addr(InterfaceReg::IpBase)));
    a.label("dispatch");
    a.ld(Reg::R3, nib, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R3);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(slot(0));
    a.br("dispatch");
    a.nop();
    a.org(slot(READ_TYPE));
    a.ld(Reg::R4, nib, off(reg_addr(InterfaceReg::I0))); // dest|addr
    a.ld(Reg::R5, Reg::R4, 0); // local decoder masks the node field
    a.st(
        Reg::R5,
        nib,
        off(cmd_addr(InterfaceReg::O2, NiCmd::reply(ty(0)).with_next())),
    );
    a.halt();
    a.assemble().unwrap()
}

fn run_remote_read(model: Model, requester: Program, server: Program) {
    let mut machine = MachineBuilder::new(2)
        .model(model)
        .program(0, requester)
        .program(1, server)
        .network_ideal(1)
        .build();
    // Seed the server's memory with the secret value.
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
    let outcome = machine.run(5_000);
    for (i, node) in machine.nodes().iter().enumerate() {
        assert!(
            !matches!(node.cpu_state(), tcni_cpu::CpuState::Faulted { .. }),
            "node {i} faulted: {:?}",
            node.cpu_state()
        );
    }
    assert_eq!(
        outcome,
        RunOutcome::Quiescent,
        "machine must finish cleanly"
    );
    assert_eq!(
        machine.node(0).mem().peek(RESULT_ADDR),
        SECRET,
        "requester must observe the remote value"
    );
    // The server performed exactly one receive and one send.
    let s = machine.node(1).ni().stats();
    assert_eq!(s.receives, 1);
    assert_eq!(s.sends, 1);
}

#[test]
fn remote_read_register_mapped() {
    let model = Model::new(NiMapping::RegisterFile, tcni_core::FeatureLevel::Optimized);
    run_remote_read(model, requester_register(NodeId::new(1)), server_register());
}

#[test]
fn remote_read_onchip_cache_mapped() {
    let model = Model::new(NiMapping::OnChipCache, tcni_core::FeatureLevel::Optimized);
    run_remote_read(model, requester_memory(NodeId::new(1)), server_memory());
}

#[test]
fn remote_read_offchip_cache_mapped() {
    let model = Model::new(NiMapping::OffChipCache, tcni_core::FeatureLevel::Optimized);
    run_remote_read(model, requester_memory(NodeId::new(1)), server_memory());
}

#[test]
fn offchip_is_slower_than_onchip_is_slower_than_register() {
    // Same workload, three placements: end-to-end completion time must be
    // ordered the way §4 predicts.
    let mut cycles = Vec::new();
    for mapping in [
        NiMapping::RegisterFile,
        NiMapping::OnChipCache,
        NiMapping::OffChipCache,
    ] {
        let model = Model::new(mapping, tcni_core::FeatureLevel::Optimized);
        let (rq, sv) = if mapping == NiMapping::RegisterFile {
            (requester_register(NodeId::new(1)), server_register())
        } else {
            (requester_memory(NodeId::new(1)), server_memory())
        };
        let mut machine = MachineBuilder::new(2)
            .model(model)
            .program(0, rq)
            .program(1, sv)
            .network_ideal(1)
            .build();
        machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
        assert_eq!(machine.run(5_000), RunOutcome::Quiescent);
        cycles.push(machine.cycle());
    }
    assert!(
        cycles[0] <= cycles[1] && cycles[1] <= cycles[2],
        "completion time must not decrease off-chip: {cycles:?}"
    );
}

#[test]
fn two_risc_instruction_read_service() {
    // §3.3/§5's headline: with the register-mapped optimized interface, the
    // Read service itself (handler slot) is ONE instruction, and dispatch is
    // ONE instruction. We verify by instruction count delta: the server
    // executes setup (3) + N×(dispatch jmp + slot-0 br + 2 nops) while idle +
    // [jmp, nop?, ld+SEND-reply+NEXT, halt] when the message arrives.
    let model = Model::new(NiMapping::RegisterFile, tcni_core::FeatureLevel::Optimized);
    let mut machine = MachineBuilder::new(2)
        .model(model)
        .program(0, requester_register(NodeId::new(1)))
        .program(1, server_register())
        .network_ideal(1)
        .build();
    machine.node_mut(1).mem_mut().poke(REMOTE_ADDR, SECRET);
    assert_eq!(machine.run(5_000), RunOutcome::Quiescent);
    // The handler slot contains exactly 2 instructions (ld+cmds, halt); the
    // message was served, so the reply carried the loaded value:
    assert_eq!(machine.node(0).mem().peek(RESULT_ADDR), SECRET);
    let p = server_register();
    let handler_addr = slot(READ_TYPE);
    assert!(p.fetch(handler_addr).is_some());
    assert!(matches!(
        p.fetch(handler_addr).unwrap(),
        tcni_isa::Instr::Ld { .. }
    ));
    assert!(matches!(
        p.fetch(handler_addr + 4).unwrap(),
        tcni_isa::Instr::Halt
    ));
}
