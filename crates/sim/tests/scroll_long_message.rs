//! Variable-length messages end to end (§2.1.2): a 15-word (3-flit) message
//! streamed from node 0 to node 1 over the mesh with SCROLL-OUT, consumed
//! with SCROLL-IN. The consumer naturally *stalls* on SCROLL-IN whenever the
//! next flit is still crossing the network — the waiting semantics fall out
//! of the flow-control model.

use tcni_core::mapping::{cmd_addr, reg_addr, scroll_in_addr, scroll_out_addr, NI_WINDOW_BASE};
use tcni_core::{InterfaceReg, MsgType, NiCmd, NodeId, WireFormat};
use tcni_isa::{Assembler, Program, Reg};
use tcni_net::FabricConfig;
use tcni_sim::{MachineBuilder, Model, NiMapping, RunOutcome};

const TABLE: u32 = 0x4000;
const LONG_TYPE: u8 = 6;
const SINK: i16 = 0x200; // receiver memory where the 15 words land

fn ty(n: u8) -> MsgType {
    MsgType::new(n).unwrap()
}

fn off(addr: u32) -> i16 {
    (addr - NI_WINDOW_BASE) as i16
}

/// Sender: three flits of five words each; words are 100·flit + lane.
/// `delay` inserts busy-work between flits so a consumer can outrun the
/// producer (exercising the SCROLL-IN wait).
fn sender(delay: usize) -> Program {
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    for flit in 0..3u32 {
        for _ in 0..(if flit > 0 { delay } else { 0 }) {
            a.nop();
        }
        // o0 of the first flit carries the destination; the architecture
        // routes the whole message by its first flit.
        for lane in 0..5u32 {
            let value = 100 * flit + lane;
            let value = if flit == 0 && lane == 0 {
                NodeId::new(1).into_word_bits(WireFormat::Compact) | value
            } else {
                value
            };
            a.li(Reg::R2, value);
            let reg = InterfaceReg::output(lane as usize);
            if lane == 4 {
                // Last lane: attach SCROLL-OUT (flits 0,1) or the final SEND.
                let addr = if flit < 2 {
                    scroll_out_addr(Some(reg), ty(LONG_TYPE))
                } else {
                    cmd_addr(reg, NiCmd::send(ty(LONG_TYPE)))
                };
                a.st(Reg::R2, Reg::R9, off(addr));
            } else {
                a.st(Reg::R2, Reg::R9, off(reg_addr(reg)));
            }
        }
    }
    a.halt();
    a.assemble().expect("sender assembles")
}

/// Receiver: dispatch on the long-message type; copy 5 words, SCROLL-IN,
/// repeat; NEXT; halt.
fn receiver() -> Program {
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
    a.label("dispatch");
    a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R3);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(TABLE); // idle
    a.br("dispatch");
    a.nop();
    a.org(TABLE + u32::from(LONG_TYPE) * 16);
    for flit in 0..3i16 {
        for lane in 0..5i16 {
            let reg = InterfaceReg::input(lane as usize);
            if lane == 4 {
                // Read the last lane and advance the window (or dispose).
                let addr = if flit < 2 {
                    scroll_in_addr(Some(reg))
                } else {
                    cmd_addr(reg, NiCmd::next())
                };
                a.ld(Reg::R4, Reg::R9, off(addr));
            } else {
                a.ld(Reg::R4, Reg::R9, off(reg_addr(reg)));
            }
            a.st(Reg::R4, Reg::R0, SINK + (flit * 5 + lane) * 4);
        }
    }
    a.halt();
    a.assemble().expect("receiver assembles")
}

#[test]
fn fifteen_word_message_streams_across_the_mesh() {
    let model = Model::new(NiMapping::OnChipCache, tcni_core::FeatureLevel::Optimized);
    let mut machine = MachineBuilder::new(2)
        .model(model)
        .program(0, sender(0))
        .program(1, receiver())
        .network_fabric(FabricConfig::new(2, 1))
        .build();
    let outcome = machine.run(10_000);
    assert_eq!(outcome, RunOutcome::Quiescent, "{outcome:?}");
    for flit in 0..3u32 {
        for lane in 0..5u32 {
            let expect = if flit == 0 && lane == 0 {
                NodeId::new(1).into_word_bits(WireFormat::Compact)
            } else {
                100 * flit + lane
            };
            let got = machine.node(1).mem().peek(0x200 + (flit * 5 + lane) * 4);
            assert_eq!(got, expect, "flit {flit} lane {lane}");
        }
    }
    // The three flits crossed as three network messages.
    assert_eq!(machine.net_stats().delivered, 3);
}

#[test]
fn scroll_in_waits_for_a_slow_producer() {
    // With a deliberately slow sender, the consumer reaches SCROLL-IN before
    // the next flit exists and must stall until it crosses the mesh.
    let model = Model::new(NiMapping::OnChipCache, tcni_core::FeatureLevel::Optimized);
    let mut machine = MachineBuilder::new(2)
        .model(model)
        .program(0, sender(60))
        .program(1, receiver())
        .network_fabric(FabricConfig::new(2, 1))
        .build();
    assert_eq!(machine.run(10_000), RunOutcome::Quiescent);
    for flit in 0..3u32 {
        for lane in 0..5u32 {
            let expect = if flit == 0 && lane == 0 {
                NodeId::new(1).into_word_bits(WireFormat::Compact)
            } else {
                100 * flit + lane
            };
            assert_eq!(
                machine.node(1).mem().peek(0x200 + (flit * 5 + lane) * 4),
                expect
            );
        }
    }
    assert!(
        machine.node(1).cpu().stats().env_stalls > 0,
        "SCROLL-IN must have waited for the in-flight flit"
    );
}

#[test]
fn next_abandons_unread_flits() {
    // A receiver that NEXTs after the first window must land on the *next
    // message*, not a stale flit.
    let model = Model::new(NiMapping::OnChipCache, tcni_core::FeatureLevel::Optimized);
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(Reg::R2, TABLE);
    a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::IpBase)));
    a.label("dispatch");
    a.ld(Reg::R3, Reg::R9, off(reg_addr(InterfaceReg::MsgIp)));
    a.jmp(Reg::R3);
    a.nop();
    a.br("dispatch");
    a.nop();
    a.org(TABLE);
    a.br("dispatch");
    a.nop();
    a.org(TABLE + 2 * 16); // type-2 slot: the trailing short message
    a.ld(
        Reg::R4,
        Reg::R9,
        off(cmd_addr(InterfaceReg::I1, NiCmd::next())),
    );
    a.st(Reg::R4, Reg::R0, SINK + 4);
    a.halt();
    a.org(TABLE + u32::from(LONG_TYPE) * 16);
    // Abandon the long message immediately.
    a.ld(
        Reg::R4,
        Reg::R9,
        off(cmd_addr(InterfaceReg::I1, NiCmd::next())),
    );
    a.st(Reg::R4, Reg::R0, SINK);
    a.br("dispatch");
    a.nop();
    let receiver = a.assemble().unwrap();

    // Sender: the 3-flit long message, then a short type-2 message.
    let mut a = Assembler::new();
    a.li(Reg::R9, NI_WINDOW_BASE);
    a.li(
        Reg::R2,
        NodeId::new(1).into_word_bits(WireFormat::Compact) | 0x11,
    );
    a.st(Reg::R2, Reg::R9, off(reg_addr(InterfaceReg::O0)));
    a.li(Reg::R3, 0xF1);
    a.st(
        Reg::R3,
        Reg::R9,
        off(scroll_out_addr(Some(InterfaceReg::O1), ty(LONG_TYPE))),
    );
    a.li(Reg::R3, 0xF2);
    a.st(
        Reg::R3,
        Reg::R9,
        off(scroll_out_addr(Some(InterfaceReg::O1), ty(LONG_TYPE))),
    );
    a.li(Reg::R3, 0xF3);
    a.st(
        Reg::R3,
        Reg::R9,
        off(cmd_addr(InterfaceReg::O1, NiCmd::send(ty(LONG_TYPE)))),
    );
    // Short message, type 2, w1 = 0x99.
    a.li(Reg::R3, 0x99);
    a.st(
        Reg::R3,
        Reg::R9,
        off(cmd_addr(InterfaceReg::O1, NiCmd::send(ty(2)))),
    );
    a.halt();
    let sender = a.assemble().unwrap();

    let mut machine = MachineBuilder::new(2)
        .model(model)
        .program(0, sender)
        .program(1, receiver)
        .network_ideal(1)
        .build();
    assert_eq!(machine.run(10_000), RunOutcome::Quiescent);
    assert_eq!(
        machine.node(1).mem().peek(SINK as u32),
        0xF1,
        "first window seen"
    );
    assert_eq!(
        machine.node(1).mem().peek(SINK as u32 + 4),
        0x99,
        "short message seen"
    );
}
