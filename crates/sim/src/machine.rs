//! The multicomputer: nodes co-simulated with a network, cycle by cycle.

use tcni_core::{FeatureLevel, NiConfig, NodeId};
use tcni_cpu::TimingConfig;
use tcni_isa::Program;
use tcni_net::{IdealNetwork, Mesh2d, MeshConfig, NetStats, Network};

use crate::model::{Model, NiMapping};
use crate::node::Node;
use crate::trace::{Trace, TraceEvent};

/// Why a [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every processor stopped and no messages remain anywhere.
    Quiescent,
    /// Every processor stopped but messages remain in flight or queued
    /// (usually a protocol bug in the loaded programs).
    StoppedWithTraffic,
    /// The cycle budget ran out first.
    CycleLimit,
}

/// A complete simulated multicomputer.
///
/// Each global cycle: every processor steps once; interfaces offer their
/// oldest outgoing message to the network (refusals stay queued —
/// backpressure, §2.1.1); the network advances one cycle; arrived messages
/// move into interfaces that can accept them.
///
/// # Example
///
/// ```
/// use tcni_isa::{Assembler, Reg};
/// use tcni_sim::{MachineBuilder, Model, RunOutcome};
///
/// let mut a = Assembler::new();
/// a.addi(Reg::R2, Reg::R0, 7);
/// a.halt();
/// let p = a.assemble().unwrap();
///
/// let mut machine = MachineBuilder::new(2)
///     .model(Model::ALL_SIX[0])
///     .program_all(p)
///     .build();
/// assert_eq!(machine.run(100), RunOutcome::Quiescent);
/// assert_eq!(machine.node(0).cpu().reg(Reg::R2), 7);
/// ```
pub struct Machine {
    nodes: Vec<Node>,
    net: Box<dyn Network>,
    cycle: u64,
    trace: Option<Trace>,
}

impl Machine {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Elapsed global cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// A node by index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Mutable node access.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node_mut(&mut self, i: usize) -> &mut Node {
        &mut self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Network statistics.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Messages currently inside the network fabric.
    pub fn net_in_flight(&self) -> usize {
        self.net.in_flight()
    }

    /// Enables event tracing with the given capacity (see [`Trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Advances the whole machine one cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        // Phase 1: processors execute.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let was_running = !node.is_stopped();
            node.step();
            if was_running && node.is_stopped() {
                if let Some(t) = self.trace.as_mut() {
                    match node.cpu_state() {
                        tcni_cpu::CpuState::Halted => {
                            t.record(TraceEvent::Halted { cycle, node: i });
                        }
                        tcni_cpu::CpuState::Faulted { reason, .. } => {
                            t.record(TraceEvent::Faulted {
                                cycle,
                                node: i,
                                reason: reason.clone(),
                            });
                        }
                        tcni_cpu::CpuState::Running => {}
                    }
                }
            }
        }
        // Phase 2: interfaces → network (one injection attempt per node).
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let src = NodeId::new(i as u8);
            let ni = node.ni_mut();
            if let Some(msg) = ni.peek_outgoing().copied() {
                if self.net.inject(src, msg).is_ok() {
                    ni.pop_outgoing();
                    if let Some(t) = self.trace.as_mut() {
                        t.record(TraceEvent::Sent { cycle, node: i, msg });
                    }
                }
            }
        }
        // Phase 3: the fabric advances.
        self.net.tick();
        // Phase 4: network → interfaces (drain whatever fits).
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let dst = NodeId::new(i as u8);
            let ni = node.ni_mut();
            while let Some(peeked) = self.net.peek_eject(dst) {
                if !ni.can_accept(peeked) {
                    break; // backpressure: leave it in the network
                }
                let msg = self.net.eject(dst).expect("peeked");
                if let Some(t) = self.trace.as_mut() {
                    t.record(TraceEvent::Delivered { cycle, node: i, msg });
                }
                ni.push_incoming(msg).expect("can_accept checked");
            }
        }
        self.cycle += 1;
    }

    /// Whether every processor has stopped and all message state is empty.
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().all(Node::is_quiescent) && self.net.in_flight() == 0
    }

    /// Runs until every processor stops (halt or fault) or `max_cycles`
    /// elapse.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let limit = self.cycle + max_cycles;
        while self.cycle < limit {
            if self.nodes.iter().all(Node::is_stopped) {
                return if self.is_quiescent() {
                    RunOutcome::Quiescent
                } else {
                    RunOutcome::StoppedWithTraffic
                };
            }
            self.step();
        }
        if self.nodes.iter().all(Node::is_stopped) && self.is_quiescent() {
            RunOutcome::Quiescent
        } else {
            RunOutcome::CycleLimit
        }
    }
}

/// Which network fabric a [`MachineBuilder`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetChoice {
    Ideal {
        latency: u64,
    },
    Mesh(MeshConfig),
}

/// Builds a [`Machine`].
///
/// Defaults: optimized register-mapped model, paper timing (2-cycle off-chip
/// penalty), 16-message queues, 64 KiB memory per node, ideal zero-latency
/// network, and an empty (immediately halting) program on every node.
pub struct MachineBuilder {
    node_count: usize,
    model: Model,
    timing: TimingConfig,
    ni_config: NiConfig,
    memory_bytes: usize,
    net: NetChoice,
    programs: Vec<Option<Program>>,
    default_program: Program,
}

impl MachineBuilder {
    /// Starts a builder for `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero or exceeds the 256-node address space.
    pub fn new(node_count: usize) -> MachineBuilder {
        assert!(node_count > 0, "a machine needs at least one node");
        assert!(node_count <= 256, "NodeId address space is 256 nodes");
        let mut halt = tcni_isa::Assembler::new();
        halt.halt();
        MachineBuilder {
            node_count,
            model: Model::new(NiMapping::RegisterFile, FeatureLevel::Optimized),
            timing: TimingConfig::new(),
            ni_config: NiConfig::default(),
            memory_bytes: 64 * 1024,
            net: NetChoice::Ideal { latency: 0 },
            programs: vec![None; node_count],
            default_program: halt.assemble().expect("trivial program"),
        }
    }

    /// Selects one of the six §4 models.
    pub fn model(mut self, model: Model) -> MachineBuilder {
        self.model = model;
        self.ni_config.features = model.level.into();
        self
    }

    /// Overrides the timing configuration (e.g. the off-chip latency sweep).
    pub fn timing(mut self, timing: TimingConfig) -> MachineBuilder {
        self.timing = timing;
        self
    }

    /// Overrides interface queue sizing (keeps the model's feature set).
    pub fn ni_queues(mut self, input: usize, output: usize) -> MachineBuilder {
        self.ni_config.input_capacity = input;
        self.ni_config.output_capacity = output;
        self
    }

    /// Sets per-node memory size in bytes.
    pub fn memory_bytes(mut self, bytes: usize) -> MachineBuilder {
        self.memory_bytes = bytes;
        self
    }

    /// Uses an ideal fixed-latency network (default: latency 0).
    pub fn network_ideal(mut self, latency: u64) -> MachineBuilder {
        self.net = NetChoice::Ideal { latency };
        self
    }

    /// Uses a 2-D mesh network.
    ///
    /// # Panics
    ///
    /// Panics at [`build`](Self::build) if the mesh is smaller than the node
    /// count.
    pub fn network_mesh(mut self, config: MeshConfig) -> MachineBuilder {
        self.net = NetChoice::Mesh(config);
        self
    }

    /// Loads a program on one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn program(mut self, node: usize, program: Program) -> MachineBuilder {
        self.programs[node] = Some(program);
        self
    }

    /// Loads the same program on every node.
    pub fn program_all(mut self, program: Program) -> MachineBuilder {
        self.default_program = program;
        self
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        let net: Box<dyn Network> = match self.net {
            NetChoice::Ideal { latency } => Box::new(IdealNetwork::new(self.node_count, latency)),
            NetChoice::Mesh(cfg) => {
                let mesh = Mesh2d::new(cfg);
                assert!(
                    mesh.node_count() >= self.node_count,
                    "mesh ({}×{}) smaller than node count {}",
                    cfg.width,
                    cfg.height,
                    self.node_count
                );
                Box::new(mesh)
            }
        };
        let nodes = self
            .programs
            .into_iter()
            .map(|p| {
                Node::new(
                    self.model,
                    self.timing,
                    self.ni_config,
                    self.memory_bytes,
                    p.unwrap_or_else(|| self.default_program.clone()),
                )
            })
            .collect();
        Machine {
            nodes,
            net,
            cycle: 0,
            trace: None,
        }
    }
}
